//! Umbrella crate re-exporting the qpp workspace.
pub use qpp_adapt as adapt;
pub use qpp_core as core;
pub use qpp_engine as engine;
pub use qpp_linalg as linalg;
pub use qpp_mapreduce as mapreduce;
pub use qpp_ml as ml;
pub use qpp_obs as obs;
pub use qpp_par as par;
pub use qpp_serve as serve;
pub use qpp_workload as workload;
