//! Steady-state allocation regression: after warm-up, a single-query
//! `predict_features` call must perform ZERO heap allocations — the
//! zero-copy data plane's core guarantee. Runs in its own test binary
//! because a process can have only one `#[global_allocator]`.

use counting_alloc::CountingAllocator;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn predict_features_steady_state_allocates_nothing() {
    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(150, 71, &config, 2);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    let probe = &train.records[3];
    let features = qpp::core::features::query_features(
        model.options().feature_kind,
        &probe.spec,
        &probe.optimized.plan,
    );

    // Warm up the thread-local scratch buffers (first call sizes them).
    let warm = model.predict_features(&features).unwrap();

    let before = ALLOC.allocation_events();
    let mut last = None;
    for _ in 0..32 {
        last = Some(model.predict_features(&features).unwrap());
    }
    let events = ALLOC.allocation_events() - before;
    assert_eq!(
        events, 0,
        "steady-state predict_features performed {events} heap allocations over 32 calls"
    );

    // The zero-alloc path still computes the same answer.
    let last = last.unwrap();
    assert_eq!(warm.metrics, last.metrics);
    assert_eq!(warm.neighbor_indices, last.neighbor_indices);
    assert_eq!(
        warm.confidence_distance.to_bits(),
        last.confidence_distance.to_bits()
    );
}
