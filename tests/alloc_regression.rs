//! Steady-state allocation regression: after warm-up, a single-query
//! `predict_features` call must perform ZERO heap allocations — the
//! zero-copy data plane's core guarantee. The measured calls run under
//! an active qpp-obs trace, so the guarantee covers prediction *with
//! observability enabled*: span recording into the pre-sized event ring
//! is allocation-free by design. Runs in its own test binary because a
//! process can have only one `#[global_allocator]`.

use counting_alloc::CountingAllocator;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn predict_features_steady_state_allocates_nothing() {
    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(150, 71, &config, 2);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    let probe = &train.records[3];
    let features = qpp::core::features::query_features(
        model.options().feature_kind,
        &probe.spec,
        &probe.optimized.plan,
    );

    // Warm up the thread-local scratch buffers (first call sizes them)
    // and the global obs recorder (first span allocates its ring).
    let warm = model.predict_features(&features).unwrap();
    let trace_id = qpp::obs::next_trace_id();

    let before = ALLOC.allocation_events();
    let recorded_before = qpp::obs::recorder().events_recorded();
    let mut last = None;
    qpp::obs::with_trace(trace_id, || {
        for _ in 0..32 {
            last = Some(model.predict_features(&features).unwrap());
        }
    });
    let events = ALLOC.allocation_events() - before;
    let recorded = qpp::obs::recorder().events_recorded() - recorded_before;
    assert_eq!(
        events, 0,
        "steady-state predict_features performed {events} heap allocations over 32 calls"
    );
    // Observability was genuinely on during the measured loop: every
    // call recorded its spans (standardize, project, kNN).
    assert!(
        recorded >= 32,
        "expected >=32 trace events during the measured loop, saw {recorded}"
    );

    // The zero-alloc path still computes the same answer.
    let last = last.unwrap();
    assert_eq!(warm.metrics, last.metrics);
    assert_eq!(warm.neighbor_indices, last.neighbor_indices);
    assert_eq!(
        warm.confidence_distance.to_bits(),
        last.confidence_distance.to_bits()
    );
}
