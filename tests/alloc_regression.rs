//! Steady-state allocation regression: after warm-up, a single-query
//! `predict_features` call must perform ZERO heap allocations — the
//! zero-copy data plane's core guarantee. The measured calls run under
//! an active qpp-obs trace, so the guarantee covers prediction *with
//! observability enabled*: span recording into the pre-sized event ring
//! is allocation-free by design. Runs in its own test binary because a
//! process can have only one `#[global_allocator]`.

use counting_alloc::CountingAllocator;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;
use qpp::linalg::Matrix;
use qpp::ml::{DistanceMetric, IvfIndex, IvfOptions, KnnScratch, NeighborWeighting};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn predict_features_steady_state_allocates_nothing() {
    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(150, 71, &config, 2);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    let probe = &train.records[3];
    let features = qpp::core::features::query_features(
        model.options().feature_kind,
        &probe.spec,
        &probe.optimized.plan,
    );

    // Warm up the thread-local scratch buffers (first call sizes them)
    // and the global obs recorder (first span allocates its ring).
    let warm = model.predict_features(&features).unwrap();
    let trace_id = qpp::obs::next_trace_id();

    let before = ALLOC.allocation_events();
    let recorded_before = qpp::obs::recorder().events_recorded();
    let mut last = None;
    qpp::obs::with_trace(trace_id, || {
        for _ in 0..32 {
            last = Some(model.predict_features(&features).unwrap());
        }
    });
    let events = ALLOC.allocation_events() - before;
    let recorded = qpp::obs::recorder().events_recorded() - recorded_before;
    assert_eq!(
        events, 0,
        "steady-state predict_features performed {events} heap allocations over 32 calls"
    );
    // Observability was genuinely on during the measured loop: every
    // call recorded its spans (standardize, project, kNN).
    assert!(
        recorded >= 32,
        "expected >=32 trace events during the measured loop, saw {recorded}"
    );

    // The zero-alloc path still computes the same answer.
    let last = last.unwrap();
    assert_eq!(warm.metrics, last.metrics);
    assert_eq!(warm.neighbor_indices, last.neighbor_indices);
    assert_eq!(
        warm.confidence_distance.to_bits(),
        last.confidence_distance.to_bits()
    );

    // Same guarantee for the IVF arm of the neighbor index: once the
    // probe/list/merge scratch has warmed up, the coarse probe, exact
    // rescan, ordered merge, and weighted combine are all alloc-free.
    // (Measured in this same test because the counting allocator is
    // process-global — concurrent tests would see each other's traffic.)
    let data = Matrix::from_fn(3000, 4, |i, j| ((i * 31 + j * 7) % 211) as f64 * 0.125);
    let targets = Matrix::from_fn(3000, 6, |i, j| ((i * 13 + j) % 97) as f64);
    let probe: Vec<f64> = data.row(997).to_vec();
    let ivf = IvfIndex::build(data, DistanceMetric::Euclidean, IvfOptions::default()).unwrap();
    let mut scratch = KnnScratch::new();
    let mut combined = Vec::new();
    ivf.predict_into(
        &probe,
        &targets,
        3,
        NeighborWeighting::Equal,
        &mut scratch,
        &mut combined,
    )
    .unwrap();
    let warm_neighbors = scratch.neighbors.clone();
    let before = ALLOC.allocation_events();
    for _ in 0..32 {
        ivf.predict_into(
            &probe,
            &targets,
            3,
            NeighborWeighting::Equal,
            &mut scratch,
            &mut combined,
        )
        .unwrap();
    }
    let ivf_events = ALLOC.allocation_events() - before;
    assert_eq!(
        ivf_events, 0,
        "steady-state IVF predict_into performed {ivf_events} heap allocations over 32 calls"
    );
    assert_eq!(scratch.neighbors, warm_neighbors);
}
