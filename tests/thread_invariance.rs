//! Bitwise thread-invariance of the deterministic parallel engine: the
//! same training data must produce the same bits — projections,
//! correlations, neighbor lists, predictions — whether the `qpp-par`
//! pool runs with 1 thread or 8. The end-to-end legs run under active
//! qpp-obs traces: observability records timing *around* the
//! deterministic math, never inside it, so it must not perturb a single
//! bit.

use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;
use qpp::ml::{DistanceMetric, Kcca, KccaOptions, NearestNeighbors};
use qpp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_pair(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, 8);
    let mut y = Matrix::zeros(n, 4);
    for i in 0..n {
        let mut norm = 0.0;
        for j in 0..8 {
            let v = rng.random_range(-2.0..2.0);
            x[(i, j)] = v;
            norm += v * v;
        }
        for j in 0..4 {
            y[(i, j)] = norm.sqrt() * (j as f64 + 1.0) + 0.05 * rng.random_range(-1.0..1.0);
        }
    }
    (x, y)
}

#[test]
fn kcca_fit_is_bitwise_identical_across_thread_counts() {
    let (x, y) = synthetic_pair(300, 17);
    let opts = KccaOptions::default();
    let serial = qpp_par::with_threads(1, || Kcca::fit(x.view(), y.view(), opts).unwrap());
    let parallel = qpp_par::with_threads(8, || Kcca::fit(x.view(), y.view(), opts).unwrap());
    assert_eq!(serial.correlations(), parallel.correlations());
    assert_eq!(serial.query_projection(), parallel.query_projection());
    assert_eq!(
        serial.performance_projection(),
        parallel.performance_projection()
    );
    assert_eq!(serial.x_rank(), parallel.x_rank());
}

#[test]
fn batch_projection_is_bitwise_identical_across_thread_counts() {
    let (x, y) = synthetic_pair(200, 23);
    let model = qpp_par::with_threads(1, || {
        Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap()
    });
    let serial = qpp_par::with_threads(1, || {
        model.project_queries_with_similarity(x.view()).unwrap()
    });
    let parallel = qpp_par::with_threads(8, || {
        model.project_queries_with_similarity(x.view()).unwrap()
    });
    assert_eq!(serial, parallel);
}

#[test]
fn knn_queries_are_bitwise_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut reference = Matrix::zeros(5000, 6);
    for i in 0..reference.rows() {
        for j in 0..reference.cols() {
            reference[(i, j)] = rng.random_range(-1.0..1.0);
        }
    }
    let knn = NearestNeighbors::new(reference, DistanceMetric::Euclidean);
    let probe: Vec<f64> = (0..6).map(|_| rng.random_range(-1.0..1.0)).collect();
    let serial = qpp_par::with_threads(1, || knn.query(&probe, 5));
    let parallel = qpp_par::with_threads(8, || knn.query(&probe, 5));
    assert_eq!(serial.len(), 5);
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }
}

#[test]
fn end_to_end_predictions_are_bitwise_identical_across_thread_counts() {
    let config = SystemConfig::neoview_4();
    let train = qpp_par::with_threads(1, || collect_tpcds(160, 41, &config, 2));
    let test = qpp_par::with_threads(8, || collect_tpcds(25, 42, &config, 2));

    let serial_model = qpp_par::with_threads(1, || {
        KccaPredictor::train(&train, PredictorOptions::default())
    })
    .unwrap();
    let parallel_model = qpp_par::with_threads(8, || {
        KccaPredictor::train(&train, PredictorOptions::default())
    })
    .unwrap();

    // Each leg predicts under its own live trace: span recording must
    // not perturb the computation it times.
    let serial_preds = qpp::obs::with_trace(qpp::obs::next_trace_id(), || {
        qpp_par::with_threads(1, || serial_model.predict_dataset(&test).unwrap())
    });
    let parallel_preds = qpp::obs::with_trace(qpp::obs::next_trace_id(), || {
        qpp_par::with_threads(8, || parallel_model.predict_dataset(&test).unwrap())
    });
    assert_eq!(serial_preds.len(), parallel_preds.len());
    for (a, b) in serial_preds.iter().zip(parallel_preds.iter()) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        assert_eq!(
            a.confidence_distance.to_bits(),
            b.confidence_distance.to_bits()
        );
        assert_eq!(
            a.max_kernel_similarity.to_bits(),
            b.max_kernel_similarity.to_bits()
        );
    }
}

/// Recording spans must be observationally free: predictions computed
/// with tracing active are bitwise identical to untraced ones, while
/// the trace itself actually captured the per-call spans.
#[test]
fn tracing_does_not_perturb_prediction_bits() {
    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(120, 43, &config, 2);
    let test = collect_tpcds(20, 44, &config, 2);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    let untraced = model.predict_dataset(&test).unwrap();

    let trace_id = qpp::obs::next_trace_id();
    let traced = qpp::obs::with_trace(trace_id, || model.predict_dataset(&test).unwrap());

    assert_eq!(untraced.len(), traced.len());
    for (a, b) in untraced.iter().zip(traced.iter()) {
        for (x, y) in a.metrics.to_vec().iter().zip(b.metrics.to_vec().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        assert_eq!(
            a.confidence_distance.to_bits(),
            b.confidence_distance.to_bits()
        );
    }
    let events = qpp::obs::recorder().export_trace(trace_id);
    assert!(
        !events.is_empty(),
        "tracing was supposed to be live during the traced leg"
    );
}

/// The sharded multi-tenant serve pipeline is worker-count invariant:
/// the same scripted arrival sequence produces identical per-tenant
/// admission, completion, and rejection ledgers whether one worker
/// drains all four shards or eight workers race over them. Shard
/// assignment is a pure function of the tenant, and the stats merge
/// folds cells in fixed shard-major order, so nothing about worker
/// scheduling may leak into the merged counts.
#[test]
fn sharded_serve_ledger_is_identical_across_worker_counts() {
    use qpp::core::baselines::OptimizerCostModel;
    use qpp::core::FeatureKind;
    use qpp::serve::{
        ModelKey, ModelRegistry, PredictRequest, PredictionService, ServeOptions, TenantId,
        TenantSpec,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(120, 47, &config, 2);
    let pool = collect_tpcds(40, 48, &config, 2);

    // Fixed arrival script: 300 requests over three tenants in a
    // deterministic interleaving (weights 3/2/1).
    let script: Vec<u32> = (0..300u32).map(|i| 1 + (i * 7 + i / 11) % 3).collect();

    let run = |workers: usize| -> Vec<(u32, u64, u64, u64, u64, u64)> {
        let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
        let fallback = OptimizerCostModel::train(&train).unwrap();
        let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        let registry = Arc::new(ModelRegistry::new());
        registry.install(key.clone(), model, fallback);
        let service = PredictionService::start(
            Arc::clone(&registry),
            ServeOptions {
                workers,
                shards: 4,
                queue_capacity: 1024,
                max_batch: 8,
                tenants: vec![
                    TenantSpec::new(TenantId(1), "interactive").weight(3),
                    TenantSpec::new(TenantId(2), "reporting").weight(2),
                    TenantSpec::new(TenantId(3), "batch").weight(1),
                ],
                ..ServeOptions::default()
            },
        );

        let pending: Vec<_> = script
            .iter()
            .enumerate()
            .map(|(i, &tenant)| {
                let r = &pool.records[i % pool.records.len()];
                let expect = TenantId(tenant);
                let p = service
                    .submit_async(PredictRequest {
                        key: key.clone(),
                        tenant: expect,
                        spec: r.spec.clone(),
                        plan: r.optimized.plan.clone(),
                        deadline: Duration::from_secs(30),
                    })
                    .expect("capacity 1024 over 4 shards never fills");
                (expect, p)
            })
            .collect();
        for (expect, p) in pending {
            let resp = p.wait().expect("generous deadline always answers");
            assert_eq!(
                resp.tenant, expect,
                "responses carry the tenant they served"
            );
        }

        // The worker hands the answer to the client *before* bumping
        // the completion counters (a failed hand-off must count as a
        // late answer, not a completion), so the ledger trails the last
        // `wait` by one scheduler beat. Let it quiesce before
        // snapshotting.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let snap = loop {
            let snap = service.stats();
            if snap.completed + snap.fallbacks == snap.submitted
                || std::time::Instant::now() > deadline
            {
                break snap;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(snap.submitted, script.len() as u64);
        assert_eq!(snap.completed + snap.fallbacks, snap.submitted);
        snap.per_tenant
            .iter()
            .map(|t| {
                (
                    t.tenant,
                    t.submitted,
                    t.completed,
                    t.fallbacks,
                    t.rejected_queue_full,
                    t.rejected_quota,
                )
            })
            .collect()
    };

    let single = run(1);
    let racing = run(8);
    assert_eq!(
        single, racing,
        "per-tenant ledger must not depend on worker count"
    );
    // And the script actually exercised every tenant.
    for row in &single[1..] {
        assert!(row.1 > 0, "tenant {} never admitted anything", row.0);
    }
}

/// The continuous-learning bookkeeping must be observationally free on
/// the predict path: folding every `(prediction, observed)` pair into
/// the adaptation error tracker — while other threads hammer the same
/// tracker — must not change a single prediction bit.
#[test]
fn adaptation_bookkeeping_does_not_perturb_prediction_bits() {
    use std::sync::Arc;

    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(120, 45, &config, 2);
    let test = collect_tpcds(20, 46, &config, 2);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    // Leg A: plain predictions, no adaptation anywhere.
    let plain: Vec<_> = test
        .records
        .iter()
        .map(|r| model.predict(&r.spec, &r.optimized.plan).unwrap())
        .collect();

    // Leg B: identical predictions with the tracker folding each pair
    // in between, while four background threads record into the same
    // tracker concurrently.
    let tracker = Arc::new(qpp::adapt::ErrorTracker::new());
    let hammers: Vec<_> = (0..4)
        .map(|k| {
            let tracker = Arc::clone(&tracker);
            let noise = train.records.clone();
            std::thread::spawn(move || {
                for (i, r) in noise.iter().enumerate() {
                    let scaled = qpp::engine::PerfMetrics::from_vec(
                        &r.metrics
                            .to_vec()
                            .iter()
                            .map(|v| v * (1.0 + (k + i) as f64 * 0.01))
                            .collect::<Vec<_>>(),
                    );
                    tracker.record(&r.spec.template, &scaled, &r.metrics);
                }
            })
        })
        .collect();
    let tracked: Vec<_> = test
        .records
        .iter()
        .map(|r| {
            let p = model.predict(&r.spec, &r.optimized.plan).unwrap();
            tracker.record(&r.spec.template, &p.metrics, &r.metrics);
            p
        })
        .collect();
    for h in hammers {
        h.join().unwrap();
    }

    assert_eq!(plain.len(), tracked.len());
    for (a, b) in plain.iter().zip(tracked.iter()) {
        for (x, y) in a.metrics.to_vec().iter().zip(b.metrics.to_vec().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        assert_eq!(
            a.confidence_distance.to_bits(),
            b.confidence_distance.to_bits()
        );
        assert_eq!(
            a.max_kernel_similarity.to_bits(),
            b.max_kernel_similarity.to_bits()
        );
    }
    // And the bookkeeping itself lost nothing.
    assert_eq!(
        tracker.observations() as usize,
        4 * train.records.len() + test.records.len()
    );
}
