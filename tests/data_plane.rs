//! Zero-copy data-plane equivalence: every `*_into` scratch-buffer
//! path must produce bitwise-identical results to the owned allocating
//! path it replaced, for arbitrary inputs — the contract that lets the
//! serving hot path reuse buffers without changing a single output bit.

use proptest::prelude::*;
use qpp::linalg::stats::Standardizer;
use qpp::linalg::Matrix;
use qpp::ml::{
    DistanceMetric, GaussianKernel, IvfIndex, IvfOptions, Kcca, KccaOptions, KnnScratch,
    NearestNeighbors, NeighborWeighting, ProjectionScratch,
};
use qpp_core::NeighborIds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.random_range(-3.0..3.0);
        }
    }
    m
}

fn correlated_pair(n: usize, dx: usize, dy: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, dx);
    let mut y = Matrix::zeros(n, dy);
    for i in 0..n {
        let mut norm = 0.0;
        for j in 0..dx {
            let v = rng.random_range(-2.0..2.0);
            x[(i, j)] = v;
            norm += v * v;
        }
        for j in 0..dy {
            y[(i, j)] = norm.sqrt() * (j as f64 + 1.0) + 0.05 * rng.random_range(-1.0..1.0);
        }
    }
    (x, y)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel row evaluation through a reused scratch buffer is
    /// bitwise-equal to the allocating path, even when the buffer
    /// arrives dirty and oversized from a previous query.
    #[test]
    fn kernel_row_into_matches_owned(seed in 0u64..1_000, rows in 4usize..40, cols in 1usize..10) {
        let data = random_matrix(rows, cols, seed);
        let kern = GaussianKernel::fit(data.view(), 0.25);
        let probe: Vec<f64> = data.row(rows / 2).to_vec();
        let owned = kern.row(data.view(), &probe);
        let mut scratch = vec![f64::NAN; rows * 2 + 3]; // dirty + wrong size
        kern.row_into(data.view(), &probe, &mut scratch);
        prop_assert_eq!(bits(&owned), bits(&scratch));
    }

    /// Standardizer scratch path is bitwise-equal to the owned path.
    #[test]
    fn standardize_row_into_matches_owned(seed in 0u64..1_000, rows in 4usize..30, cols in 1usize..8) {
        let data = random_matrix(rows, cols, seed);
        let scaler = Standardizer::fit(&data);
        let probe: Vec<f64> = data.row(0).to_vec();
        let owned = scaler.transform_row(&probe);
        let mut scratch = vec![f64::NAN; 1];
        scaler.transform_row_into(&probe, &mut scratch);
        prop_assert_eq!(bits(&owned), bits(&scratch));
    }

    /// Full KCCA query projection through per-worker scratch buffers is
    /// bitwise-equal to the owned path: same projection, same max
    /// kernel similarity.
    #[test]
    fn kcca_projection_into_matches_owned(seed in 0u64..200) {
        let (x, y) = correlated_pair(40, 6, 3, seed);
        let model = Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap();
        let probe: Vec<f64> = x.row(7).to_vec();
        let (owned, sim_owned) = model.project_query_with_similarity(&probe).unwrap();

        let mut scratch = ProjectionScratch::new();
        let mut out = vec![f64::NAN; 1];
        // Run twice through the same scratch: the second pass must not
        // see residue from the first.
        for _ in 0..2 {
            let sim = model.project_query_into(&probe, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(bits(&owned), bits(&out));
            prop_assert_eq!(sim_owned.to_bits(), sim.to_bits());
        }
    }

    /// kNN prediction through reused scratch is bitwise-equal to the
    /// owned path: combined metrics, neighbor ids, neighbor distances.
    #[test]
    fn knn_predict_into_matches_owned(seed in 0u64..500, n in 8usize..60, k in 1usize..6) {
        let reference = random_matrix(n, 4, seed);
        let targets = random_matrix(n, 6, seed.wrapping_add(1));
        let probe: Vec<f64> = reference.row(n / 3).to_vec();
        let knn = NearestNeighbors::new(reference, DistanceMetric::Euclidean);

        let (owned, found_owned) = knn
            .predict(&probe, &targets, k, NeighborWeighting::InverseDistance)
            .unwrap();

        let mut scratch = KnnScratch::new();
        let mut combined = vec![f64::NAN; 1];
        for _ in 0..2 {
            knn.predict_into(
                &probe,
                &targets,
                k,
                NeighborWeighting::InverseDistance,
                &mut scratch,
                &mut combined,
            )
            .unwrap();
            prop_assert_eq!(bits(&owned), bits(&combined));
            prop_assert_eq!(found_owned.len(), scratch.neighbors.len());
            for (a, b) in found_owned.iter().zip(scratch.neighbors.iter()) {
                prop_assert_eq!(a.index, b.index);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
    }

    /// IVF query through reused (and dirty) scratch is bitwise-equal to
    /// the owned IVF path and to the brute scan; with `nprobe == nlist`
    /// the probed lists cover the whole reference, so equality is exact
    /// for arbitrary inputs.
    #[test]
    fn ivf_query_into_matches_owned_and_brute(seed in 0u64..300, n in 30usize..120, k in 1usize..6) {
        let reference = random_matrix(n, 4, seed);
        let ivf = IvfIndex::build(
            reference.clone(),
            DistanceMetric::Euclidean,
            IvfOptions { nlist: 4, nprobe: 4, ..IvfOptions::default() },
        )
        .unwrap();
        let brute = NearestNeighbors::new(reference.clone(), DistanceMetric::Euclidean);
        let probe: Vec<f64> = reference.row(n / 3).to_vec();
        let owned = ivf.query(&probe, k);
        let exact = brute.query(&probe, k);
        prop_assert_eq!(owned.len(), exact.len());
        for (a, b) in owned.iter().zip(exact.iter()) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        let mut scratch = KnnScratch::new();
        // Run twice through the same scratch: the second pass must not
        // see residue from the first (per-list buffers are recycled).
        for _ in 0..2 {
            ivf.query_into(&probe, k, &mut scratch);
            prop_assert_eq!(owned.len(), scratch.neighbors.len());
            for (a, b) in owned.iter().zip(scratch.neighbors.iter()) {
                prop_assert_eq!(a.index, b.index);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
    }

    /// The inline neighbor-id set behaves exactly like a Vec for any
    /// length, across its inline-to-spill boundary.
    #[test]
    fn neighbor_ids_match_vec_semantics(ids in proptest::collection::vec(0usize..10_000, 0..20)) {
        let n: NeighborIds = ids.iter().copied().collect();
        prop_assert_eq!(n.as_slice(), ids.as_slice());
        prop_assert_eq!(n.len(), ids.len());
        let collected: Vec<usize> = n.into_iter().copied().collect();
        prop_assert_eq!(collected, ids);
    }
}

/// Batch projection over a borrowed matrix view equals row-by-row owned
/// projection — the contiguous serve path introduces no drift.
#[test]
fn batch_projection_matches_rowwise_owned() {
    let (x, y) = correlated_pair(60, 8, 4, 77);
    let model = Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap();
    let batch = model.project_queries_with_similarity(x.view()).unwrap();
    assert_eq!(batch.len(), x.rows());
    for (i, (proj, sim)) in batch.iter().enumerate() {
        let (owned, sim_owned) = model.project_query_with_similarity(x.row(i)).unwrap();
        assert_eq!(bits(&owned), bits(proj));
        assert_eq!(sim_owned.to_bits(), sim.to_bits());
    }
}
