//! End-to-end continuous learning through the *real* serving stack:
//! live traffic goes through `PredictionService::submit`, completions
//! feed the adaptive controller via the service's completion hook, and
//! the retrain step runs synchronously (`drain_pending`) so every
//! transition happens at a deterministic moment.
//!
//! Asserts the full loop the paper's serving story implies: per-template
//! error rises under drift → drift is declared → a candidate is
//! retrained on the sliding window → shadow-scored against the
//! incumbent → canary-swapped behind the registry generation guard →
//! the post-swap watch passes — and the whole episode is
//! reconstructible from the qpp-obs event ring.

use qpp::adapt::{AdaptEvent, AdaptOptions, AdaptOutcome, AdaptiveController, DriftConfig, Phase};
use qpp::core::baselines::OptimizerCostModel;
use qpp::core::pipeline::collect_tpcds;
use qpp::core::retrain::SlidingWindowPredictor;
use qpp::core::{Dataset, FeatureKind, KccaPredictor, PredictorOptions, QueryRecord};
use qpp::engine::SystemConfig;
use qpp::obs::{EventKind, Stage};
use qpp::serve::{
    CompletionObserver, ModelKey, ModelRegistry, PredictRequest, PredictionService, ServeOptions,
    ServeResponse,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Completion observer that drives the adaptive controller through the
/// service's real hook path while keeping the emitted events for
/// assertions.
struct Recording {
    controller: Arc<AdaptiveController>,
    events: Mutex<Vec<AdaptEvent>>,
}

impl CompletionObserver for Recording {
    fn on_completion(&self, record: &QueryRecord, response: &ServeResponse) {
        if let Some(event) = self.controller.observe(record, response) {
            self.events.lock().expect("events lock").push(event);
        }
    }
}

impl Recording {
    fn drain(&self) -> Vec<AdaptEvent> {
        std::mem::take(&mut *self.events.lock().expect("events lock"))
    }
}

/// Replays a dataset as live traffic through the service, reporting
/// each completion back through the observer hook. Returns the mean
/// absolute log-ratio error on elapsed time and the adaptation events
/// the completions produced.
fn replay(
    service: &PredictionService,
    key: &ModelKey,
    recording: &Recording,
    traffic: &Dataset,
) -> (f64, Vec<AdaptEvent>) {
    let mut err_sum = 0.0;
    for record in &traffic.records {
        let response = service
            .submit(PredictRequest {
                key: key.clone(),
                tenant: qpp::serve::DEFAULT_TENANT,
                spec: record.spec.clone(),
                plan: record.optimized.plan.clone(),
                deadline: Duration::from_secs(5),
            })
            .expect("request answered");
        service.observe_completion(record, &response);
        let errors = qpp::adapt::log_ratio_errors(&response.prediction.metrics, &record.metrics);
        err_sum += errors[0];
    }
    (
        err_sum / traffic.records.len().max(1) as f64,
        recording.drain(),
    )
}

#[test]
fn adaptive_loop_recovers_from_drift_through_the_real_service() {
    let stable_cfg = SystemConfig::neoview_4();
    let drifted_cfg = stable_cfg.clone().with_drift(3.0);
    let train_n = 96;

    let train = collect_tpcds(train_n, 401, &stable_cfg, 2);
    let options = PredictorOptions::default();
    let incumbent = KccaPredictor::train(&train, options).expect("train incumbent");
    let fallback = OptimizerCostModel::train(&train).expect("train fallback");

    let key = ModelKey::new("neoview_4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry.install(key.clone(), incumbent, fallback);

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 2,
            queue_capacity: 128,
            max_batch: 8,
            ..ServeOptions::default()
        },
    );
    let window = SlidingWindowPredictor::new(train.clone(), train_n, usize::MAX, options);
    let controller = Arc::new(AdaptiveController::new(
        Arc::clone(&registry),
        key.clone(),
        window,
        AdaptOptions {
            drift: DriftConfig {
                warmup: 24,
                window: 8,
                ..DriftConfig::default()
            },
            kill_window: 16,
            ..AdaptOptions::default()
        },
    ));
    let recording = Arc::new(Recording {
        controller: Arc::clone(&controller),
        events: Mutex::new(Vec::new()),
    });
    service.set_completion_observer(Arc::clone(&recording) as Arc<dyn CompletionObserver>);

    // Phase 1: stable traffic calibrates the detector quietly.
    let stable = collect_tpcds(30, 402, &stable_cfg, 2);
    let (stable_err, events) = replay(&service, &key, &recording, &stable);
    assert!(events.is_empty(), "stable traffic fired {events:?}");
    assert_eq!(controller.phase(), Phase::Stable);
    let calm_elapsed_mean = controller.tracker().global_mean(0);

    // Phase 2: the simulated system slows down 3x on elapsed time.
    // Per-template error rises, drift is declared, and a retrain task
    // is queued once enough drifted evidence has accumulated.
    let drifted = collect_tpcds(160, 403, &drifted_cfg, 2);
    let (drifted_err, events) = replay(&service, &key, &recording, &drifted);
    assert!(
        drifted_err > stable_err,
        "drift must raise the live error ({drifted_err:.3} vs {stable_err:.3})"
    );
    let signal = events
        .iter()
        .find_map(|e| match e {
            AdaptEvent::DriftDetected(sig) => Some(*sig),
            _ => None,
        })
        .expect("drift must be declared under 3x elapsed drift");
    assert!(signal.recent_mean > signal.calibration_mean);
    assert_eq!(controller.phase(), Phase::RetrainQueued);

    // The per-template ledger saw the same story.
    let rows = controller.tracker().template_snapshot();
    assert!(!rows.is_empty(), "templates must be tracked");
    assert!(
        controller.tracker().global_mean(0) > calm_elapsed_mean,
        "per-template elapsed error must rise under drift"
    );

    // Background step, run synchronously: retrain on the (now drifted)
    // sliding window, shadow-score, swap behind the generation guard.
    let outcomes = controller.drain_pending();
    let generation = match outcomes.first() {
        Some(AdaptOutcome::Swapped { generation, .. }) => *generation,
        other => panic!("expected a canary swap, got {other:?}"),
    };
    assert!(generation > v1);
    assert_eq!(registry.current_version(&key), Some(generation));
    assert_eq!(controller.stats().canary_swaps.get(), 1);

    // Phase 3: recovery. The swapped-in model serves drifted traffic
    // accurately; the post-swap watch completes without a demotion.
    let recovery = collect_tpcds(40, 404, &drifted_cfg, 2);
    let (recovery_err, events) = replay(&service, &key, &recording, &recovery);
    assert!(
        recovery_err < drifted_err,
        "post-swap error {recovery_err:.3} must be below the drifted error {drifted_err:.3}"
    );
    let post_err = events
        .iter()
        .find_map(|e| match e {
            AdaptEvent::CanaryPassed { post_err, .. } => Some(*post_err),
            _ => None,
        })
        .expect("post-swap watch must complete");
    assert!(post_err < signal.recent_mean);
    // The loop stays armed after the watch: it may already be chasing a
    // fresh signal on the new baseline, but it must not have demoted.
    let phase = controller.phase();
    assert!(
        !matches!(phase, Phase::Demoted),
        "canary must not be demoted, got {phase:?}"
    );
    assert_eq!(registry.demote_count(), 0);

    // The service-side bookkeeping counted every completion it relayed,
    // and the controller saw exactly the same stream.
    let snapshot = service.stats();
    assert_eq!(snapshot.observed_completions, 230);
    assert_eq!(controller.stats().observations.get(), 230);
    service.shutdown();

    // The episode is reconstructible from the trace ring, in causal
    // order: drift mark → retrain span → shadow-score span → swap mark.
    let events = qpp::obs::recorder().export();
    let first = |stage: Stage, kind: EventKind| {
        events
            .iter()
            .position(|e| e.stage == stage && e.kind == kind)
            .unwrap_or_else(|| panic!("{stage:?} {kind:?} missing from event ring"))
    };
    let drift_at = first(Stage::Drift, EventKind::Mark);
    let retrain_at = first(Stage::Retrain, EventKind::Span);
    let shadow_at = first(Stage::ShadowScore, EventKind::Span);
    let swap_at = first(Stage::CanarySwap, EventKind::Mark);
    assert!(
        drift_at < retrain_at && retrain_at < shadow_at && shadow_at < swap_at,
        "adaptation events out of causal order"
    );
}
