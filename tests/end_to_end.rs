//! Cross-crate integration tests: the full paper pipeline at a
//! meaningful (but CI-friendly) scale.

use qpp::core::baselines::{OptimizerCostModel, RegressionPredictor};
use qpp::core::pipeline::{collect_tpcds, evaluate};
use qpp::core::{FeatureKind, KccaPredictor, PredictorOptions, QueryCategory, TwoStepPredictor};
use qpp::engine::SystemConfig;
use qpp::ml::predictive_risk;

/// Shared medium-scale pools (built once).
fn pools() -> (qpp::core::Dataset, qpp::core::Dataset) {
    let config = SystemConfig::neoview_4();
    let all = collect_tpcds(8000, 20090401, &config, 4);
    let (train_idx, test_idx) = all.sample_pools(
        &[
            (QueryCategory::Feather, 320),
            (QueryCategory::GolfBall, 90),
            (QueryCategory::BowlingBall, 12),
        ],
        // A test pool this size keeps the within-factor-of-two risk
        // granularity fine enough that the plan-vs-SQL-text comparison
        // below is not decided by one unlucky query.
        &[
            (QueryCategory::Feather, 60),
            (QueryCategory::GolfBall, 12),
            (QueryCategory::BowlingBall, 6),
        ],
        23,
    );
    (all.subset(&train_idx), all.subset(&test_idx))
}

#[test]
fn kcca_beats_every_baseline_on_elapsed_time() {
    let (train, test) = pools();
    let actual = test.elapsed();

    // The paper's model.
    let kcca = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let kcca_preds: Vec<f64> = kcca
        .predict_dataset(&test)
        .unwrap()
        .iter()
        .map(|p| p.metrics.elapsed_seconds)
        .collect();
    let kcca_risk = predictive_risk(&kcca_preds, &actual);

    // Baseline 1: SQL-text features (Fig. 8).
    let sql_opts = PredictorOptions {
        feature_kind: FeatureKind::SqlText,
        ..PredictorOptions::default()
    };
    let sql_model = KccaPredictor::train(&train, sql_opts).unwrap();
    let sql_preds: Vec<f64> = sql_model
        .predict_dataset(&test)
        .unwrap()
        .iter()
        .map(|p| p.metrics.elapsed_seconds)
        .collect();
    let sql_risk = predictive_risk(&sql_preds, &actual);

    // Baseline 2: optimizer cost + best fit (Fig. 17).
    let cost = OptimizerCostModel::train(&train).unwrap();
    let cost_risk = predictive_risk(&cost.predict_dataset(&test), &actual);

    // Baseline 3: OLS regression (Figs. 3-4), evaluated out of sample.
    let reg = RegressionPredictor::train(&train, FeatureKind::QueryPlan).unwrap();
    let reg_matrix = reg.predict_dataset(&test).unwrap();
    let reg_preds: Vec<f64> = (0..reg_matrix.rows()).map(|i| reg_matrix[(i, 0)]).collect();
    let reg_risk = predictive_risk(&reg_preds, &actual);

    assert!(
        kcca_risk > sql_risk,
        "KCCA/plan ({kcca_risk:.3}) must beat SQL-text features ({sql_risk:.3})"
    );
    assert!(
        kcca_risk > cost_risk,
        "KCCA ({kcca_risk:.3}) must beat the optimizer cost fit ({cost_risk:.3})"
    );
    assert!(
        kcca_risk > reg_risk,
        "KCCA ({kcca_risk:.3}) must beat OLS regression ({reg_risk:.3})"
    );
    assert!(kcca_risk > 0.3, "KCCA risk {kcca_risk:.3} unexpectedly low");
}

#[test]
fn kcca_predicts_all_six_metrics_simultaneously() {
    let (train, test) = pools();
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let eval = evaluate(&model.predict_dataset(&test).unwrap(), &test);
    // Every non-constant metric must beat the mean baseline from one
    // model — the paper's "multiple metrics simultaneously" claim.
    let mut positive = 0;
    let mut total = 0;
    for risk in eval.predictive_risk.iter().flatten() {
        total += 1;
        if *risk > 0.0 {
            positive += 1;
        }
    }
    assert!(total >= 5, "expected at least 5 non-constant metrics");
    assert!(
        positive >= total - 1,
        "only {positive}/{total} metrics beat the mean baseline"
    );
    // Records used is the paper's best-predicted metric (0.98).
    let used = eval.predictive_risk[5].unwrap();
    assert!(used > 0.6, "records-used risk {used:.3}");
}

#[test]
fn long_and_short_queries_both_identified() {
    // The paper's workload-management motivation: the model must tell
    // bowling balls from feathers before execution.
    let (train, test) = pools();
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let mut correct = 0;
    let mut total = 0;
    for r in &test.records {
        let p = model.predict(&r.spec, &r.optimized.plan).unwrap();
        let predicted_long = p.metrics.elapsed_seconds >= QueryCategory::FEATHER_MAX;
        let actually_long = r.category != QueryCategory::Feather;
        total += 1;
        if predicted_long == actually_long {
            correct += 1;
        }
    }
    assert!(
        correct * 10 >= total * 8,
        "only {correct}/{total} long/short classifications correct"
    );
}

#[test]
fn two_step_handles_every_test_category() {
    let (train, test) = pools();
    let model = TwoStepPredictor::train(&train, PredictorOptions::default()).unwrap();
    for r in &test.records {
        let p = model.predict(&r.spec, &r.optimized.plan).unwrap();
        assert!(p.metrics.is_valid());
    }
    assert_eq!(model.specialist_categories().len(), 3);
}

#[test]
fn predictions_use_compile_time_information_only() {
    // Train on one dataset; predict queries that were never executed:
    // only specs + plans are consulted.
    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(400, 5, &config, 4);
    let model = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();

    let mut generator = qpp::workload::WorkloadGenerator::tpcds(1.0, 31337);
    let catalog = qpp::engine::Catalog::new(generator.schema().clone());
    for q in generator.generate(20) {
        let optimized = qpp::engine::optimize(&q, &catalog, &config);
        let p = model.predict(&q, &optimized.plan).unwrap();
        assert!(p.metrics.is_valid());
        assert!(p.metrics.elapsed_seconds > 0.0);
    }
}
