//! Reproducibility guarantees spanning crates: the entire pipeline is a
//! pure function of its seeds.

use qpp::core::pipeline::collect_tpcds;
use qpp::core::{KccaPredictor, PredictorOptions};
use qpp::engine::SystemConfig;

#[test]
fn dataset_collection_is_deterministic_across_thread_counts() {
    let config = SystemConfig::neoview_4();
    let a = collect_tpcds(120, 64, &config, 1);
    let b = collect_tpcds(120, 64, &config, 4);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.spec, rb.spec);
        assert_eq!(ra.metrics, rb.metrics);
        assert_eq!(ra.optimized.plan, rb.optimized.plan);
    }
}

#[test]
fn training_and_prediction_are_deterministic() {
    let config = SystemConfig::neoview_4();
    let train = collect_tpcds(200, 11, &config, 2);
    let test = collect_tpcds(30, 12, &config, 2);
    let m1 = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    let m2 = KccaPredictor::train(&train, PredictorOptions::default()).unwrap();
    for (p1, p2) in m1
        .predict_dataset(&test)
        .unwrap()
        .iter()
        .zip(m2.predict_dataset(&test).unwrap().iter())
    {
        assert_eq!(p1.metrics, p2.metrics);
        assert_eq!(p1.neighbor_indices, p2.neighbor_indices);
    }
}

#[test]
fn ground_truth_is_pinned_to_constants_not_query_ids() {
    // Two workload generators with the same seed produce identical
    // queries; truth lives in the constants, so identical specs always
    // execute identically regardless of how they were produced.
    let config = SystemConfig::neoview_4();
    let schema = qpp::workload::Schema::tpcds(1.0);
    let catalog = qpp::engine::Catalog::new(schema.clone());
    let mut g = qpp::workload::WorkloadGenerator::tpcds(1.0, 5);
    let q1 = g.generate_one();
    let mut q2 = q1.clone();
    q2.id = 999_999; // different id, same constants
    let o1 = qpp::engine::optimize(&q1, &catalog, &config);
    let o2 = qpp::engine::optimize(&q2, &catalog, &config);
    // Plans (estimates) identical.
    assert_eq!(o1.plan.nodes, o2.plan.nodes);
    let m1 = qpp::engine::execute(&q1, &o1, &schema, &config).metrics;
    let m2 = qpp::engine::execute(&q2, &o2, &schema, &config).metrics;
    // Deterministic data-dependent metrics identical; elapsed differs
    // only by run-to-run noise (different noise stream per query id).
    assert_eq!(m1.records_accessed, m2.records_accessed);
    assert_eq!(m1.records_used, m2.records_used);
    // Message bytes may differ slightly: the true group count of an
    // aggregation wobbles with the per-query noise stream.
    let mb_ratio = m1.message_bytes.max(1.0) / m2.message_bytes.max(1.0);
    assert!(
        (0.5..2.0).contains(&mb_ratio),
        "message bytes ratio {mb_ratio}"
    );
    let ratio = m1.elapsed_seconds / m2.elapsed_seconds;
    assert!(
        (0.6..1.7).contains(&ratio),
        "same-constants elapsed ratio {ratio} outside noise band"
    );
}
