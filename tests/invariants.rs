//! Cross-crate property-based tests: invariants that must hold for any
//! generated workload.

use proptest::prelude::*;
use qpp::core::features::PlanFeatures;
use qpp::engine::{execute, optimize, Catalog, OpKind, SystemConfig};
use qpp::workload::{Schema, WorkloadGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated query yields a well-formed plan and valid,
    /// internally consistent metrics on any preset configuration.
    #[test]
    fn any_query_executes_validly(seed in 0u64..10_000, cpus_idx in 0usize..5) {
        let config = match cpus_idx {
            0 => SystemConfig::neoview_4(),
            1 => SystemConfig::neoview_32(4),
            2 => SystemConfig::neoview_32(8),
            3 => SystemConfig::neoview_32(16),
            _ => SystemConfig::neoview_32(32),
        };
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        let q = g.generate_one();
        prop_assert_eq!(q.validate(), Ok(()));
        let schema = Schema::tpcds(1.0);
        let catalog = Catalog::new(schema.clone());
        let opt = optimize(&q, &catalog, &config);
        prop_assert_eq!(opt.plan.validate(), Ok(()));
        prop_assert!(opt.plan.optimizer_cost >= 1.0);
        let out = execute(&q, &opt, &schema, &config);
        prop_assert!(out.metrics.is_valid());
        prop_assert!(out.metrics.elapsed_seconds >= config.startup_seconds * 0.5);
        prop_assert!(out.metrics.records_accessed >= out.metrics.records_used);
        // Per-node truths are finite and positive.
        prop_assert!(out.true_rows.iter().all(|r| r.is_finite() && *r >= 0.0));
    }

    /// Plan feature extraction is total and consistent with the plan.
    #[test]
    fn plan_features_consistent(seed in 0u64..10_000) {
        let config = SystemConfig::neoview_4();
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        let q = g.generate_one();
        let catalog = Catalog::new(Schema::tpcds(1.0));
        let opt = optimize(&q, &catalog, &config);
        let f = PlanFeatures::from_plan(&opt.plan);
        let v = f.to_vec();
        prop_assert_eq!(v.len(), PlanFeatures::DIM);
        prop_assert!(v.iter().all(|x| x.is_finite()));
        let total_ops: f64 = f.counts.iter().sum();
        prop_assert_eq!(total_ops as usize, opt.plan.nodes.len());
        // Scan count = referenced tables + subquery inner scans.
        prop_assert_eq!(
            f.counts[OpKind::FileScan.index()] as usize,
            q.tables.len() + q.subqueries.len()
        );
    }

    /// Drift scales elapsed time exactly linearly, leaving cardinality
    /// metrics untouched (the executor invariant behind the OS-upgrade
    /// simulation).
    #[test]
    fn drift_scales_elapsed_linearly(seed in 0u64..5_000, drift in 1.0f64..3.0) {
        let schema = Schema::tpcds(1.0);
        let catalog = Catalog::new(schema.clone());
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        let q = g.generate_one();
        let base = SystemConfig::neoview_4();
        let drifted = SystemConfig::neoview_4().with_drift(drift);
        let mb = execute(&q, &optimize(&q, &catalog, &base), &schema, &base).metrics;
        let md = execute(&q, &optimize(&q, &catalog, &drifted), &schema, &drifted).metrics;
        prop_assert!((md.elapsed_seconds / mb.elapsed_seconds - drift).abs() < 1e-6);
        prop_assert_eq!(mb.records_used, md.records_used);
        prop_assert_eq!(mb.disk_ios, md.disk_ios);
    }

    /// SQL rendering is total and the SQL-text feature vector matches
    /// the structure it renders.
    #[test]
    fn sql_rendering_and_features_agree(seed in 0u64..10_000) {
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        let q = g.generate_one();
        let sql = qpp::workload::sql::render(&q);
        prop_assert!(sql.starts_with("SELECT"));
        let f = qpp::workload::SqlTextFeatures::from_spec(&q);
        // Every rendered subquery appears in the text.
        prop_assert_eq!(sql.matches("(SELECT").count() as u32, f.nested_subqueries);
        if f.sort_columns > 0 {
            prop_assert!(sql.contains("ORDER BY"));
        }
    }
}
