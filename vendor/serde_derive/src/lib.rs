//! Derive macros for the vendored `serde` stand-in.
//!
//! No `syn`/`quote` (the build is offline): the item is parsed directly
//! from the proc-macro token stream. Supported shapes — the only ones
//! this workspace uses — are structs with named fields and enums whose
//! variants are units or have named fields. Anything else panics at
//! compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => serialize_struct(&item.name, fields),
        Shape::Enum(variants) => serialize_enum(&item.name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}",
        item.name
    );
    out.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree conversion).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => deserialize_struct(&item.name, fields),
        Shape::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {} {{\n\
             fn from_value(v: &::serde::value::Value) \
               -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}",
        item.name
    );
    out.parse().expect("derived Deserialize impl parses")
}

// ---- item model -----------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields.
    Struct(Vec<String>),
    /// Variants: name plus named fields (empty = unit variant).
    Enum(Vec<(String, Vec<String>)>),
}

// ---- token-level parsing -------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` / `#![...]` attribute groups (doc comments arrive
    /// in this form too).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Punct(bang)) = self.peek() {
                if bang.as_char() == '!' {
                    self.next();
                }
            }
            match self.next() {
                Some(TokenTree::Group(_)) => {}
                other => panic!("malformed attribute near {other:?}"),
            }
        }
    }

    /// Skips `pub` / `pub(...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    match c.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("derive(Serialize/Deserialize) stand-in does not support generic type `{name}`")
        }
        _ => {}
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body for `{name}`, found {other:?}"),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body, &name)),
        "enum" => Shape::Enum(parse_variants(body, &name)),
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Parses `ident: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream, owner: &str) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let field = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{owner}.{field}`, found {other:?}"),
        }
        // Consume the type: everything up to a comma outside angle
        // brackets (parenthesized/bracketed groups are single tokens).
        let mut angle_depth = 0i32;
        while let Some(tok) = c.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
        fields.push(field);
    }
    fields
}

/// Parses enum variants: unit or named-field only.
fn parse_variants(stream: TokenStream, owner: &str) -> Vec<(String, Vec<String>)> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let variant = c.expect_ident("variant name");
        match c.peek() {
            None => {
                variants.push((variant, Vec::new()));
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                c.next();
                variants.push((variant, Vec::new()));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), owner);
                c.next();
                if let Some(TokenTree::Punct(p)) = c.peek() {
                    if p.as_char() == ',' {
                        c.next();
                    }
                }
                variants.push((variant, fields));
            }
            Some(other) => panic!(
                "variant `{owner}::{variant}`: only unit and named-field variants \
                 are supported, found {other:?}"
            ),
        }
    }
    variants
}

// ---- code generation ------------------------------------------------

fn serialize_struct(_name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "::serde::value::Value::Map(::std::vec![{}])",
        entries.join(", ")
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields.iter().map(|f| field_init(name, f, "v")).collect();
    format!(
        "::std::result::Result::Ok({name} {{ {} }})",
        inits.join(", ")
    )
}

fn field_init(owner: &str, field: &str, source: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value({source}.get(\"{field}\")\
         .ok_or_else(|| ::serde::DeError::custom(\
         \"missing field `{field}` in `{owner}`\"))?)?"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(variant, fields)| {
            if fields.is_empty() {
                format!(
                    "{name}::{variant} => ::serde::value::Value::Str(\
                     ::std::string::String::from(\"{variant}\"))"
                )
            } else {
                let binders = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{variant} {{ {binders} }} => ::serde::value::Value::Map(\
                     ::std::vec![(::std::string::String::from(\"{variant}\"), \
                     ::serde::value::Value::Map(::std::vec![{}]))])",
                    entries.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(", "))
}

fn deserialize_enum(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, fields)| fields.is_empty())
        .map(|(variant, _)| {
            format!("\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),")
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|(_, fields)| !fields.is_empty())
        .map(|(variant, fields)| {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| field_init(&format!("{name}::{variant}"), f, "inner"))
                .collect();
            format!(
                "\"{variant}\" => ::std::result::Result::Ok({name}::{variant} {{ {} }}),",
                inits.join(", ")
            )
        })
        .collect();
    format!(
        "match v {{\n\
           ::serde::value::Value::Str(s) => match s.as_str() {{\n\
             {}\n\
             other => ::std::result::Result::Err(::serde::DeError::custom(\
               ::std::format!(\"unknown variant `{{}}` of `{name}`\", other))),\n\
           }},\n\
           ::serde::value::Value::Map(entries) if entries.len() == 1 => {{\n\
             let (tag, inner) = &entries[0];\n\
             match tag.as_str() {{\n\
               {}\n\
               other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", other))),\n\
             }}\n\
           }},\n\
           other => ::std::result::Result::Err(::serde::DeError::custom(\
             ::std::format!(\"expected `{name}` variant, got {{:?}}\", other))),\n\
         }}",
        unit_arms.join("\n"),
        data_arms.join("\n")
    )
}
