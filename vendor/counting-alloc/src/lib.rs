//! A counting wrapper around the system allocator, for
//! allocation-regression tests and benchmarks.
//!
//! Install it as the `#[global_allocator]` of a test or bench binary,
//! then diff [`CountingAllocator::allocations`] around the code under
//! test:
//!
//! ```ignore
//! use counting_alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! Counters are relaxed atomics: cheap enough to leave enabled, and
//! exact on a single thread (the intended use — pin the code under
//! test to the measuring thread).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that forwards to [`System`] and counts every
/// allocation, reallocation and deallocation.
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    deallocations: AtomicU64,
    reallocations: AtomicU64,
    bytes_allocated: AtomicU64,
}

impl CountingAllocator {
    /// A fresh allocator with all counters at zero.
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            reallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Total `alloc`/`alloc_zeroed` calls so far (monotonic).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total `dealloc` calls so far (monotonic).
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Total `realloc` calls so far (monotonic).
    pub fn reallocations(&self) -> u64 {
        self.reallocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested from `alloc`/`alloc_zeroed`/`realloc`
    /// (monotonic; freed bytes are not subtracted).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Allocation events (allocs + reallocs) — the number a zero-alloc
    /// steady-state assertion should diff.
    pub fn allocation_events(&self) -> u64 {
        self.allocations() + self.reallocations()
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: forwards every call verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counters do not affect layout or pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.reallocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_manual_alloc_calls() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            let grown = Layout::from_size_align(128, 8).unwrap();
            a.dealloc(p2, grown);
        }
        assert_eq!(a.allocations(), 1);
        assert_eq!(a.reallocations(), 1);
        assert_eq!(a.deallocations(), 1);
        assert_eq!(a.allocation_events(), 2);
        assert_eq!(a.bytes_allocated(), 64 + 128);
    }
}
