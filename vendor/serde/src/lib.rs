//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy streaming framework; this stand-in is
//! a much smaller design that covers what the workspace needs: every
//! serializable type converts to and from a [`value::Value`] tree, and
//! `serde_json` renders that tree as JSON text. The `Serialize` /
//! `Deserialize` derive macros (re-exported from `serde_derive`) handle
//! structs with named fields and enums with unit or struct variants —
//! the only shapes used in this workspace.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing value tree all (de)serialization goes through.

    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number; integers ride in the f64 mantissa (53 bits is
        /// ample for every counter in this workspace).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Seq(Vec<Value>),
        /// An object, insertion-ordered.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(entries) => Some(entries),
                _ => None,
            }
        }

        /// Looks up `key` in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }
    }
}

use value::Value;

/// Deserialization failure: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the value tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the value tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else if self.is_nan() {
            // JSON has no non-finite numbers; encode as tagged strings
            // (we only need to round-trip through our own parser).
            Value::Str("NaN".to_string())
        } else if *self > 0.0 {
            Value::Str("inf".to_string())
        } else {
            Value::Str("-inf".to_string())
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(*n),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                debug_assert!(
                    (*self as i128).unsigned_abs() <= (1u128 << 53),
                    "integer exceeds f64-exact range"
                );
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($( ( $($t:ident => $idx:tt),+ ) )+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arity = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == arity => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {arity}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

tuple_impls! {
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for x in [0.0f64, -1.5, 1e300, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        }
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(u64::from_value(&12345u64.to_value()).unwrap(), 12345);
        assert_eq!(
            Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(),
            None
        );
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::Num(1.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
