//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree as JSON text and parses
//! it back. Numbers are written with Rust's `Display` for `f64`, which
//! produces the shortest string that round-trips exactly — so
//! serialize → deserialize is lossless for every finite `f64`.

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer ---------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            // `Display` for f64 is the shortest exact round-trip form.
            use std::fmt::Write;
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_exactly() {
        let v = Value::Map(vec![
            ("pi".to_string(), Value::Num(std::f64::consts::PI)),
            ("tiny".to_string(), Value::Num(5e-324)),
            ("big".to_string(), Value::Num(1.7976931348623157e308)),
            ("neg".to_string(), Value::Num(-0.1)),
            (
                "text".to_string(),
                Value::Str("quote \" slash \\ newline \n unicode ©".to_string()),
            ),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::Null, Value::Bool(true), Value::Num(3.0)]),
            ),
            ("empty_map".to_string(), Value::Map(vec![])),
            ("empty_seq".to_string(), Value::Seq(vec![])),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text);
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, -2.25, 0.1 + 0.2, f64::MIN_POSITIVE];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Vec<f64>>("[1, 2").is_err());
        assert!(from_str::<Vec<f64>>("[1] trailing").is_err());
        assert!(from_str::<f64>("nul").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
