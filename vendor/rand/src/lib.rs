//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no network access, so the workspace
//! vendors the small slice of `rand` it actually uses: a deterministic
//! seedable generator ([`rngs::StdRng`], xoshiro256** seeded through
//! SplitMix64), uniform sampling over numeric ranges, Bernoulli draws,
//! and Fisher–Yates shuffling. Streams are fully determined by the
//! seed, which is all the reproduction needs — no claim of
//! compatibility with upstream `rand`'s exact output.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's native stream.
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform distribution over a bounded interval.
///
/// Mirrors upstream's shape so `rng.random_range(10..1000)` infers the
/// element type from the call site, not from integer literal defaults.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: &Self, hi: &Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: &Self, hi: &Self, inclusive: bool) -> Self {
                let (lo_w, hi_w) = (*lo as i128, *hi as i128);
                let span = (hi_w - lo_w) as u128 + inclusive as u128;
                (lo_w + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: &Self, hi: &Self, _inclusive: bool) -> Self {
                let unit: $t = FromRng::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges a uniform value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty random_range");
        T::sample(rng, &self.start, &self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty random_range");
        T::sample(rng, &lo, &hi, true)
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of `T` over its natural domain.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = self.random();
        unit < p
    }
}

pub mod rngs {
    //! Concrete generators.
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's standard
    /// generator; unrelated to upstream `StdRng`'s ChaCha stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the quality/speed tradeoff is moot for a xoshiro core.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.random_range(0..=4u32);
            assert!(j <= 4);
            let k = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&k));
        }
        // Degenerate inclusive range is valid.
        assert_eq!(rng.random_range(0usize..=0), 0);
    }

    #[test]
    fn unit_floats_cover_the_interval_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let lows = (0..n).filter(|_| rng.random::<f64>() < 0.1).count();
        assert!((lows as f64 / n as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn bool_probability_respected() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }
}
