//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, range strategies,
//! `collection::vec`, `prop_map`, and the `prop_assert*` macros. Cases
//! are generated from a deterministic per-test seed (an FNV hash of the
//! test name), so failures reproduce exactly. There is no shrinking:
//! a failing case panics with the regular assert message.

pub mod test_runner {
    //! Run configuration.

    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.random_range(self.clone())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sources for a generated collection's length.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector of values from `element`, with length drawn from `len`
    /// (a fixed `usize` or a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// Macro expansions resolve `rand` through `$crate` so callers don't
// need their own `rand` dependency.
#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a hash of a test name: the deterministic per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items
/// whose arguments use `name in strategy` binding syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
            for __case in 0..__config.cases {
                let mut __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $(let $arg = ($strat).generate(&mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(msg) = __run() {
                    panic!("property `{}` failed at case {}: {}", stringify!($name), __case, msg);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        collection::vec(-1.0f64..1.0, 2).prop_map(|v| (v[0], v[1]))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..2.0, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_drawn_from_range(v in collection::vec(0u64..5, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn prop_map_applies(p in pair()) {
            prop_assert!(p.0.abs() <= 1.0 && p.1.abs() <= 1.0);
        }

        #[test]
        fn trailing_comma_accepted(
            a in 0u32..3,
            b in 0u32..3,
        ) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("alpha"), super::seed_for("beta"));
        assert_eq!(super::seed_for("alpha"), super::seed_for("alpha"));
    }
}
