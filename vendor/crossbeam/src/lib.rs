//! Offline stand-in for `crossbeam`.
//!
//! Provides the multi-producer multi-consumer channel surface the
//! workspace uses (`channel::unbounded`), implemented over
//! `std::sync::Mutex` + `Condvar` rather than lock-free queues. Same
//! semantics, adequate throughput for this codebase's fan-out sizes.

pub mod channel {
    //! MPMC channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.available.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains everything currently available plus everything sent
        /// until disconnection (blocking iterator).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_delivers_every_message_once() {
        let (tx, rx) = channel::unbounded::<usize>();
        let producers = 4;
        let per = 1000;
        std::thread::scope(|scope| {
            for p in 0..producers {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..per {
                        tx.send(p * per + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..producers * per).collect::<Vec<_>>());
        });
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
