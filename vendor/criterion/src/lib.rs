//! Offline stand-in for `criterion`.
//!
//! Mirrors the API shape the workspace's benches use — groups,
//! `sample_size` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock sampler
//! that prints mean and best time per benchmark. No statistics engine,
//! no HTML reports.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), 10, Duration::from_secs(2), f);
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label combining a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    target_samples: usize,
    budget: Duration,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured number of
    /// samples within the group's wall-clock budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        // Warmup doubles as a cost estimate for batching fast routines.
        let warm_start = Instant::now();
        let _ = routine();
        let warm = warm_start.elapsed();
        self.samples.push(warm.as_secs_f64());
        // Batch so each sample spans >= ~1ms of work (timer noise floor).
        let iters_per_sample = (1_000_000u128 / warm.as_nanos().max(1)).clamp(1, 10_000) as usize;
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let sample_start = Instant::now();
            for _ in 0..iters_per_sample {
                let _ = routine();
            }
            self.samples
                .push(sample_start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        target_samples: sample_size,
        budget: measurement_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
    let best = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!(
        "  {label}: mean {} / best {} ({} samples)",
        format_seconds(mean),
        format_seconds(best),
        bencher.samples.len()
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_collects_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(5).measurement_time(Duration::from_millis(50));
        let mut runs = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, n| {
            b.iter(|| std::hint::black_box(*n * 2))
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn units_format_sensibly() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(0.0025), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(2.5e-9), "2.5 ns");
    }
}
