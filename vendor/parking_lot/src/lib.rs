//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, and
//! `Condvar::wait` takes `&mut MutexGuard`. Poisoning is ignored — a
//! panicking holder propagates its panic anyway, matching parking_lot's
//! behavior closely enough for this workspace.

use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it
/// out by value (std's API) and put it back, all behind `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`], giving up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    // std's RwLock poison flag is sticky even when recovered; track
    // nothing extra — recovery below suffices.
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let counter = Arc::new(Mutex::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        *counter.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 80_000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cvar.notify_one();
            drop(ready);
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let lock = Arc::new(RwLock::new(5u32));
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
