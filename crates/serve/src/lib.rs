//! qpp-serve: a concurrent, multi-tenant online prediction service.
//!
//! The paper trains KCCA models offline and ships them to customer
//! sites; this crate is the *serving side* of that story — the piece
//! that answers "should we run this query?" while the database is live:
//!
//! - [`ModelRegistry`]: versioned models keyed by system configuration
//!   and feature kind, sharded by key hash so lookups on different keys
//!   never contend, hot-swappable (atomic `Arc` replacement) without
//!   stopping the service, loaded through `qpp_core::model_io`'s
//!   versioned, checksummed envelopes.
//! - [`TenantId`] / [`TenantSpec`] / [`TenantTable`]: the multi-tenant
//!   identity layer — per-tenant fair-share weights and admission
//!   quotas, with a catch-all default tenant.
//! - [`ShardedQueue`]: N queue shards (hash-by-tenant placement with
//!   power-of-two-choices on overflow), each holding one FIFO lane per
//!   tenant and draining them by weighted deficit round-robin;
//!   reject-on-full and reject-over-quota backpressure.
//! - [`PredictionService`]: a worker pool where each worker drains a
//!   slice of the shards, orders each fair-share micro-batch by
//!   predicted cost class (feather / golf ball / bowling ball), and
//!   answers each (model, class) group with a single batched KCCA
//!   projection + kNN pass, composing the prediction with
//!   `qpp_core::workload_mgmt` admission policies (admit with
//!   kill-timeout / reject / review).
//! - Deadline fallback: when a request's deadline expires before the
//!   KCCA answer lands, the caller is answered from the O(1)
//!   optimizer-cost baseline instead — bounded latency, graceful
//!   degradation.
//! - [`ServiceStats`]: lock-free counters and latency histograms
//!   sharded per (queue shard, tenant), merged in fixed order into a
//!   [`StatsSnapshot`] with a per-tenant breakdown — deterministic
//!   totals and quantiles regardless of worker timing.
//! - Tracing: every request gets a `qpp_obs` trace ID at admission,
//!   carried through the queue, the worker, and the prediction — and
//!   through *rejections*, which record tagged `admission_reject` marks;
//!   spans pack their shard/tenant into the value word
//!   (`qpp_obs::pack_tags`). The ID is returned on
//!   [`ServeResponse::trace_id`].
//!
//! Every fallible API returns [`QppError`], the workspace-level error
//! of the predict path (re-exported for embedders).

// Serving must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod queue;
pub mod registry;
pub mod service;
pub mod stats;
pub mod tenant;

pub use qpp_core::{QppError, QppResult};
pub use queue::{PushError, PushReceipt, QueueShard, ShardedQueue};
pub use registry::{ModelEntry, ModelKey, ModelRegistry, SwapRace};
pub use service::{
    AnswerSource, CompletionObserver, PendingPrediction, PredictRequest, PredictionService,
    ServeOptions, ServeResponse, REJECT_OVER_QUOTA, REJECT_QUEUE_FULL,
};
pub use stats::{LatencyQuantile, ServiceStats, StatsCell, StatsSnapshot, TenantSnapshot};
pub use tenant::{TenantId, TenantSpec, TenantTable, DEFAULT_TENANT};
