//! qpp-serve: a concurrent online prediction service.
//!
//! The paper trains KCCA models offline and ships them to customer
//! sites; this crate is the *serving side* of that story — the piece
//! that answers "should we run this query?" while the database is live:
//!
//! - [`ModelRegistry`]: versioned models keyed by system configuration
//!   and feature kind, hot-swappable (atomic `Arc` replacement) without
//!   stopping the service, loaded through `qpp_core::model_io`'s
//!   versioned, checksummed envelopes.
//! - [`RequestQueue`]: a bounded queue with reject-on-full backpressure
//!   and micro-batch draining.
//! - [`PredictionService`]: a worker pool answering each micro-batch
//!   with a single batched KCCA projection + kNN pass, composing the
//!   prediction with `qpp_core::workload_mgmt` admission policies
//!   (admit with kill-timeout / reject / review).
//! - Deadline fallback: when a request's deadline expires before the
//!   KCCA answer lands, the caller is answered from the O(1)
//!   optimizer-cost baseline instead — bounded latency, graceful
//!   degradation.
//! - [`ServiceStats`]: lock-free counters and latency quantiles exposed
//!   through a [`StatsSnapshot`] API, built on `qpp_obs` metric
//!   primitives.
//! - Tracing: every accepted request gets a `qpp_obs` trace ID at
//!   admission, carried through the queue, the worker, and the
//!   prediction; `qpp_obs::recorder().export_trace(id)` reconstructs a
//!   request's timeline (admission → queue wait → worker → predict,
//!   plus a `fallback` marker when the deadline answer was used). The
//!   ID is returned on [`ServeResponse::trace_id`].
//!
//! Every fallible API returns [`QppError`], the workspace-level error
//! of the predict path (re-exported for embedders).

// Serving must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod queue;
pub mod registry;
pub mod service;
pub mod stats;

pub use qpp_core::{QppError, QppResult};
pub use queue::{PushError, RequestQueue};
pub use registry::{ModelEntry, ModelKey, ModelRegistry, SwapRace};
pub use service::{
    AnswerSource, CompletionObserver, PendingPrediction, PredictRequest, PredictionService,
    ServeOptions, ServeResponse,
};
pub use stats::{LatencyQuantile, ServiceStats, StatsSnapshot};
