//! Model registry: versioned KCCA predictors keyed by system
//! configuration and feature kind, hot-swappable while the service runs.
//!
//! Swaps are atomic at the `Arc<ModelEntry>` level: a worker that
//! resolved an entry keeps predicting with a consistent
//! (predictor, fallback, version) triple even while a newer model is
//! being installed — readers never observe a torn model.

use parking_lot::RwLock;
use qpp_core::baselines::OptimizerCostModel;
use qpp_core::model_io;
use qpp_core::{FeatureKind, KccaPredictor, QppError, ResultExt};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Registry key: a system-configuration name plus the feature kind the
/// model was trained on ([`FeatureKind`] has no `Hash`, so it is folded
/// into a stable tag). Keys are totally ordered so registry listings
/// come out in a stable order regardless of install order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelKey {
    /// `SystemConfig::name` of the deployment the model targets.
    pub config: String,
    tag: &'static str,
}

fn kind_tag(kind: FeatureKind) -> &'static str {
    match kind {
        FeatureKind::QueryPlan => "query-plan",
        FeatureKind::SqlText => "sql-text",
    }
}

impl ModelKey {
    /// Builds a key from a configuration name and feature kind.
    pub fn new(config: impl Into<String>, kind: FeatureKind) -> Self {
        ModelKey {
            config: config.into(),
            tag: kind_tag(kind),
        }
    }

    /// The feature-kind tag this key embeds.
    pub fn feature_tag(&self) -> &'static str {
        self.tag
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.config, self.tag)
    }
}

/// One installed model: the KCCA predictor, the cheap cost-model
/// fallback used when a request's deadline expires, and the registry
/// version that installed it.
#[derive(Debug)]
pub struct ModelEntry {
    /// The batched KCCA predictor.
    pub predictor: KccaPredictor,
    /// O(1) optimizer-cost fallback for deadline misses.
    pub fallback: OptimizerCostModel,
    /// Monotonically increasing install version (registry-wide). Every
    /// install, guarded swap, and demotion mints a fresh one, so a
    /// version uniquely identifies one entry for guarded operations.
    pub version: u64,
    /// True when the kill-switch demoted this entry: workers skip the
    /// KCCA predictor and answer every request from the optimizer-cost
    /// fallback until a healthy model is installed over it.
    pub degraded: bool,
}

/// A guarded registry operation lost its race: the entry it expected
/// to replace is no longer (or was never) the current one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapRace {
    /// The version the caller believed was current.
    pub expected: u64,
    /// The version actually installed (`None`: key absent).
    pub found: Option<u64>,
}

impl std::fmt::Display for SwapRace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.found {
            Some(found) => write!(
                f,
                "guarded swap raced: expected version {}, found {found}",
                self.expected
            ),
            None => write!(
                f,
                "guarded swap raced: expected version {}, key not installed",
                self.expected
            ),
        }
    }
}

/// Default lock-shard count for the registry.
const DEFAULT_REGISTRY_SHARDS: usize = 8;

/// Concurrent registry of prediction models, sharded by key hash.
///
/// Each shard is a `BTreeMap` behind its own `RwLock`: a key lives in
/// exactly one shard (a stable FNV-1a hash of the key), so workers
/// resolving models for different keys never contend on one lock, and
/// every guarded operation on a key is linearized by that key's shard
/// lock. Versions are minted from one registry-wide atomic counter, so
/// the generation guards (`swap_if_current`, `demote_if_current`) stay
/// correct across shards: a version uniquely identifies one entry no
/// matter which shard holds it.
///
/// BTreeMaps (not hash maps) keep each shard's iteration sorted by
/// `(config, feature tag)`; [`ModelRegistry::keys`] merges the shards'
/// sorted runs in order, so listings are deterministic regardless of
/// install order *and* shard count — hash-map iteration order is
/// randomized per process and must never reach service output.
#[derive(Debug)]
pub struct ModelRegistry {
    shards: Vec<RwLock<BTreeMap<ModelKey, Arc<ModelEntry>>>>,
    /// Total installs (first install counts); `swap_count()` reports
    /// installs that *replaced* an existing entry.
    installs: AtomicU64,
    swaps: AtomicU64,
    demotions: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_shards(DEFAULT_REGISTRY_SHARDS)
    }
}

impl ModelRegistry {
    /// An empty registry with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry with an explicit shard count (tests exercise
    /// listing determinism across counts; embedders can right-size).
    pub fn with_shards(shards: usize) -> Self {
        ModelRegistry {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            installs: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
        }
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `key`: a stable FNV-1a hash over the key's
    /// config name and feature tag, so placement never depends on
    /// process-randomized hashing.
    // qpp-lint: hot-path
    fn shard_of(&self, key: &ModelKey) -> &RwLock<BTreeMap<ModelKey, Arc<ModelEntry>>> {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in key.config.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in key.tag.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Installs (or hot-swaps) a model under `key`, returning the new
    /// entry's version. In-flight batches keep the entry they already
    /// resolved; subsequent lookups see the new model.
    pub fn install(
        &self,
        key: ModelKey,
        predictor: KccaPredictor,
        fallback: OptimizerCostModel,
    ) -> u64 {
        let version = self.next_version();
        let entry = Arc::new(ModelEntry {
            predictor,
            fallback,
            version,
            degraded: false,
        });
        let replaced = self.shard_of(&key).write().insert(key, entry).is_some();
        if replaced {
            // ordering: pure statistic; the shard write lock above is
            // what orders the install itself.
            self.swaps.fetch_add(1, Ordering::Relaxed);
        }
        // Untraced marker (trace 0): installs happen outside any request,
        // but a ModelSwap event in the exported window lets a trace
        // reader correlate latency shifts with a mid-run hot-swap.
        qpp_obs::recorder().record_mark(0, qpp_obs::Stage::ModelSwap, version);
        version
    }

    /// Mints the next monotonic entry version.
    fn next_version(&self) -> u64 {
        // ordering: fetch_add is atomic at any ordering, which is all
        // version uniqueness needs; monotonic publication of the entry
        // itself rides on the shard locks.
        self.installs.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Installs `predictor` under `key` **only if** the currently
    /// installed entry is still `expected` — the generation token the
    /// caller resolved when it started validating its candidate.
    ///
    /// This is the canary's compare-and-swap: between shadow-scoring a
    /// candidate against version `expected` and deciding to promote it,
    /// an operator (or another canary) may have installed a newer
    /// model. An unconditional `install` would clobber that newer
    /// model with a candidate that was never compared against it;
    /// `swap_if_current` refuses instead and reports what it found.
    pub fn swap_if_current(
        &self,
        key: ModelKey,
        expected: u64,
        predictor: KccaPredictor,
        fallback: OptimizerCostModel,
    ) -> Result<u64, SwapRace> {
        // The guard and the insert happen under one shard write lock:
        // concurrent guarded operations on the same key serialize on
        // that shard, which is all the generation guard needs — entries
        // for other keys (other shards) proceed untouched.
        let mut models = self.shard_of(&key).write();
        let found = models.get(&key).map(|e| e.version);
        if found != Some(expected) {
            return Err(SwapRace { expected, found });
        }
        let version = self.next_version();
        models.insert(
            key,
            Arc::new(ModelEntry {
                predictor,
                fallback,
                version,
                degraded: false,
            }),
        );
        drop(models);
        // ordering: pure statistic; the guarded swap was ordered by the
        // shard write lock above.
        self.swaps.fetch_add(1, Ordering::Relaxed);
        qpp_obs::recorder().record_mark(0, qpp_obs::Stage::ModelSwap, version);
        Ok(version)
    }

    /// Kill-switch: replaces the entry under `key` with a degraded copy
    /// that answers every request from the optimizer-cost fallback —
    /// but only if the current entry is still `expected`, so a rollback
    /// decided against one model can never demote a newer one that was
    /// installed while the decision was being made.
    pub fn demote_if_current(&self, key: ModelKey, expected: u64) -> Result<u64, SwapRace> {
        let mut models = self.shard_of(&key).write();
        let current = match models.get(&key) {
            Some(e) if e.version == expected && !e.degraded => Arc::clone(e),
            other => {
                return Err(SwapRace {
                    expected,
                    found: other.map(|e| e.version),
                })
            }
        };
        let version = self.next_version();
        models.insert(
            key,
            Arc::new(ModelEntry {
                predictor: current.predictor.clone(),
                fallback: current.fallback.clone(),
                version,
                degraded: true,
            }),
        );
        drop(models);
        // ordering: pure statistic; the guarded demotion was ordered by
        // the shard write lock above.
        self.demotions.fetch_add(1, Ordering::Relaxed);
        qpp_obs::recorder().record_mark(0, qpp_obs::Stage::KillSwitch, version);
        Ok(version)
    }

    /// Version of the currently installed entry for `key`, if any.
    pub fn current_version(&self, key: &ModelKey) -> Option<u64> {
        self.shard_of(key).read().get(key).map(|e| e.version)
    }

    /// Installs a model from its serialized JSON envelope (see
    /// `qpp_core::model_io`), verifying format version and checksum.
    pub fn install_from_json(
        &self,
        key: ModelKey,
        json: &str,
        fallback: OptimizerCostModel,
    ) -> Result<u64, QppError> {
        let predictor = model_io::from_json(json).ctx("installing model from json")?;
        Ok(self.install(key, predictor, fallback))
    }

    /// Installs a model from a file written by `qpp_core::model_io`.
    pub fn install_from_file(
        &self,
        key: ModelKey,
        path: impl AsRef<Path>,
        fallback: OptimizerCostModel,
    ) -> Result<u64, QppError> {
        let predictor = model_io::load(path).ctx("installing model from file")?;
        Ok(self.install(key, predictor, fallback))
    }

    /// Resolves the current entry for `key`. The returned `Arc` stays
    /// valid (and internally consistent) across concurrent swaps.
    // qpp-lint: hot-path
    pub fn get(&self, key: &ModelKey) -> Option<Arc<ModelEntry>> {
        self.shard_of(key).read().get(key).cloned()
    }

    /// Installed keys, sorted by `(config, feature tag)`.
    ///
    /// Ordered k-way merge of the shards' already-sorted runs: each key
    /// lives in exactly one shard, so repeatedly taking the smallest
    /// head yields the global sorted listing — identical for any shard
    /// count.
    pub fn keys(&self) -> Vec<ModelKey> {
        let mut runs: Vec<Vec<ModelKey>> = self
            .shards
            .iter()
            .map(|s| s.read().keys().cloned().collect())
            .collect();
        let mut heads = vec![0usize; runs.len()];
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        for _ in 0..total {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if heads[i] < run.len() && best.is_none_or(|b| run[heads[i]] < runs[b][heads[b]]) {
                    best = Some(i);
                }
            }
            // `total` counted a remaining key, so a head always exists;
            // breaking (not panicking) keeps this library-safe anyway.
            let Some(b) = best else { break };
            merged.push(std::mem::replace(
                &mut runs[b][heads[b]],
                ModelKey {
                    config: String::new(),
                    tag: "",
                },
            ));
            heads[b] += 1;
        }
        merged
    }

    /// Number of installs that replaced an existing model.
    pub fn swap_count(&self) -> u64 {
        // ordering: monitoring read; any recent value is acceptable.
        self.swaps.load(Ordering::Relaxed)
    }

    /// Total installs, including first-time installs.
    pub fn install_count(&self) -> u64 {
        // ordering: monitoring read; any recent value is acceptable.
        self.installs.load(Ordering::Relaxed)
    }

    /// Kill-switch demotions performed.
    pub fn demote_count(&self) -> u64 {
        // ordering: monitoring read; any recent value is acceptable.
        self.demotions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_core::predictor::PredictorOptions;
    use qpp_core::Dataset;
    use qpp_engine::SystemConfig;
    use qpp_workload::{Schema, WorkloadGenerator};

    fn trained(seed: u64) -> (KccaPredictor, OptimizerCostModel) {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        let d = Dataset::collect(&schema, g.generate(50), &SystemConfig::neoview_4(), 2);
        (
            KccaPredictor::train(&d, PredictorOptions::default()).unwrap(),
            OptimizerCostModel::train(&d).unwrap(),
        )
    }

    #[test]
    fn install_get_and_swap_counting() {
        let registry = ModelRegistry::new();
        let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        assert!(registry.get(&key).is_none());

        let (m1, f1) = trained(11);
        let v1 = registry.install(key.clone(), m1, f1);
        assert_eq!(v1, 1);
        assert_eq!(registry.swap_count(), 0);
        assert_eq!(registry.get(&key).unwrap().version, v1);

        let (m2, f2) = trained(12);
        let v2 = registry.install(key.clone(), m2, f2);
        assert!(v2 > v1);
        assert_eq!(registry.swap_count(), 1);
        assert_eq!(registry.get(&key).unwrap().version, v2);
        assert_eq!(registry.install_count(), 2);
    }

    /// Regression: a canary rollout that resolved generation G, then
    /// decided to promote its candidate, used to call unconditional
    /// `install` — clobbering any newer model installed while the
    /// candidate was being shadow-scored. `swap_if_current` must lose
    /// that race instead of winning it.
    #[test]
    fn swap_if_current_refuses_to_clobber_a_newer_install() {
        let registry = ModelRegistry::new();
        let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        let (m1, f1) = trained(21);
        let v1 = registry.install(key.clone(), m1, f1);

        // Canary resolves v1, starts validating a candidate …
        let canary_base = registry.current_version(&key).unwrap();
        assert_eq!(canary_base, v1);

        // … meanwhile a concurrent install lands a newer model.
        let (m2, f2) = trained(22);
        let v2 = registry.install(key.clone(), m2, f2);
        assert!(v2 > v1);

        // The canary's guarded swap must now fail and leave v2 alone.
        let (cand, cand_f) = trained(23);
        let err = registry
            .swap_if_current(key.clone(), canary_base, cand.clone(), cand_f.clone())
            .unwrap_err();
        assert_eq!(
            err,
            SwapRace {
                expected: v1,
                found: Some(v2)
            }
        );
        assert_eq!(registry.current_version(&key), Some(v2));

        // Guarded against the *actual* current version, it succeeds.
        let v3 = registry
            .swap_if_current(key.clone(), v2, cand, cand_f)
            .unwrap();
        assert!(v3 > v2);
        assert_eq!(registry.current_version(&key), Some(v3));
        assert!(!registry.get(&key).unwrap().degraded);
    }

    #[test]
    fn demote_if_current_is_generation_guarded() {
        let registry = ModelRegistry::new();
        let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        let (m1, f1) = trained(24);
        let v1 = registry.install(key.clone(), m1, f1);

        // A rollback decided against v1 after v2 landed must not fire.
        let (m2, f2) = trained(25);
        let v2 = registry.install(key.clone(), m2, f2);
        let err = registry.demote_if_current(key.clone(), v1).unwrap_err();
        assert_eq!(err.found, Some(v2));
        assert!(!registry.get(&key).unwrap().degraded);
        assert_eq!(registry.demote_count(), 0);

        // Demoting the actual current version degrades the entry.
        let v3 = registry.demote_if_current(key.clone(), v2).unwrap();
        assert!(v3 > v2);
        let entry = registry.get(&key).unwrap();
        assert!(entry.degraded);
        assert_eq!(entry.version, v3);
        assert_eq!(registry.demote_count(), 1);

        // Demoting an already-degraded entry is refused (idempotence
        // guard: one regression, one demotion).
        assert!(registry.demote_if_current(key.clone(), v3).is_err());
        assert_eq!(registry.demote_count(), 1);

        // A fresh install over the degraded entry restores service.
        let (m3, f3) = trained(26);
        let v4 = registry.install(key.clone(), m3, f3);
        assert!(v4 > v3);
        assert!(!registry.get(&key).unwrap().degraded);
    }

    #[test]
    fn keys_distinguish_feature_kinds() {
        let plan = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        let text = ModelKey::new("neoview-4", FeatureKind::SqlText);
        assert_ne!(plan, text);
        let registry = ModelRegistry::new();
        let (m, f) = trained(13);
        registry.install(plan.clone(), m, f);
        assert!(registry.get(&plan).is_some());
        assert!(registry.get(&text).is_none());
    }

    #[test]
    fn keys_listing_is_sorted_regardless_of_install_order() {
        let registry = ModelRegistry::new();
        let (m, f) = trained(15);
        // Install in an order that differs from the sorted order.
        for config in ["zeta-9", "alpha-1", "neoview-4"] {
            registry.install(
                ModelKey::new(config, FeatureKind::SqlText),
                m.clone(),
                f.clone(),
            );
            registry.install(
                ModelKey::new(config, FeatureKind::QueryPlan),
                m.clone(),
                f.clone(),
            );
        }
        let listed: Vec<String> = registry.keys().iter().map(|k| k.to_string()).collect();
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted, "registry listing must be sorted");
        assert_eq!(listed[0], "alpha-1/query-plan");
        assert_eq!(listed[5], "zeta-9/sql-text");
    }

    /// The sharded registry must list keys identically for *any* shard
    /// count: keys scatter across shards by hash, and the ordered merge
    /// has to reassemble the same sorted listing a single BTreeMap
    /// would produce.
    #[test]
    fn keys_listing_is_deterministic_across_shard_counts() {
        let (m, f) = trained(16);
        let configs = [
            "zeta-9",
            "alpha-1",
            "neoview-4",
            "mu-5",
            "beta-2",
            "omega-7",
            "kappa-3",
        ];
        let mut listings: Vec<Vec<String>> = Vec::new();
        for shards in [1, 2, 3, 8, 16] {
            let registry = ModelRegistry::with_shards(shards);
            assert_eq!(registry.shard_count(), shards);
            for config in configs {
                registry.install(
                    ModelKey::new(config, FeatureKind::SqlText),
                    m.clone(),
                    f.clone(),
                );
                registry.install(
                    ModelKey::new(config, FeatureKind::QueryPlan),
                    m.clone(),
                    f.clone(),
                );
            }
            let listed: Vec<String> = registry.keys().iter().map(|k| k.to_string()).collect();
            let mut sorted = listed.clone();
            sorted.sort();
            assert_eq!(listed, sorted, "listing must be sorted at {shards} shards");
            assert_eq!(listed.len(), configs.len() * 2);
            listings.push(listed);
        }
        for other in &listings[1..] {
            assert_eq!(
                &listings[0], other,
                "listing must not depend on shard count"
            );
        }
        // And guarded operations stay correct on a sharded registry.
        let registry = ModelRegistry::with_shards(3);
        let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        let v1 = registry.install(key.clone(), m.clone(), f.clone());
        let v2 = registry
            .swap_if_current(key.clone(), v1, m.clone(), f.clone())
            .unwrap();
        assert!(v2 > v1);
        assert!(registry.swap_if_current(key, v1, m, f).is_err());
    }

    #[test]
    fn install_from_json_verifies_envelope() {
        let registry = ModelRegistry::new();
        let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
        let (m, f) = trained(14);
        let json = model_io::to_json(&m).unwrap();
        let v = registry
            .install_from_json(key.clone(), &json, f.clone())
            .unwrap();
        assert_eq!(registry.get(&key).unwrap().version, v);

        let bad = json.replace(
            &format!("\"format_version\":{}", model_io::FORMAT_VERSION),
            "\"format_version\":9999",
        );
        let err = registry.install_from_json(key, &bad, f).unwrap_err();
        match err {
            QppError::ModelIo { context, source } => {
                assert_eq!(context, "installing model from json");
                assert!(matches!(
                    source.as_ref(),
                    qpp_core::model_io::ModelIoError::UnsupportedVersion { .. }
                ));
            }
            other => panic!("expected ModelIo error, got {other:?}"),
        }
    }
}
