//! Service statistics, sharded per queue shard and tenant.
//!
//! The primitives live in `qpp-obs` ([`qpp_obs::Counter`],
//! [`qpp_obs::Histogram`], [`LatencyQuantile`]) so the serving stats,
//! the trace recorder, and the bench harness share one implementation
//! and one set of quantile conventions; this module is the serving
//! view over them.
//!
//! Layout: one [`StatsCell`] per (shard, tenant) pair holds the
//! counters workers bump on the hot path — submissions, completions,
//! fallbacks, and a log-spaced latency histogram — so workers on
//! different shards never contend on a cache line, and per-tenant
//! latency distributions come for free. Rejections are per-tenant only
//! (a shed request never reached a shard). [`ServiceStats::snapshot`]
//! performs an *ordered merge*: cells are folded in fixed
//! shard-major/tenant-minor index order, histograms by summing bucket
//! counts, so the reported totals and quantiles are deterministic for a
//! given set of recorded events regardless of worker count or timing.

use crate::tenant::TenantTable;
use qpp_obs::{quantile_of, Counter, Histogram, BUCKETS};
use std::time::{Duration, Instant};

pub use qpp_obs::LatencyQuantile;

/// Hot-path counters for one (shard, tenant) pair.
#[derive(Debug, Default)]
pub struct StatsCell {
    /// Requests accepted into this shard for this tenant.
    pub submitted: Counter,
    /// Requests answered by a worker through the KCCA model.
    pub completed: Counter,
    /// Requests answered client-side by the cost-model fallback after
    /// the per-request deadline expired.
    pub fallbacks: Counter,
    latency: Histogram,
}

impl StatsCell {
    /// Records one end-to-end request latency.
    // qpp-lint: hot-path
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency.as_micros() as u64);
    }
}

/// Static tenant labels carried into snapshots.
#[derive(Debug, Clone)]
struct TenantLabel {
    id: u32,
    name: String,
    weight: u32,
}

/// Live counters for a running prediction service.
///
/// All fields are lock-free: workers and clients update them without
/// any shared lock, and [`ServiceStats::snapshot`] reads a
/// consistent-enough view for monitoring (individual counters are
/// exact; cross-counter skew is bounded by in-flight requests).
#[derive(Debug)]
pub struct ServiceStats {
    started: Option<Instant>,
    shards: usize,
    labels: Vec<TenantLabel>,
    /// Row-major `[shard][tenant]` cells.
    cells: Vec<StatsCell>,
    /// Per-tenant: submissions rejected because every candidate shard
    /// was full.
    rejected_full: Vec<Counter>,
    /// Per-tenant: submissions rejected because the tenant was over its
    /// admission quota.
    rejected_quota: Vec<Counter>,
    /// Worker answers that arrived after the client had already fallen
    /// back (wasted work; the client saw exactly one answer).
    pub late_answers: Counter,
    /// Admission-gateway outcomes across all answered requests.
    pub admitted: Counter,
    /// Requests the policy rejected (predicted over a resource limit).
    pub policy_rejected: Counter,
    /// Requests flagged for human review (low prediction confidence).
    pub review_required: Counter,
    /// Micro-batches drained by workers.
    pub batches: Counter,
    /// Requests carried by those batches (mean batch size = this /
    /// `batches`).
    pub batched_requests: Counter,
    /// Largest shard depth observed at submission time.
    pub max_queue_depth: Counter,
    /// Model hot-swaps observed via the registry.
    pub model_swaps: Counter,
    /// Kill-switch demotions observed via the registry.
    pub model_demotions: Counter,
    /// Executed-query outcomes reported back through
    /// `observe_completion` (the adaptation feedback loop's input).
    pub observed_completions: Counter,
    /// Requests answered by a worker from the optimizer-cost baseline
    /// because the installed entry was kill-switch demoted (distinct
    /// from `fallbacks`, which count client-side deadline misses).
    pub degraded_answers: Counter,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::with_shape(1, 1)
    }
}

impl ServiceStats {
    /// Single-shard, single-tenant stats (unit tests, simple embeds).
    pub fn new() -> Self {
        ServiceStats::with_shape(1, 1)
    }

    /// Stats sized `shards x tenants` with synthetic tenant labels
    /// (dense index as ID, weight 1).
    pub fn with_shape(shards: usize, tenants: usize) -> Self {
        let labels = (0..tenants.max(1))
            .map(|idx| TenantLabel {
                id: idx as u32,
                name: format!("tenant-{idx}"),
                weight: 1,
            })
            .collect();
        ServiceStats::with_labels(shards, labels)
    }

    /// Stats sized for `shards` shards and the tenants of `table`,
    /// carrying the table's names/weights into snapshots.
    pub fn for_tenants(shards: usize, table: &TenantTable) -> Self {
        let labels = table
            .specs()
            .iter()
            .map(|s| TenantLabel {
                id: s.id.0,
                name: s.name.clone(),
                weight: s.weight,
            })
            .collect();
        ServiceStats::with_labels(shards, labels)
    }

    fn with_labels(shards: usize, labels: Vec<TenantLabel>) -> Self {
        let shards = shards.max(1);
        let tenants = labels.len();
        ServiceStats {
            started: Some(Instant::now()),
            shards,
            labels,
            cells: (0..shards * tenants)
                .map(|_| StatsCell::default())
                .collect(),
            rejected_full: (0..tenants).map(|_| Counter::default()).collect(),
            rejected_quota: (0..tenants).map(|_| Counter::default()).collect(),
            late_answers: Counter::default(),
            admitted: Counter::default(),
            policy_rejected: Counter::default(),
            review_required: Counter::default(),
            batches: Counter::default(),
            batched_requests: Counter::default(),
            max_queue_depth: Counter::default(),
            model_swaps: Counter::default(),
            model_demotions: Counter::default(),
            observed_completions: Counter::default(),
            degraded_answers: Counter::default(),
        }
    }

    /// Number of stats shards (matches the queue's shard count).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.labels.len()
    }

    /// The hot-path cell for a (shard, tenant) pair.
    // qpp-lint: hot-path
    pub fn cell(&self, shard: usize, tenant: usize) -> &StatsCell {
        &self.cells[shard * self.labels.len() + tenant]
    }

    /// Counts a queue-full rejection for `tenant`.
    // qpp-lint: hot-path
    pub fn record_rejected_full(&self, tenant: usize) {
        self.rejected_full[tenant].incr();
    }

    /// Counts an over-quota rejection for `tenant`.
    // qpp-lint: hot-path
    pub fn record_rejected_quota(&self, tenant: usize) {
        self.rejected_quota[tenant].incr();
    }

    /// Records one end-to-end request latency into cell (0, 0); kept
    /// for single-tenant embeds and tests. Workers use
    /// [`ServiceStats::cell`] directly.
    pub fn record_latency(&self, latency: Duration) {
        self.cells[0].record_latency(latency);
    }

    /// Records a drained micro-batch of `len` requests.
    // qpp-lint: hot-path
    pub fn record_batch(&self, len: usize) {
        self.batches.incr();
        self.batched_requests.add(len as u64);
    }

    /// Raises the max-depth watermark to at least `depth`.
    // qpp-lint: hot-path
    pub fn observe_queue_depth(&self, depth: usize) {
        self.max_queue_depth.observe_max(depth as u64);
    }

    /// An immutable view of the counters plus derived rates/quantiles.
    ///
    /// The merge is *ordered*: cells fold in shard-major, tenant-minor
    /// index order and histograms merge by summing per-bucket counts,
    /// so two snapshots of identical recorded events are identical
    /// regardless of which workers recorded them.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let tenants = self.labels.len();
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut fallbacks = 0u64;
        let mut merged = [0u64; BUCKETS];
        let mut per_tenant = Vec::with_capacity(tenants);
        for (t, label) in self.labels.iter().enumerate() {
            let mut cell_submitted = 0u64;
            let mut cell_completed = 0u64;
            let mut cell_fallbacks = 0u64;
            let mut cell_hist = [0u64; BUCKETS];
            for shard in 0..self.shards {
                let cell = self.cell(shard, t);
                cell_submitted += cell.submitted.get();
                cell_completed += cell.completed.get();
                cell_fallbacks += cell.fallbacks.get();
                for (acc, n) in cell_hist.iter_mut().zip(cell.latency.counts()) {
                    *acc += n;
                }
            }
            submitted += cell_submitted;
            completed += cell_completed;
            fallbacks += cell_fallbacks;
            for (acc, n) in merged.iter_mut().zip(cell_hist.iter()) {
                *acc += *n;
            }
            per_tenant.push(TenantSnapshot {
                tenant: label.id,
                name: label.name.clone(),
                weight: label.weight,
                submitted: cell_submitted,
                completed: cell_completed,
                fallbacks: cell_fallbacks,
                rejected_queue_full: self.rejected_full[t].get(),
                rejected_quota: self.rejected_quota[t].get(),
                p50_latency: quantile_of(&cell_hist, 0.50),
                p99_latency: quantile_of(&cell_hist, 0.99),
            });
        }
        let rejected_queue_full: u64 = per_tenant.iter().map(|t| t.rejected_queue_full).sum();
        let rejected_quota: u64 = per_tenant.iter().map(|t| t.rejected_quota).sum();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        let answered = completed + fallbacks;
        let uptime = self.started.map(|s| s.elapsed()).unwrap_or_default();
        StatsSnapshot {
            uptime,
            submitted,
            completed,
            fallbacks,
            late_answers: self.late_answers.get(),
            rejected_queue_full,
            rejected_quota,
            admitted: self.admitted.get(),
            policy_rejected: self.policy_rejected.get(),
            review_required: self.review_required.get(),
            queue_depth,
            max_queue_depth: self.max_queue_depth.get(),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            throughput_per_sec: if uptime.as_secs_f64() > 0.0 {
                answered as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            fallback_rate: if answered == 0 {
                0.0
            } else {
                fallbacks as f64 / answered as f64
            },
            p50_latency: quantile_of(&merged, 0.50),
            p95_latency: quantile_of(&merged, 0.95),
            p99_latency: quantile_of(&merged, 0.99),
            model_swaps: self.model_swaps.get(),
            model_demotions: self.model_demotions.get(),
            observed_completions: self.observed_completions.get(),
            degraded_answers: self.degraded_answers.get(),
            per_tenant,
        }
    }
}

/// Per-tenant slice of a [`StatsSnapshot`] (merged across shards in
/// fixed shard order).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Numeric tenant ID.
    pub tenant: u32,
    /// Configured tenant name.
    pub name: String,
    /// Configured fair-share weight.
    pub weight: u32,
    /// Requests accepted for this tenant.
    pub submitted: u64,
    /// Requests answered through the KCCA model.
    pub completed: u64,
    /// Requests answered by the deadline fallback.
    pub fallbacks: u64,
    /// Submissions shed because every candidate shard was full.
    pub rejected_queue_full: u64,
    /// Submissions shed because the tenant was over quota.
    pub rejected_quota: u64,
    /// Median end-to-end latency for this tenant.
    pub p50_latency: LatencyQuantile,
    /// 99th-percentile latency for this tenant.
    pub p99_latency: LatencyQuantile,
}

/// Point-in-time statistics view.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Time since service start.
    pub uptime: Duration,
    /// Requests accepted into the queue (all tenants).
    pub submitted: u64,
    /// Requests answered through the KCCA model.
    pub completed: u64,
    /// Requests answered by the deadline fallback.
    pub fallbacks: u64,
    /// Worker answers that arrived after a client fallback.
    pub late_answers: u64,
    /// Submissions rejected because every candidate shard was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected because a tenant was over quota.
    pub rejected_quota: u64,
    /// Gateway outcome counts.
    pub admitted: u64,
    /// Requests the admission policy rejected.
    pub policy_rejected: u64,
    /// Requests flagged for review.
    pub review_required: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Highest shard depth observed.
    pub max_queue_depth: u64,
    /// Mean micro-batch size drained by workers.
    pub mean_batch_size: f64,
    /// Answered requests per second of uptime.
    pub throughput_per_sec: f64,
    /// Fraction of answers that came from the fallback path.
    pub fallback_rate: f64,
    /// Median end-to-end latency (histogram bucket bound).
    pub p50_latency: LatencyQuantile,
    /// 95th-percentile latency.
    pub p95_latency: LatencyQuantile,
    /// 99th-percentile latency.
    pub p99_latency: LatencyQuantile,
    /// Model hot-swaps performed.
    pub model_swaps: u64,
    /// Kill-switch demotions performed.
    pub model_demotions: u64,
    /// Executed-query outcomes fed back via `observe_completion`.
    pub observed_completions: u64,
    /// Worker answers served from the baseline due to a demoted entry.
    pub degraded_answers: u64,
    /// Per-tenant breakdown in ascending tenant-ID order.
    pub per_tenant: Vec<TenantSnapshot>,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.2}s | submitted {} | completed {} | fallbacks {} ({:.1}%) | late {}",
            self.uptime.as_secs_f64(),
            self.submitted,
            self.completed,
            self.fallbacks,
            self.fallback_rate * 100.0,
            self.late_answers,
        )?;
        writeln!(
            f,
            "queue: depth {} (max {}) | rejected-full {} | rejected-quota {} | mean batch {:.2}",
            self.queue_depth,
            self.max_queue_depth,
            self.rejected_queue_full,
            self.rejected_quota,
            self.mean_batch_size,
        )?;
        writeln!(
            f,
            "gateway: admitted {} | rejected {} | review {}",
            self.admitted, self.policy_rejected, self.review_required,
        )?;
        writeln!(
            f,
            "latency p50/p95/p99 {}/{}/{} µs | {:.0} req/s | model swaps {}",
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.throughput_per_sec,
            self.model_swaps,
        )?;
        write!(
            f,
            "adapt: observed {} | degraded answers {} | demotions {}",
            self.observed_completions, self.degraded_answers, self.model_demotions,
        )?;
        for t in &self.per_tenant {
            write!(
                f,
                "\n  {} (id {}, weight {}): submitted {} | completed {} | fallbacks {} | \
                 rejected full/quota {}/{} | p50/p99 {}/{} µs",
                t.name,
                t.tenant,
                t.weight,
                t.submitted,
                t.completed,
                t.fallbacks,
                t.rejected_queue_full,
                t.rejected_quota,
                t.p50_latency,
                t.p99_latency,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantId, TenantSpec};

    #[test]
    fn latency_quantiles_track_buckets() {
        let stats = ServiceStats::new();
        // 90 fast samples (~8 µs), 10 slow (~1024 µs).
        for _ in 0..90 {
            stats.record_latency(Duration::from_micros(8));
        }
        for _ in 0..10 {
            stats.record_latency(Duration::from_micros(1024));
        }
        let snap = stats.snapshot(0);
        assert!(
            snap.p50_latency.bound_us <= 16,
            "p50 {}",
            snap.p50_latency.bound_us
        );
        assert!(
            snap.p99_latency.bound_us >= 1024,
            "p99 {}",
            snap.p99_latency.bound_us
        );
        assert!(!snap.p99_latency.saturated);
        assert!(snap.p50_latency.bound_us <= snap.p95_latency.bound_us);
        assert!(snap.p95_latency.bound_us <= snap.p99_latency.bound_us);
    }

    #[test]
    fn tail_latency_beyond_histogram_is_reported_saturated() {
        let stats = ServiceStats::new();
        // 40 s exceeds the last finite bucket edge (2^25 µs ≈ 33.5 s);
        // the old code reported p99 as a finite 2^26 µs ≈ 67 s bound.
        for _ in 0..5 {
            stats.record_latency(Duration::from_micros(100));
        }
        stats.record_latency(Duration::from_secs(40));
        let snap = stats.snapshot(0);
        assert!(!snap.p50_latency.saturated);
        assert!(snap.p99_latency.saturated, "p99 {:?}", snap.p99_latency);
        assert_eq!(snap.p99_latency.bound_us, 1u64 << 25);
        let text = format!("{snap}");
        assert!(text.contains(">=33554432"), "display: {text}");
    }

    /// Regression for the q=0 / low-q bug: the old quantile computed
    /// `rank = ceil(total * q)` with no floor, so q small enough to
    /// round to rank 0 matched the *empty* first bucket and reported a
    /// finite `<= 2` µs even when every sample was orders of magnitude
    /// slower.
    #[test]
    fn low_quantiles_cannot_report_an_empty_bucket() {
        let stats = ServiceStats::new();
        for _ in 0..10 {
            stats.record_latency(Duration::from_micros(1024)); // bucket 10
        }
        let counts = {
            let mut c = [0u64; qpp_obs::BUCKETS];
            c[10] = 10;
            c
        };
        let q0 = qpp_obs::quantile_of(&counts, 0.0);
        assert_eq!(q0.bound_us, (1 << 11) - 1, "q=0 must land in bucket 10");
        // And through the snapshot path: p50 of all-slow samples cannot
        // be faster than the samples.
        let snap = stats.snapshot(0);
        assert!(
            snap.p50_latency.bound_us >= 1024,
            "p50 {:?}",
            snap.p50_latency
        );
    }

    #[test]
    fn batch_and_depth_accounting() {
        let stats = ServiceStats::new();
        stats.record_batch(4);
        stats.record_batch(8);
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(7);
        stats.observe_queue_depth(2);
        let snap = stats.snapshot(1);
        assert!((snap.mean_batch_size - 6.0).abs() < 1e-12);
        assert_eq!(snap.max_queue_depth, 7);
        assert_eq!(snap.queue_depth, 1);
    }

    #[test]
    fn empty_stats_have_zero_quantiles() {
        let snap = ServiceStats::new().snapshot(0);
        assert_eq!(snap.p50_latency.bound_us, 0);
        assert!(!snap.p50_latency.saturated);
        assert_eq!(snap.fallback_rate, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
    }

    #[test]
    fn display_is_total() {
        let stats = ServiceStats::new();
        stats.record_latency(Duration::from_micros(100));
        let text = format!("{}", stats.snapshot(2));
        assert!(text.contains("p50"));
        assert!(text.contains("model swaps"));
    }

    #[test]
    fn sharded_cells_merge_in_fixed_order() {
        let table = TenantTable::new(vec![
            TenantSpec::new(TenantId(3), "etl").weight(2),
            TenantSpec::new(TenantId(9), "adhoc"),
        ]);
        let stats = ServiceStats::for_tenants(4, &table);
        // Scatter the same logical events across different shards; the
        // merged view must not depend on which shard recorded them.
        for shard in 0..4 {
            for tenant in 0..3 {
                let cell = stats.cell(shard, tenant);
                cell.submitted.add(2);
                cell.completed.incr();
                cell.record_latency(Duration::from_micros(64 << tenant));
            }
        }
        stats.record_rejected_quota(1);
        stats.record_rejected_full(2);
        let snap = stats.snapshot(0);
        assert_eq!(snap.submitted, 24);
        assert_eq!(snap.completed, 12);
        assert_eq!(snap.rejected_quota, 1);
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.per_tenant.len(), 3);
        // Dense order is ascending tenant ID with the default first.
        assert_eq!(snap.per_tenant[0].tenant, 0);
        assert_eq!(snap.per_tenant[1].tenant, 3);
        assert_eq!(snap.per_tenant[1].name, "etl");
        assert_eq!(snap.per_tenant[1].weight, 2);
        assert_eq!(snap.per_tenant[2].tenant, 9);
        assert_eq!(snap.per_tenant[1].rejected_quota, 1);
        assert_eq!(snap.per_tenant[2].rejected_queue_full, 1);
        for t in &snap.per_tenant {
            assert_eq!(t.submitted, 8);
            assert_eq!(t.completed, 4);
        }
        // Per-tenant quantiles reflect only that tenant's samples.
        assert!(snap.per_tenant[0].p50_latency.bound_us <= 127);
        assert!(snap.per_tenant[2].p50_latency.bound_us >= 256);
        // Ordered merge is reproducible.
        let again = stats.snapshot(0);
        assert_eq!(snap.per_tenant, again.per_tenant);
        assert_eq!(snap.p99_latency, again.p99_latency);
    }
}
