//! Service statistics: lock-free counters and a log-spaced latency
//! histogram, exposed through an immutable snapshot API.
//!
//! The primitives live in `qpp-obs` ([`qpp_obs::Counter`],
//! [`qpp_obs::Histogram`], [`LatencyQuantile`]) so the serving stats,
//! the trace recorder, and the bench harness share one implementation
//! and one set of quantile conventions; this module is the serving
//! view over them.

use qpp_obs::{Counter, Histogram};
use std::time::{Duration, Instant};

pub use qpp_obs::LatencyQuantile;

/// Live counters for a running prediction service.
///
/// All fields are lock-free: workers and clients update them without
/// any shared lock, and [`ServiceStats::snapshot`] reads a
/// consistent-enough view for monitoring (individual counters are
/// exact; cross-counter skew is bounded by in-flight requests).
#[derive(Debug, Default)]
pub struct ServiceStats {
    started: Option<Instant>,
    /// Requests accepted into the queue.
    pub submitted: Counter,
    /// Requests answered by a worker through the KCCA model.
    pub completed: Counter,
    /// Requests answered client-side by the cost-model fallback after
    /// the per-request deadline expired.
    pub fallbacks: Counter,
    /// Worker answers that arrived after the client had already fallen
    /// back (wasted work; the client saw exactly one answer).
    pub late_answers: Counter,
    /// Requests rejected at submission because the queue was full.
    pub rejected_queue_full: Counter,
    /// Admission-gateway outcomes across all answered requests.
    pub admitted: Counter,
    /// Requests the policy rejected (predicted over a resource limit).
    pub policy_rejected: Counter,
    /// Requests flagged for human review (low prediction confidence).
    pub review_required: Counter,
    /// Micro-batches drained by workers.
    pub batches: Counter,
    /// Requests carried by those batches (mean batch size = this /
    /// `batches`).
    pub batched_requests: Counter,
    /// Largest queue depth observed at submission time.
    pub max_queue_depth: Counter,
    /// Model hot-swaps observed via the registry.
    pub model_swaps: Counter,
    /// Kill-switch demotions observed via the registry.
    pub model_demotions: Counter,
    /// Executed-query outcomes reported back through
    /// `observe_completion` (the adaptation feedback loop's input).
    pub observed_completions: Counter,
    /// Requests answered by a worker from the optimizer-cost baseline
    /// because the installed entry was kill-switch demoted (distinct
    /// from `fallbacks`, which count client-side deadline misses).
    pub degraded_answers: Counter,
    latency: Histogram,
}

impl ServiceStats {
    /// Creates zeroed stats with the uptime clock starting now.
    pub fn new() -> Self {
        ServiceStats {
            started: Some(Instant::now()),
            ..ServiceStats::default()
        }
    }

    /// Records one end-to-end request latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency.as_micros() as u64);
    }

    /// Records a drained micro-batch of `len` requests.
    pub fn record_batch(&self, len: usize) {
        self.batches.incr();
        self.batched_requests.add(len as u64);
    }

    /// Raises the max-queue-depth watermark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.max_queue_depth.observe_max(depth as u64);
    }

    /// An immutable view of the counters plus derived rates/quantiles.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let completed = self.completed.get();
        let fallbacks = self.fallbacks.get();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        let answered = completed + fallbacks;
        let uptime = self.started.map(|s| s.elapsed()).unwrap_or_default();
        StatsSnapshot {
            uptime,
            submitted: self.submitted.get(),
            completed,
            fallbacks,
            late_answers: self.late_answers.get(),
            rejected_queue_full: self.rejected_queue_full.get(),
            admitted: self.admitted.get(),
            policy_rejected: self.policy_rejected.get(),
            review_required: self.review_required.get(),
            queue_depth,
            max_queue_depth: self.max_queue_depth.get(),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            throughput_per_sec: if uptime.as_secs_f64() > 0.0 {
                answered as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            fallback_rate: if answered == 0 {
                0.0
            } else {
                fallbacks as f64 / answered as f64
            },
            p50_latency: self.latency.quantile(0.50),
            p95_latency: self.latency.quantile(0.95),
            p99_latency: self.latency.quantile(0.99),
            model_swaps: self.model_swaps.get(),
            model_demotions: self.model_demotions.get(),
            observed_completions: self.observed_completions.get(),
            degraded_answers: self.degraded_answers.get(),
        }
    }
}

/// Point-in-time statistics view.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Time since service start.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered through the KCCA model.
    pub completed: u64,
    /// Requests answered by the deadline fallback.
    pub fallbacks: u64,
    /// Worker answers that arrived after a client fallback.
    pub late_answers: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Gateway outcome counts.
    pub admitted: u64,
    /// Requests the admission policy rejected.
    pub policy_rejected: u64,
    /// Requests flagged for review.
    pub review_required: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub max_queue_depth: u64,
    /// Mean micro-batch size drained by workers.
    pub mean_batch_size: f64,
    /// Answered requests per second of uptime.
    pub throughput_per_sec: f64,
    /// Fraction of answers that came from the fallback path.
    pub fallback_rate: f64,
    /// Median end-to-end latency (histogram bucket bound).
    pub p50_latency: LatencyQuantile,
    /// 95th-percentile latency.
    pub p95_latency: LatencyQuantile,
    /// 99th-percentile latency.
    pub p99_latency: LatencyQuantile,
    /// Model hot-swaps performed.
    pub model_swaps: u64,
    /// Kill-switch demotions performed.
    pub model_demotions: u64,
    /// Executed-query outcomes fed back via `observe_completion`.
    pub observed_completions: u64,
    /// Worker answers served from the baseline due to a demoted entry.
    pub degraded_answers: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.2}s | submitted {} | completed {} | fallbacks {} ({:.1}%) | late {}",
            self.uptime.as_secs_f64(),
            self.submitted,
            self.completed,
            self.fallbacks,
            self.fallback_rate * 100.0,
            self.late_answers,
        )?;
        writeln!(
            f,
            "queue: depth {} (max {}) | rejected-full {} | mean batch {:.2}",
            self.queue_depth, self.max_queue_depth, self.rejected_queue_full, self.mean_batch_size,
        )?;
        writeln!(
            f,
            "gateway: admitted {} | rejected {} | review {}",
            self.admitted, self.policy_rejected, self.review_required,
        )?;
        writeln!(
            f,
            "latency p50/p95/p99 {}/{}/{} µs | {:.0} req/s | model swaps {}",
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.throughput_per_sec,
            self.model_swaps,
        )?;
        write!(
            f,
            "adapt: observed {} | degraded answers {} | demotions {}",
            self.observed_completions, self.degraded_answers, self.model_demotions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_track_buckets() {
        let stats = ServiceStats::new();
        // 90 fast samples (~8 µs), 10 slow (~1024 µs).
        for _ in 0..90 {
            stats.record_latency(Duration::from_micros(8));
        }
        for _ in 0..10 {
            stats.record_latency(Duration::from_micros(1024));
        }
        let snap = stats.snapshot(0);
        assert!(
            snap.p50_latency.bound_us <= 16,
            "p50 {}",
            snap.p50_latency.bound_us
        );
        assert!(
            snap.p99_latency.bound_us >= 1024,
            "p99 {}",
            snap.p99_latency.bound_us
        );
        assert!(!snap.p99_latency.saturated);
        assert!(snap.p50_latency.bound_us <= snap.p95_latency.bound_us);
        assert!(snap.p95_latency.bound_us <= snap.p99_latency.bound_us);
    }

    #[test]
    fn tail_latency_beyond_histogram_is_reported_saturated() {
        let stats = ServiceStats::new();
        // 40 s exceeds the last finite bucket edge (2^25 µs ≈ 33.5 s);
        // the old code reported p99 as a finite 2^26 µs ≈ 67 s bound.
        for _ in 0..5 {
            stats.record_latency(Duration::from_micros(100));
        }
        stats.record_latency(Duration::from_secs(40));
        let snap = stats.snapshot(0);
        assert!(!snap.p50_latency.saturated);
        assert!(snap.p99_latency.saturated, "p99 {:?}", snap.p99_latency);
        assert_eq!(snap.p99_latency.bound_us, 1u64 << 25);
        let text = format!("{snap}");
        assert!(text.contains(">=33554432"), "display: {text}");
    }

    /// Regression for the q=0 / low-q bug: the old quantile computed
    /// `rank = ceil(total * q)` with no floor, so q small enough to
    /// round to rank 0 matched the *empty* first bucket and reported a
    /// finite `<= 2` µs even when every sample was orders of magnitude
    /// slower.
    #[test]
    fn low_quantiles_cannot_report_an_empty_bucket() {
        let stats = ServiceStats::new();
        for _ in 0..10 {
            stats.record_latency(Duration::from_micros(1024)); // bucket 10
        }
        let counts = {
            let mut c = [0u64; qpp_obs::BUCKETS];
            c[10] = 10;
            c
        };
        let q0 = qpp_obs::quantile_of(&counts, 0.0);
        assert_eq!(q0.bound_us, (1 << 11) - 1, "q=0 must land in bucket 10");
        // And through the snapshot path: p50 of all-slow samples cannot
        // be faster than the samples.
        let snap = stats.snapshot(0);
        assert!(
            snap.p50_latency.bound_us >= 1024,
            "p50 {:?}",
            snap.p50_latency
        );
    }

    #[test]
    fn batch_and_depth_accounting() {
        let stats = ServiceStats::new();
        stats.record_batch(4);
        stats.record_batch(8);
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(7);
        stats.observe_queue_depth(2);
        let snap = stats.snapshot(1);
        assert!((snap.mean_batch_size - 6.0).abs() < 1e-12);
        assert_eq!(snap.max_queue_depth, 7);
        assert_eq!(snap.queue_depth, 1);
    }

    #[test]
    fn empty_stats_have_zero_quantiles() {
        let snap = ServiceStats::new().snapshot(0);
        assert_eq!(snap.p50_latency.bound_us, 0);
        assert!(!snap.p50_latency.saturated);
        assert_eq!(snap.fallback_rate, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
    }

    #[test]
    fn display_is_total() {
        let stats = ServiceStats::new();
        stats.record_latency(Duration::from_micros(100));
        let text = format!("{}", stats.snapshot(2));
        assert!(text.contains("p50"));
        assert!(text.contains("model swaps"));
    }
}
