//! Service statistics: lock-free counters and a log-spaced latency
//! histogram, exposed through an immutable snapshot API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Latency histogram bucket count. Bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
const BUCKETS: usize = 26; // 1 µs .. ~33 s

/// Live counters for a running prediction service.
///
/// All fields are atomics: workers and clients update them without any
/// shared lock, and [`ServiceStats::snapshot`] reads a consistent-enough
/// view for monitoring (individual counters are exact; cross-counter
/// skew is bounded by in-flight requests).
#[derive(Debug)]
pub struct ServiceStats {
    started: Instant,
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests answered by a worker through the KCCA model.
    pub completed: AtomicU64,
    /// Requests answered client-side by the cost-model fallback after
    /// the per-request deadline expired.
    pub fallbacks: AtomicU64,
    /// Worker answers that arrived after the client had already fallen
    /// back (wasted work; the client saw exactly one answer).
    pub late_answers: AtomicU64,
    /// Requests rejected at submission because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Admission-gateway outcomes across all answered requests.
    pub admitted: AtomicU64,
    /// Requests the policy rejected (predicted over a resource limit).
    pub policy_rejected: AtomicU64,
    /// Requests flagged for human review (low prediction confidence).
    pub review_required: AtomicU64,
    /// Micro-batches drained by workers.
    pub batches: AtomicU64,
    /// Requests carried by those batches (mean batch size = this /
    /// `batches`).
    pub batched_requests: AtomicU64,
    /// Largest queue depth observed at submission time.
    pub max_queue_depth: AtomicU64,
    /// Model hot-swaps observed via the registry.
    pub model_swaps: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            late_answers: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            policy_rejected: AtomicU64::new(0),
            review_required: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl ServiceStats {
    /// Creates zeroed stats with the uptime clock starting now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one end-to-end request latency.
    pub fn record_latency(&self, latency: Duration) {
        let micros = latency.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a drained micro-batch of `len` requests.
    pub fn record_batch(&self, len: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Raises the max-queue-depth watermark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// An immutable view of the counters plus derived rates/quantiles.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let latency: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let fallbacks = self.fallbacks.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let answered = completed + fallbacks;
        let uptime = self.started.elapsed();
        StatsSnapshot {
            uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            fallbacks,
            late_answers: self.late_answers.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            policy_rejected: self.policy_rejected.load(Ordering::Relaxed),
            review_required: self.review_required.load(Ordering::Relaxed),
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            throughput_per_sec: if uptime.as_secs_f64() > 0.0 {
                answered as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            fallback_rate: if answered == 0 {
                0.0
            } else {
                fallbacks as f64 / answered as f64
            },
            p50_latency: quantile(&latency, 0.50),
            p95_latency: quantile(&latency, 0.95),
            p99_latency: quantile(&latency, 0.99),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
        }
    }
}

/// A latency quantile estimated from the log-spaced histogram.
///
/// When `saturated` is false the true quantile is `<= bound_us`. When it
/// is true the sample landed in the open-ended last bucket and only a
/// lower bound is known: the quantile is `>= bound_us`, possibly far
/// beyond it. Reporting code must not present a saturated bound as a
/// finite upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyQuantile {
    /// Bucket bound, microseconds. Upper bound unless `saturated`.
    pub bound_us: u64,
    /// True when the quantile fell in the open-ended last bucket.
    pub saturated: bool,
}

impl LatencyQuantile {
    fn finite(bound_us: u64) -> LatencyQuantile {
        LatencyQuantile {
            bound_us,
            saturated: false,
        }
    }

    fn saturated() -> LatencyQuantile {
        LatencyQuantile {
            bound_us: 1u64 << (BUCKETS - 1),
            saturated: true,
        }
    }
}

impl std::fmt::Display for LatencyQuantile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}",
            if self.saturated { ">=" } else { "<=" },
            self.bound_us
        )
    }
}

/// Bound (µs) of the histogram bucket containing quantile `q`.
///
/// The last bucket has no upper edge, so a quantile landing there is
/// returned as saturated at the bucket's *lower* edge (`2^(BUCKETS-1)`,
/// ~33 s) instead of the fictitious finite `2^BUCKETS` the histogram
/// cannot actually distinguish from infinity.
fn quantile(latency: &[u64], q: f64) -> LatencyQuantile {
    let total: u64 = latency.iter().sum();
    if total == 0 {
        return LatencyQuantile::finite(0);
    }
    let rank = ((total as f64) * q).ceil() as u64;
    let mut seen = 0;
    for (i, &count) in latency.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return if i == BUCKETS - 1 {
                LatencyQuantile::saturated()
            } else {
                LatencyQuantile::finite(1u64 << (i + 1))
            };
        }
    }
    LatencyQuantile::saturated()
}

/// Point-in-time statistics view.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Time since service start.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered through the KCCA model.
    pub completed: u64,
    /// Requests answered by the deadline fallback.
    pub fallbacks: u64,
    /// Worker answers that arrived after a client fallback.
    pub late_answers: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Gateway outcome counts.
    pub admitted: u64,
    /// Requests the admission policy rejected.
    pub policy_rejected: u64,
    /// Requests flagged for review.
    pub review_required: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub max_queue_depth: u64,
    /// Mean micro-batch size drained by workers.
    pub mean_batch_size: f64,
    /// Answered requests per second of uptime.
    pub throughput_per_sec: f64,
    /// Fraction of answers that came from the fallback path.
    pub fallback_rate: f64,
    /// Median end-to-end latency (histogram bucket bound).
    pub p50_latency: LatencyQuantile,
    /// 95th-percentile latency.
    pub p95_latency: LatencyQuantile,
    /// 99th-percentile latency.
    pub p99_latency: LatencyQuantile,
    /// Model hot-swaps performed.
    pub model_swaps: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.2}s | submitted {} | completed {} | fallbacks {} ({:.1}%) | late {}",
            self.uptime.as_secs_f64(),
            self.submitted,
            self.completed,
            self.fallbacks,
            self.fallback_rate * 100.0,
            self.late_answers,
        )?;
        writeln!(
            f,
            "queue: depth {} (max {}) | rejected-full {} | mean batch {:.2}",
            self.queue_depth, self.max_queue_depth, self.rejected_queue_full, self.mean_batch_size,
        )?;
        writeln!(
            f,
            "gateway: admitted {} | rejected {} | review {}",
            self.admitted, self.policy_rejected, self.review_required,
        )?;
        write!(
            f,
            "latency p50/p95/p99 {}/{}/{} µs | {:.0} req/s | model swaps {}",
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.throughput_per_sec,
            self.model_swaps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_track_buckets() {
        let stats = ServiceStats::new();
        // 90 fast samples (~8 µs), 10 slow (~1024 µs).
        for _ in 0..90 {
            stats.record_latency(Duration::from_micros(8));
        }
        for _ in 0..10 {
            stats.record_latency(Duration::from_micros(1024));
        }
        let snap = stats.snapshot(0);
        assert!(
            snap.p50_latency.bound_us <= 16,
            "p50 {}",
            snap.p50_latency.bound_us
        );
        assert!(
            snap.p99_latency.bound_us >= 1024,
            "p99 {}",
            snap.p99_latency.bound_us
        );
        assert!(!snap.p99_latency.saturated);
        assert!(snap.p50_latency.bound_us <= snap.p95_latency.bound_us);
        assert!(snap.p95_latency.bound_us <= snap.p99_latency.bound_us);
    }

    #[test]
    fn tail_latency_beyond_histogram_is_reported_saturated() {
        let stats = ServiceStats::new();
        // 40 s exceeds the last finite bucket edge (2^25 µs ≈ 33.5 s);
        // the old code reported p99 as a finite 2^26 µs ≈ 67 s bound.
        for _ in 0..5 {
            stats.record_latency(Duration::from_micros(100));
        }
        stats.record_latency(Duration::from_secs(40));
        let snap = stats.snapshot(0);
        assert!(!snap.p50_latency.saturated);
        assert!(snap.p99_latency.saturated, "p99 {:?}", snap.p99_latency);
        assert_eq!(snap.p99_latency.bound_us, 1u64 << 25);
        let text = format!("{snap}");
        assert!(text.contains(">=33554432"), "display: {text}");
    }

    #[test]
    fn batch_and_depth_accounting() {
        let stats = ServiceStats::new();
        stats.record_batch(4);
        stats.record_batch(8);
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(7);
        stats.observe_queue_depth(2);
        let snap = stats.snapshot(1);
        assert!((snap.mean_batch_size - 6.0).abs() < 1e-12);
        assert_eq!(snap.max_queue_depth, 7);
        assert_eq!(snap.queue_depth, 1);
    }

    #[test]
    fn empty_stats_have_zero_quantiles() {
        let snap = ServiceStats::new().snapshot(0);
        assert_eq!(snap.p50_latency.bound_us, 0);
        assert!(!snap.p50_latency.saturated);
        assert_eq!(snap.fallback_rate, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
    }

    #[test]
    fn display_is_total() {
        let stats = ServiceStats::new();
        stats.record_latency(Duration::from_micros(100));
        let text = format!("{}", stats.snapshot(2));
        assert!(text.contains("p50"));
        assert!(text.contains("model swaps"));
    }
}
