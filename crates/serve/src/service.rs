//! The online prediction service: a worker pool over the sharded
//! multi-tenant request queue, answering each request with a batched
//! KCCA prediction, an admission decision, and a deadline-bounded
//! fallback.
//!
//! Flow per request:
//!
//! 1. `submit` (or `submit_async`) resolves the request's [`TenantId`],
//!    classifies it by predicted cost (feather / golf ball / bowling
//!    ball from the O(1) optimizer-cost estimate), and pushes onto the
//!    tenant's queue shard. Admission is a real gate: an over-quota
//!    tenant is rejected with [`QppError::TenantQuotaExceeded`], two
//!    full shards reject with [`QppError::QueueFull`] — both recorded
//!    as tagged `admission_reject` marks carrying the request's trace
//!    ID.
//! 2. A worker drains a weighted fair-share micro-batch from its owned
//!    shards (deficit round-robin over tenant lanes), sorts it by cost
//!    class so cheap feathers are not stuck behind bowling balls in
//!    the same batch, groups by (model key, class), and answers each
//!    group with *one* batched KCCA projection + kNN pass
//!    (`KccaPredictor::predict_batch`).
//! 3. The admission gateway turns the prediction into an
//!    [`AdmissionDecision`] under the service's [`AdmissionPolicy`].
//! 4. If the worker misses the request's deadline, the client answers
//!    itself from the registry's `OptimizerCostModel` fallback — an
//!    O(1) estimate from the plan's optimizer cost — so callers always
//!    get a bounded-latency answer.
//!
//! Every span and mark a request produces (admission, queue wait,
//! worker, rejection) carries its shard and tenant packed into the
//! value word via [`qpp_obs::pack_tags`].

use crate::queue::{PushError, ShardedQueue};
use crate::registry::{ModelEntry, ModelKey, ModelRegistry};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::tenant::{TenantId, TenantSpec, TenantTable};
use parking_lot::RwLock;
use qpp_core::workload_mgmt::{decide, AdmissionDecision, AdmissionPolicy};
use qpp_core::{NeighborIds, Prediction, QppError, QueryCategory, QueryRecord};
use qpp_engine::{PerfMetrics, Plan};
use qpp_obs::{pack_tags, Stage};
use qpp_workload::QuerySpec;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reason code packed into `admission_reject` marks: every candidate
/// shard was full.
pub const REJECT_QUEUE_FULL: u64 = 0;
/// Reason code packed into `admission_reject` marks: the tenant's own
/// quota was exhausted.
pub const REJECT_OVER_QUOTA: u64 = 1;

/// Observer of completed query executions: the closed-loop feedback
/// port of the service. Once a served query has actually run and its
/// true [`PerfMetrics`] are known, the embedder reports the outcome via
/// [`PredictionService::observe_completion`], and the installed
/// observer — typically `qpp-adapt`'s controller — compares prediction
/// against reality to drive drift detection and retraining.
///
/// Implementations are called from whatever thread reports the
/// completion; they must be cheap and must never block on the serve
/// predict path.
pub trait CompletionObserver: Send + Sync {
    /// One executed query: the record carries the query, its plan, and
    /// the *measured* metrics; `response` carries what was predicted,
    /// which model generation answered, through which path, and for
    /// which tenant.
    fn on_completion(&self, record: &QueryRecord, response: &ServeResponse);
}

/// One prediction request.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Which installed model should answer.
    pub key: ModelKey,
    /// The tenant (workload owner) submitting; unregistered IDs fold
    /// into the catch-all default tenant.
    pub tenant: TenantId,
    /// The query to predict for.
    pub spec: QuerySpec,
    /// Its optimized plan.
    pub plan: Plan,
    /// How long the caller is willing to wait for the KCCA answer
    /// before falling back to the optimizer-cost estimate.
    pub deadline: Duration,
}

/// Which path produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerSource {
    /// A worker answered through the batched KCCA model.
    Kcca,
    /// The client answered from the optimizer-cost fallback after the
    /// deadline expired.
    CostModelFallback,
}

/// A served prediction plus the gateway's admission decision.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The multi-metric prediction (fallback answers carry only an
    /// elapsed-time estimate; other metrics are zero).
    pub prediction: Prediction,
    /// Admission outcome under the service policy.
    pub decision: AdmissionDecision,
    /// KCCA or fallback.
    pub source: AnswerSource,
    /// Registry version of the model entry that answered.
    pub model_version: u64,
    /// End-to-end latency from submission to answer.
    pub latency: Duration,
    /// The tenant the request was accounted under (post-resolution:
    /// unregistered IDs appear here as the default tenant).
    pub tenant: TenantId,
    /// The request's trace ID: every span this request produced
    /// (admission, queue wait, worker, predict, fallback) carries it,
    /// so `qpp_obs::recorder().export_trace(trace_id)` reconstructs the
    /// request's timeline.
    pub trace_id: u64,
}

/// Queue-level backpressure maps onto the workspace error: a full
/// queue becomes [`QppError::QueueFull`], an exhausted tenant quota
/// becomes [`QppError::TenantQuotaExceeded`], a draining queue becomes
/// [`QppError::ShuttingDown`].
impl From<PushError> for QppError {
    fn from(e: PushError) -> Self {
        match e {
            PushError::Full { capacity } => QppError::QueueFull { capacity },
            PushError::QuotaExceeded { tenant, quota } => {
                QppError::TenantQuotaExceeded { tenant, quota }
            }
            PushError::ShuttingDown => QppError::ShuttingDown,
        }
    }
}

/// Tunables for [`PredictionService::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads. 0 is allowed (nothing drains the queue; every
    /// request is answered by the deadline fallback) and is used by the
    /// backpressure tests.
    pub workers: usize,
    /// Queue shards. 0 (the default) sizes the shard count to the
    /// worker pool (`workers.max(1)`); set it explicitly when shard
    /// layout must be identical across different worker counts (the
    /// thread-invariance tests do).
    pub shards: usize,
    /// Bounded total queue capacity, split evenly across shards;
    /// submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Max requests a worker answers with one batched KCCA pass.
    pub max_batch: usize,
    /// Admission policy applied to every answered request.
    pub policy: AdmissionPolicy,
    /// Tenant directory: fair-share weights and admission quotas. A
    /// catch-all default tenant is always present; an empty list means
    /// single-tenant behavior (everything accounted to the default).
    pub tenants: Vec<TenantSpec>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            shards: 0,
            queue_capacity: 256,
            max_batch: 16,
            policy: AdmissionPolicy::default(),
            tenants: Vec::new(),
        }
    }
}

struct Queued {
    request: PredictRequest,
    /// Dense tenant index (resolved once at admission).
    tenant_idx: usize,
    /// Resolved tenant ID (the default tenant for unregistered IDs).
    tenant: TenantId,
    /// Predicted cost class from the O(1) optimizer-cost estimate,
    /// computed at admission so workers can group batches by it.
    class: QueryCategory,
    enqueued_at: Instant,
    /// Enqueue time on the obs clock, so the queue-wait span shares an
    /// epoch with every other span in the trace.
    enqueued_ns: u64,
    trace_id: u64,
    responder: mpsc::Sender<Result<ServeResponse, QppError>>,
}

/// Batch ordering: cheap predicted work answers first within a drained
/// micro-batch so a feather is never stuck behind a bowling ball that
/// happened to be drained ahead of it.
fn class_rank(class: QueryCategory) -> u8 {
    match class {
        QueryCategory::Feather => 0,
        QueryCategory::GolfBall => 1,
        QueryCategory::BowlingBall => 2,
        QueryCategory::WreckingBall => 3,
    }
}

/// A submitted request the caller has not yet waited on.
#[derive(Debug)]
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<ServeResponse, QppError>>,
    request: PredictRequest,
    submitted_at: Instant,
    trace_id: u64,
    /// Shard the request was queued on (for fallback stats attribution).
    shard: usize,
    tenant_idx: usize,
    tenant: TenantId,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServiceStats>,
    policy: AdmissionPolicy,
}

impl PendingPrediction {
    /// The trace ID assigned to this request at submission.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The shard the request was queued on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Blocks until the worker answers or the request's deadline
    /// passes, then returns exactly one answer: the worker's if it made
    /// the deadline, otherwise the optimizer-cost fallback.
    ///
    /// The deadline is measured from *submission*, not from this call:
    /// time the caller spent between `submit_async` and `wait` counts
    /// against it. (Waiting the full `deadline` from wait-start let a
    /// slow caller stretch its latency budget to submit-to-wait gap +
    /// deadline, which is exactly the bounded-latency guarantee the
    /// deadline exists to give up on time.)
    pub fn wait(self) -> Result<ServeResponse, QppError> {
        let remaining = self
            .request
            .deadline
            .saturating_sub(self.submitted_at.elapsed());
        match self.rx.recv_timeout(remaining) {
            Ok(answer) => answer,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // One last non-blocking look: the worker may have
                // answered in the instant the timeout fired.
                if let Ok(answer) = self.rx.try_recv() {
                    return answer;
                }
                self.fallback()
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Worker pool dropped the request (shutdown mid-flight);
                // the fallback still gives the caller an answer.
                self.fallback()
            }
        }
    }

    /// Answers from the registry's cost model without the worker pool.
    fn fallback(self) -> Result<ServeResponse, QppError> {
        let entry = self
            .registry
            .get(&self.request.key)
            .ok_or_else(|| QppError::UnknownModel {
                key: self.request.key.to_string(),
            })?;
        let elapsed = entry.fallback.predict_elapsed(&self.request.plan);
        let prediction = Prediction {
            metrics: PerfMetrics {
                elapsed_seconds: elapsed,
                ..PerfMetrics::zero()
            },
            neighbor_indices: NeighborIds::new(),
            // The cost model has no notion of projection-space
            // confidence; report perfect confidence so the gateway
            // judges the elapsed estimate on resource limits alone.
            confidence_distance: 0.0,
            max_kernel_similarity: 1.0,
        };
        let decision = decide(&self.policy, &prediction);
        record_decision(&self.stats, &decision);
        let cell = self.stats.cell(self.shard, self.tenant_idx);
        cell.fallbacks.incr();
        let rec = qpp_obs::recorder();
        rec.record_mark(self.trace_id, Stage::Fallback, entry.version);
        rec.fallback_answers.incr();
        let latency = self.submitted_at.elapsed();
        cell.record_latency(latency);
        Ok(ServeResponse {
            prediction,
            decision,
            source: AnswerSource::CostModelFallback,
            model_version: entry.version,
            latency,
            tenant: self.tenant,
            trace_id: self.trace_id,
        })
    }
}

fn record_decision(stats: &ServiceStats, decision: &AdmissionDecision) {
    match decision {
        AdmissionDecision::Admit { .. } => {
            stats.admitted.incr();
        }
        AdmissionDecision::Reject { .. } => {
            stats.policy_rejected.incr();
        }
        AdmissionDecision::ReviewRequired { .. } => {
            stats.review_required.incr();
        }
    }
}

/// The running service: registry + sharded queue + worker pool + stats.
pub struct PredictionService {
    registry: Arc<ModelRegistry>,
    queue: Arc<ShardedQueue<Queued>>,
    stats: Arc<ServiceStats>,
    tenants: Arc<TenantTable>,
    policy: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
    completion: RwLock<Option<Arc<dyn CompletionObserver>>>,
}

/// The shard slice worker `worker_idx` drains. With fewer workers than
/// shards a worker covers every shard congruent to it mod `workers`
/// (all shards stay drained); with at least one worker per shard,
/// workers spread round-robin so every shard gets a dedicated slice.
fn owned_shards(worker_idx: usize, workers: usize, shards: usize) -> Vec<usize> {
    if workers >= shards {
        vec![worker_idx % shards]
    } else {
        (0..shards).filter(|s| s % workers == worker_idx).collect()
    }
}

impl PredictionService {
    /// Starts the worker pool against `registry`.
    pub fn start(registry: Arc<ModelRegistry>, options: ServeOptions) -> Self {
        let shards = if options.shards == 0 {
            options.workers.max(1)
        } else {
            options.shards
        };
        let tenants = Arc::new(TenantTable::new(options.tenants.clone()));
        let queue = Arc::new(ShardedQueue::new(shards, options.queue_capacity, &tenants));
        let stats = Arc::new(ServiceStats::for_tenants(shards, &tenants));
        let workers = (0..options.workers)
            .map(|worker_idx| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let stats = Arc::clone(&stats);
                let policy = options.policy;
                let max_batch = options.max_batch;
                let owned = owned_shards(worker_idx, options.workers, shards);
                std::thread::spawn(move || {
                    worker_loop(&queue, &registry, &stats, &policy, max_batch, &owned)
                })
            })
            .collect();
        PredictionService {
            registry,
            queue,
            stats,
            tenants,
            policy: options.policy,
            workers,
            completion: RwLock::new(None),
        }
    }

    /// The registry this service answers from (hot-swap through it).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The tenant directory the service admits against.
    pub fn tenants(&self) -> &TenantTable {
        &self.tenants
    }

    /// Installs (or replaces) the completion observer that
    /// [`PredictionService::observe_completion`] forwards to.
    pub fn set_completion_observer(&self, observer: Arc<dyn CompletionObserver>) {
        *self.completion.write() = Some(observer);
    }

    /// Reports one completed execution back into the loop: the query's
    /// measured metrics next to the response that predicted them. Feeds
    /// the installed [`CompletionObserver`] (if any) and the
    /// `observed_completions` stat either way.
    pub fn observe_completion(&self, record: &QueryRecord, response: &ServeResponse) {
        self.stats.observed_completions.incr();
        let observer = self.completion.read().clone();
        if let Some(observer) = observer {
            observer.on_completion(record, response);
        }
    }

    /// Submits a request without waiting for its answer. Fails fast
    /// with backpressure (queue full, tenant over quota) or an
    /// unknown-model error; every rejection is recorded as a tagged
    /// `admission_reject` mark carrying this request's trace ID.
    pub fn submit_async(&self, request: PredictRequest) -> Result<PendingPrediction, QppError> {
        let rec = qpp_obs::recorder();
        let trace_id = rec.next_trace_id();
        let admit_start = rec.now_ns();
        let Some(entry) = self.registry.get(&request.key) else {
            return Err(QppError::UnknownModel {
                key: request.key.to_string(),
            });
        };
        let tenant_idx = self.tenants.resolve(request.tenant);
        let tenant = self.tenants.spec(tenant_idx).id;
        // Classify by the O(1) optimizer-cost estimate so the worker
        // can group the micro-batch by predicted cost class. This is
        // the same estimate the fallback path would serve.
        let class = QueryCategory::of(entry.fallback.predict_elapsed(&request.plan));
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let queued = Queued {
            request: request.clone(),
            tenant_idx,
            tenant,
            class,
            enqueued_at: now,
            enqueued_ns: rec.now_ns(),
            trace_id,
            responder: tx,
        };
        match self.queue.try_push(tenant_idx, queued) {
            Ok(receipt) => {
                self.stats.cell(receipt.shard, tenant_idx).submitted.incr();
                self.stats.observe_queue_depth(receipt.shard_depth);
                rec.record_span(
                    trace_id,
                    Stage::Admission,
                    admit_start,
                    rec.now_ns().saturating_sub(admit_start),
                    pack_tags(
                        tenant.0 as u16,
                        receipt.shard as u8,
                        receipt.shard_depth as u64,
                    ),
                );
                Ok(PendingPrediction {
                    rx,
                    request,
                    submitted_at: now,
                    trace_id,
                    shard: receipt.shard,
                    tenant_idx,
                    tenant,
                    registry: Arc::clone(&self.registry),
                    stats: Arc::clone(&self.stats),
                    policy: self.policy,
                })
            }
            Err(e) => {
                // The rejection mark carries the admission trace ID and
                // the tenant/shard tags: a shed request is still a
                // traceable event, not a silent drop. (The pre-shard
                // service lost the trace ID here — the mark landed on
                // trace 0 and per-tenant attribution was impossible.)
                let (primary, _) = self.queue.shard_pair(tenant_idx);
                let reason = match &e {
                    PushError::QuotaExceeded { .. } => {
                        self.stats.record_rejected_quota(tenant_idx);
                        REJECT_OVER_QUOTA
                    }
                    _ => {
                        self.stats.record_rejected_full(tenant_idx);
                        REJECT_QUEUE_FULL
                    }
                };
                rec.record_mark(
                    trace_id,
                    Stage::AdmissionReject,
                    pack_tags(tenant.0 as u16, primary as u8, reason),
                );
                Err(e.into())
            }
        }
    }

    /// Submits and waits: exactly one answer per accepted request, never
    /// later than (roughly) the request's deadline.
    pub fn submit(&self, request: PredictRequest) -> Result<ServeResponse, QppError> {
        self.submit_async(request)?.wait()
    }

    /// Point-in-time statistics, including the registry's swap and
    /// demotion counts, merged across shards and broken out per tenant.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.model_swaps.set(self.registry.swap_count());
        self.stats.model_demotions.set(self.registry.demote_count());
        self.stats.snapshot(self.queue.len())
    }

    /// Stops accepting work, drains what was accepted, joins workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Worker body: drain a fair-share micro-batch from the worker's owned
/// shards, order it by predicted cost class, group by (model key,
/// class), answer each group with one batched prediction pass.
fn worker_loop(
    queue: &ShardedQueue<Queued>,
    registry: &ModelRegistry,
    stats: &ServiceStats,
    policy: &AdmissionPolicy,
    max_batch: usize,
    owned: &[usize],
) {
    let mut rotation = 0usize;
    let mut batch: Vec<Queued> = Vec::with_capacity(max_batch.max(1));
    while let Some(shard) = queue.drain_owned(owned, &mut rotation, max_batch, &mut batch) {
        stats.record_batch(batch.len());
        let rec = qpp_obs::recorder();
        let drained_ns = rec.now_ns();
        // One fair_share mark per drain cycle: which shard served and
        // how large the DRR micro-batch was.
        rec.record_mark(
            0,
            Stage::FairShare,
            pack_tags(0, shard as u8, batch.len() as u64),
        );
        for queued in &batch {
            rec.record_span(
                queued.trace_id,
                Stage::QueueWait,
                queued.enqueued_ns,
                drained_ns.saturating_sub(queued.enqueued_ns),
                pack_tags(queued.tenant.0 as u16, shard as u8, batch.len() as u64),
            );
        }
        // Cost-class-aware micro-batching: answer predicted-cheap work
        // first. The sort is stable, so arrival order (and with it the
        // fair-share order the DRR drain produced) is preserved within
        // each class.
        batch.sort_by_key(|q| class_rank(q.class));
        // Group while preserving the sorted order within each group.
        // The number of distinct (key, class) pairs per batch is tiny
        // (usually 1), so a linear scan beats a map here.
        let mut groups: Vec<(ModelKey, QueryCategory, Vec<Queued>)> = Vec::new();
        for queued in batch.drain(..) {
            match groups
                .iter_mut()
                .find(|(key, class, _)| *key == queued.request.key && *class == queued.class)
            {
                Some((_, _, group)) => group.push(queued),
                None => groups.push((queued.request.key.clone(), queued.class, vec![queued])),
            }
        }
        for (key, _, group) in groups {
            answer_group(registry, stats, policy, &key, group, shard, drained_ns);
        }
    }
}

fn answer_group(
    registry: &ModelRegistry,
    stats: &ServiceStats,
    policy: &AdmissionPolicy,
    key: &ModelKey,
    group: Vec<Queued>,
    shard: usize,
    drained_ns: u64,
) {
    // Resolve the model once per group: every request in the group is
    // answered by the same consistent entry even if a hot-swap lands
    // mid-batch.
    let Some(entry) = registry.get(key) else {
        for queued in group {
            let _ = queued.responder.send(Err(QppError::UnknownModel {
                key: key.to_string(),
            }));
        }
        return;
    };
    // Kill-switched entry: the KCCA model regressed post-swap and was
    // demoted; answer every request from the O(1) optimizer-cost
    // baseline until a healthy model is installed over it.
    if entry.degraded {
        for queued in group {
            let elapsed = entry.fallback.predict_elapsed(&queued.request.plan);
            let prediction = Prediction {
                metrics: PerfMetrics {
                    elapsed_seconds: elapsed,
                    ..PerfMetrics::zero()
                },
                neighbor_indices: NeighborIds::new(),
                confidence_distance: 0.0,
                max_kernel_similarity: 1.0,
            };
            stats.degraded_answers.incr();
            qpp_obs::recorder().record_mark(queued.trace_id, Stage::Fallback, entry.version);
            respond(
                stats,
                policy,
                &entry,
                queued,
                prediction,
                shard,
                drained_ns,
                AnswerSource::CostModelFallback,
            );
        }
        return;
    }
    let queries: Vec<(&QuerySpec, &Plan)> = group
        .iter()
        .map(|q| (&q.request.spec, &q.request.plan))
        .collect();
    let rec = qpp_obs::recorder();
    // A single-member group runs the predictor under the request's own
    // trace, so the core-layer sub-spans (standardize/project/kNN) tag
    // themselves to it. A multi-member batch answers several traces at
    // once; its sub-spans stay untraced (0), and each member instead
    // gets a Predict span over the shared batch interval below.
    let group_trace = if group.len() == 1 {
        group[0].trace_id
    } else {
        0
    };
    let group_len = group.len() as u64;
    let predict_start = rec.now_ns();
    let result = qpp_obs::with_trace(group_trace, || entry.predictor.predict_batch(&queries));
    let predict_dur = rec.now_ns().saturating_sub(predict_start);
    match result {
        Ok(predictions) => {
            for (queued, prediction) in group.into_iter().zip(predictions) {
                rec.record_span(
                    queued.trace_id,
                    Stage::Predict,
                    predict_start,
                    predict_dur,
                    group_len,
                );
                respond(
                    stats,
                    policy,
                    &entry,
                    queued,
                    prediction,
                    shard,
                    drained_ns,
                    AnswerSource::Kcca,
                );
            }
        }
        Err(e) => {
            // One failure fans out to every member of the micro-batch;
            // `QppError` is `Clone` precisely for this.
            for queued in group {
                let _ = queued.responder.send(Err(e.clone()));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn respond(
    stats: &ServiceStats,
    policy: &AdmissionPolicy,
    entry: &ModelEntry,
    queued: Queued,
    prediction: Prediction,
    shard: usize,
    drained_ns: u64,
    source: AnswerSource,
) {
    let decision = decide(policy, &prediction);
    let latency = queued.enqueued_at.elapsed();
    let response = ServeResponse {
        prediction,
        decision: decision.clone(),
        source,
        model_version: entry.version,
        latency,
        tenant: queued.tenant,
        trace_id: queued.trace_id,
    };
    let rec = qpp_obs::recorder();
    // Record the worker span *before* handing the answer over: once the
    // client holds the response it may export the trace, and the span
    // must already be in the ring. The value word packs tenant/shard
    // around the model version that answered.
    rec.record_span(
        queued.trace_id,
        Stage::Worker,
        drained_ns,
        rec.now_ns().saturating_sub(drained_ns),
        pack_tags(queued.tenant.0 as u16, shard as u8, entry.version),
    );
    if queued.responder.send(Ok(response)).is_ok() {
        let cell = stats.cell(shard, queued.tenant_idx);
        cell.completed.incr();
        cell.record_latency(latency);
        record_decision(stats, &decision);
        match source {
            AnswerSource::Kcca => rec.kcca_answers.incr(),
            AnswerSource::CostModelFallback => rec.fallback_answers.incr(),
        }
    } else {
        // Client already fell back (deadline) or went away.
        stats.late_answers.incr();
    }
}
