//! The online prediction service: a worker pool over the bounded
//! request queue, answering each request with a batched KCCA
//! prediction, an admission decision, and a deadline-bounded fallback.
//!
//! Flow per request:
//!
//! 1. `submit` (or `submit_async`) enqueues the request; a full queue
//!    rejects immediately with [`QppError::QueueFull`].
//! 2. A worker drains up to `max_batch` requests, groups them by model
//!    key, and answers each group with *one* batched KCCA projection +
//!    kNN pass (`KccaPredictor::predict_batch`).
//! 3. The admission gateway turns the prediction into an
//!    [`AdmissionDecision`] under the service's [`AdmissionPolicy`].
//! 4. If the worker misses the request's deadline, the client answers
//!    itself from the registry's `OptimizerCostModel` fallback — an
//!    O(1) estimate from the plan's optimizer cost — so callers always
//!    get a bounded-latency answer.

use crate::queue::{PushError, RequestQueue};
use crate::registry::{ModelEntry, ModelKey, ModelRegistry};
use crate::stats::{ServiceStats, StatsSnapshot};
use parking_lot::RwLock;
use qpp_core::workload_mgmt::{decide, AdmissionDecision, AdmissionPolicy};
use qpp_core::{NeighborIds, Prediction, QppError, QueryRecord};
use qpp_engine::{PerfMetrics, Plan};
use qpp_obs::Stage;
use qpp_workload::QuerySpec;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Observer of completed query executions: the closed-loop feedback
/// port of the service. Once a served query has actually run and its
/// true [`PerfMetrics`] are known, the embedder reports the outcome via
/// [`PredictionService::observe_completion`], and the installed
/// observer — typically `qpp-adapt`'s controller — compares prediction
/// against reality to drive drift detection and retraining.
///
/// Implementations are called from whatever thread reports the
/// completion; they must be cheap and must never block on the serve
/// predict path.
pub trait CompletionObserver: Send + Sync {
    /// One executed query: the record carries the query, its plan, and
    /// the *measured* metrics; `response` carries what was predicted,
    /// which model generation answered, and through which path.
    fn on_completion(&self, record: &QueryRecord, response: &ServeResponse);
}

/// One prediction request.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Which installed model should answer.
    pub key: ModelKey,
    /// The query to predict for.
    pub spec: QuerySpec,
    /// Its optimized plan.
    pub plan: Plan,
    /// How long the caller is willing to wait for the KCCA answer
    /// before falling back to the optimizer-cost estimate.
    pub deadline: Duration,
}

/// Which path produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerSource {
    /// A worker answered through the batched KCCA model.
    Kcca,
    /// The client answered from the optimizer-cost fallback after the
    /// deadline expired.
    CostModelFallback,
}

/// A served prediction plus the gateway's admission decision.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The multi-metric prediction (fallback answers carry only an
    /// elapsed-time estimate; other metrics are zero).
    pub prediction: Prediction,
    /// Admission outcome under the service policy.
    pub decision: AdmissionDecision,
    /// KCCA or fallback.
    pub source: AnswerSource,
    /// Registry version of the model entry that answered.
    pub model_version: u64,
    /// End-to-end latency from submission to answer.
    pub latency: Duration,
    /// The request's trace ID: every span this request produced
    /// (admission, queue wait, worker, predict, fallback) carries it,
    /// so `qpp_obs::recorder().export_trace(trace_id)` reconstructs the
    /// request's timeline.
    pub trace_id: u64,
}

/// Queue-level backpressure maps onto the workspace error: a full
/// queue becomes [`QppError::QueueFull`], a draining queue becomes
/// [`QppError::ShuttingDown`].
impl From<PushError> for QppError {
    fn from(e: PushError) -> Self {
        match e {
            PushError::Full { capacity } => QppError::QueueFull { capacity },
            PushError::ShuttingDown => QppError::ShuttingDown,
        }
    }
}

/// Tunables for [`PredictionService::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads. 0 is allowed (nothing drains the queue; every
    /// request is answered by the deadline fallback) and is used by the
    /// backpressure tests.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Max requests a worker answers with one batched KCCA pass.
    pub max_batch: usize,
    /// Admission policy applied to every answered request.
    pub policy: AdmissionPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_capacity: 256,
            max_batch: 16,
            policy: AdmissionPolicy::default(),
        }
    }
}

struct Queued {
    request: PredictRequest,
    enqueued_at: Instant,
    /// Enqueue time on the obs clock, so the queue-wait span shares an
    /// epoch with every other span in the trace.
    enqueued_ns: u64,
    trace_id: u64,
    responder: mpsc::Sender<Result<ServeResponse, QppError>>,
}

/// A submitted request the caller has not yet waited on.
#[derive(Debug)]
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<ServeResponse, QppError>>,
    request: PredictRequest,
    submitted_at: Instant,
    trace_id: u64,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServiceStats>,
    policy: AdmissionPolicy,
}

impl PendingPrediction {
    /// The trace ID assigned to this request at submission.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Blocks until the worker answers or the request's deadline
    /// passes, then returns exactly one answer: the worker's if it made
    /// the deadline, otherwise the optimizer-cost fallback.
    ///
    /// The deadline is measured from *submission*, not from this call:
    /// time the caller spent between `submit_async` and `wait` counts
    /// against it. (Waiting the full `deadline` from wait-start let a
    /// slow caller stretch its latency budget to submit-to-wait gap +
    /// deadline, which is exactly the bounded-latency guarantee the
    /// deadline exists to give up on time.)
    pub fn wait(self) -> Result<ServeResponse, QppError> {
        let remaining = self
            .request
            .deadline
            .saturating_sub(self.submitted_at.elapsed());
        match self.rx.recv_timeout(remaining) {
            Ok(answer) => answer,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // One last non-blocking look: the worker may have
                // answered in the instant the timeout fired.
                if let Ok(answer) = self.rx.try_recv() {
                    return answer;
                }
                self.fallback()
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Worker pool dropped the request (shutdown mid-flight);
                // the fallback still gives the caller an answer.
                self.fallback()
            }
        }
    }

    /// Answers from the registry's cost model without the worker pool.
    fn fallback(self) -> Result<ServeResponse, QppError> {
        let entry = self
            .registry
            .get(&self.request.key)
            .ok_or_else(|| QppError::UnknownModel {
                key: self.request.key.to_string(),
            })?;
        let elapsed = entry.fallback.predict_elapsed(&self.request.plan);
        let prediction = Prediction {
            metrics: PerfMetrics {
                elapsed_seconds: elapsed,
                ..PerfMetrics::zero()
            },
            neighbor_indices: NeighborIds::new(),
            // The cost model has no notion of projection-space
            // confidence; report perfect confidence so the gateway
            // judges the elapsed estimate on resource limits alone.
            confidence_distance: 0.0,
            max_kernel_similarity: 1.0,
        };
        let decision = decide(&self.policy, &prediction);
        record_decision(&self.stats, &decision);
        self.stats.fallbacks.incr();
        let rec = qpp_obs::recorder();
        rec.record_mark(self.trace_id, Stage::Fallback, entry.version);
        rec.fallback_answers.incr();
        let latency = self.submitted_at.elapsed();
        self.stats.record_latency(latency);
        Ok(ServeResponse {
            prediction,
            decision,
            source: AnswerSource::CostModelFallback,
            model_version: entry.version,
            latency,
            trace_id: self.trace_id,
        })
    }
}

fn record_decision(stats: &ServiceStats, decision: &AdmissionDecision) {
    match decision {
        AdmissionDecision::Admit { .. } => {
            stats.admitted.incr();
        }
        AdmissionDecision::Reject { .. } => {
            stats.policy_rejected.incr();
        }
        AdmissionDecision::ReviewRequired { .. } => {
            stats.review_required.incr();
        }
    }
}

/// The running service: registry + queue + worker pool + stats.
pub struct PredictionService {
    registry: Arc<ModelRegistry>,
    queue: Arc<RequestQueue<Queued>>,
    stats: Arc<ServiceStats>,
    policy: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
    completion: RwLock<Option<Arc<dyn CompletionObserver>>>,
}

impl PredictionService {
    /// Starts the worker pool against `registry`.
    pub fn start(registry: Arc<ModelRegistry>, options: ServeOptions) -> Self {
        let queue = Arc::new(RequestQueue::new(options.queue_capacity));
        let stats = Arc::new(ServiceStats::new());
        let workers = (0..options.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let stats = Arc::clone(&stats);
                let policy = options.policy;
                let max_batch = options.max_batch;
                std::thread::spawn(move || {
                    worker_loop(&queue, &registry, &stats, &policy, max_batch)
                })
            })
            .collect();
        PredictionService {
            registry,
            queue,
            stats,
            policy: options.policy,
            workers,
            completion: RwLock::new(None),
        }
    }

    /// The registry this service answers from (hot-swap through it).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Installs (or replaces) the completion observer that
    /// [`PredictionService::observe_completion`] forwards to.
    pub fn set_completion_observer(&self, observer: Arc<dyn CompletionObserver>) {
        *self.completion.write() = Some(observer);
    }

    /// Reports one completed execution back into the loop: the query's
    /// measured metrics next to the response that predicted them. Feeds
    /// the installed [`CompletionObserver`] (if any) and the
    /// `observed_completions` stat either way.
    pub fn observe_completion(&self, record: &QueryRecord, response: &ServeResponse) {
        self.stats.observed_completions.incr();
        let observer = self.completion.read().clone();
        if let Some(observer) = observer {
            observer.on_completion(record, response);
        }
    }

    /// Submits a request without waiting for its answer. Fails fast
    /// with backpressure or an unknown-model error.
    pub fn submit_async(&self, request: PredictRequest) -> Result<PendingPrediction, QppError> {
        let rec = qpp_obs::recorder();
        let trace_id = rec.next_trace_id();
        let admit_start = rec.now_ns();
        if self.registry.get(&request.key).is_none() {
            return Err(QppError::UnknownModel {
                key: request.key.to_string(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let queued = Queued {
            request: request.clone(),
            enqueued_at: now,
            enqueued_ns: rec.now_ns(),
            trace_id,
            responder: tx,
        };
        match self.queue.try_push(queued) {
            Ok(depth) => {
                self.stats.submitted.incr();
                self.stats.observe_queue_depth(depth);
                rec.record_span(
                    trace_id,
                    Stage::Admission,
                    admit_start,
                    rec.now_ns().saturating_sub(admit_start),
                    depth as u64,
                );
                Ok(PendingPrediction {
                    rx,
                    request,
                    submitted_at: now,
                    trace_id,
                    registry: Arc::clone(&self.registry),
                    stats: Arc::clone(&self.stats),
                    policy: self.policy,
                })
            }
            Err(e) => {
                if matches!(e, PushError::Full { .. }) {
                    self.stats.rejected_queue_full.incr();
                }
                Err(e.into())
            }
        }
    }

    /// Submits and waits: exactly one answer per accepted request, never
    /// later than (roughly) the request's deadline.
    pub fn submit(&self, request: PredictRequest) -> Result<ServeResponse, QppError> {
        self.submit_async(request)?.wait()
    }

    /// Point-in-time statistics, including the registry's swap and
    /// demotion counts.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.model_swaps.set(self.registry.swap_count());
        self.stats.model_demotions.set(self.registry.demote_count());
        self.stats.snapshot(self.queue.len())
    }

    /// Stops accepting work, drains what was accepted, joins workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Worker body: drain a micro-batch, group by model key, answer each
/// group with one batched prediction pass.
fn worker_loop(
    queue: &RequestQueue<Queued>,
    registry: &ModelRegistry,
    stats: &ServiceStats,
    policy: &AdmissionPolicy,
    max_batch: usize,
) {
    while let Some(batch) = queue.drain_batch(max_batch) {
        stats.record_batch(batch.len());
        let rec = qpp_obs::recorder();
        let drained_ns = rec.now_ns();
        for queued in &batch {
            rec.record_span(
                queued.trace_id,
                Stage::QueueWait,
                queued.enqueued_ns,
                drained_ns.saturating_sub(queued.enqueued_ns),
                batch.len() as u64,
            );
        }
        // Group while preserving arrival order within each group. The
        // number of distinct keys per batch is tiny (usually 1), so a
        // linear scan beats a map here.
        let mut groups: Vec<(ModelKey, Vec<Queued>)> = Vec::new();
        for queued in batch {
            match groups
                .iter_mut()
                .find(|(key, _)| *key == queued.request.key)
            {
                Some((_, group)) => group.push(queued),
                None => groups.push((queued.request.key.clone(), vec![queued])),
            }
        }
        for (key, group) in groups {
            answer_group(registry, stats, policy, &key, group, drained_ns);
        }
    }
}

fn answer_group(
    registry: &ModelRegistry,
    stats: &ServiceStats,
    policy: &AdmissionPolicy,
    key: &ModelKey,
    group: Vec<Queued>,
    drained_ns: u64,
) {
    // Resolve the model once per group: every request in the group is
    // answered by the same consistent entry even if a hot-swap lands
    // mid-batch.
    let Some(entry) = registry.get(key) else {
        for queued in group {
            let _ = queued.responder.send(Err(QppError::UnknownModel {
                key: key.to_string(),
            }));
        }
        return;
    };
    // Kill-switched entry: the KCCA model regressed post-swap and was
    // demoted; answer every request from the O(1) optimizer-cost
    // baseline until a healthy model is installed over it.
    if entry.degraded {
        for queued in group {
            let elapsed = entry.fallback.predict_elapsed(&queued.request.plan);
            let prediction = Prediction {
                metrics: PerfMetrics {
                    elapsed_seconds: elapsed,
                    ..PerfMetrics::zero()
                },
                neighbor_indices: NeighborIds::new(),
                confidence_distance: 0.0,
                max_kernel_similarity: 1.0,
            };
            stats.degraded_answers.incr();
            qpp_obs::recorder().record_mark(queued.trace_id, Stage::Fallback, entry.version);
            respond(
                stats,
                policy,
                &entry,
                queued,
                prediction,
                drained_ns,
                AnswerSource::CostModelFallback,
            );
        }
        return;
    }
    let queries: Vec<(&QuerySpec, &Plan)> = group
        .iter()
        .map(|q| (&q.request.spec, &q.request.plan))
        .collect();
    let rec = qpp_obs::recorder();
    // A single-member group runs the predictor under the request's own
    // trace, so the core-layer sub-spans (standardize/project/kNN) tag
    // themselves to it. A multi-member batch answers several traces at
    // once; its sub-spans stay untraced (0), and each member instead
    // gets a Predict span over the shared batch interval below.
    let group_trace = if group.len() == 1 {
        group[0].trace_id
    } else {
        0
    };
    let group_len = group.len() as u64;
    let predict_start = rec.now_ns();
    let result = qpp_obs::with_trace(group_trace, || entry.predictor.predict_batch(&queries));
    let predict_dur = rec.now_ns().saturating_sub(predict_start);
    match result {
        Ok(predictions) => {
            for (queued, prediction) in group.into_iter().zip(predictions) {
                rec.record_span(
                    queued.trace_id,
                    Stage::Predict,
                    predict_start,
                    predict_dur,
                    group_len,
                );
                respond(
                    stats,
                    policy,
                    &entry,
                    queued,
                    prediction,
                    drained_ns,
                    AnswerSource::Kcca,
                );
            }
        }
        Err(e) => {
            // One failure fans out to every member of the micro-batch;
            // `QppError` is `Clone` precisely for this.
            for queued in group {
                let _ = queued.responder.send(Err(e.clone()));
            }
        }
    }
}

fn respond(
    stats: &ServiceStats,
    policy: &AdmissionPolicy,
    entry: &ModelEntry,
    queued: Queued,
    prediction: Prediction,
    drained_ns: u64,
    source: AnswerSource,
) {
    let decision = decide(policy, &prediction);
    let latency = queued.enqueued_at.elapsed();
    let response = ServeResponse {
        prediction,
        decision: decision.clone(),
        source,
        model_version: entry.version,
        latency,
        trace_id: queued.trace_id,
    };
    let rec = qpp_obs::recorder();
    // Record the worker span *before* handing the answer over: once the
    // client holds the response it may export the trace, and the span
    // must already be in the ring.
    rec.record_span(
        queued.trace_id,
        Stage::Worker,
        drained_ns,
        rec.now_ns().saturating_sub(drained_ns),
        entry.version,
    );
    if queued.responder.send(Ok(response)).is_ok() {
        stats.completed.incr();
        stats.record_latency(latency);
        record_decision(stats, &decision);
        match source {
            AnswerSource::Kcca => rec.kcca_answers.incr(),
            AnswerSource::CostModelFallback => rec.fallback_answers.incr(),
        }
    } else {
        // Client already fell back (deadline) or went away.
        stats.late_answers.incr();
    }
}
