//! Bounded MPMC request queue with reject-on-full backpressure and
//! micro-batch draining for the worker pool.
//!
//! Producers never block: [`RequestQueue::try_push`] returns a typed
//! rejection when the queue is at capacity. Consumers block on a
//! condition variable and drain up to a batch-size limit per wakeup,
//! which is what lets workers answer several requests with a single
//! batched KCCA projection + kNN pass.
//!
//! The queue itself records nothing: queue-wait spans are timed at the
//! service layer (enqueue stamp in `Queued`, drain stamp in the worker
//! loop), keeping this container generic over its item type.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The queue held `capacity` requests already; retry later or shed
    /// load upstream.
    Full {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            PushError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// A bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct RequestQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> RequestQueue<T> {
    /// Creates a queue holding at most `capacity` requests. Capacity 0
    /// is clamped to 1 (a queue that can accept nothing is useless).
    pub fn new(capacity: usize) -> Self {
        RequestQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy; for monitoring only).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no requests are queued (racy; for monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking. On success returns the
    /// queue depth *after* the push (for depth watermarks).
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut state = self.state.lock();
        if state.shutdown {
            return Err(PushError::ShuttingDown);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until requests are available (or shutdown), then drains up
    /// to `max_batch` in FIFO order. Returns `None` only when the queue
    /// is shut down *and* fully drained, so no accepted request is lost.
    pub fn drain_batch(&self, max_batch: usize) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock();
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max_batch);
                let batch: Vec<T> = state.items.drain(..take).collect();
                let more = !state.items.is_empty();
                drop(state);
                if more {
                    // Wake a sibling for the remainder.
                    self.not_empty.notify_one();
                }
                return Some(batch);
            }
            if state.shutdown {
                return None;
            }
            // Timed wait so a missed notification can never wedge a
            // worker forever.
            self.not_empty
                .wait_for(&mut state, Duration::from_millis(50));
        }
    }

    /// Marks the queue as shutting down and wakes all consumers. Already
    /// queued requests are still drained.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn push_over_capacity_rejects_immediately() {
        let q: RequestQueue<u32> = RequestQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let start = Instant::now();
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 2 }));
        // Rejection must be immediate, never a block.
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_is_fifo_and_bounded_by_batch_size() {
        let q: RequestQueue<u32> = RequestQueue::new(10);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain_batch(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.drain_batch(3).unwrap(), vec![3, 4]);
    }

    #[test]
    fn shutdown_drains_remaining_then_ends() {
        let q: RequestQueue<u32> = RequestQueue::new(10);
        q.try_push(7).unwrap();
        q.shutdown();
        assert_eq!(q.try_push(8), Err(PushError::ShuttingDown));
        assert_eq!(q.drain_batch(4).unwrap(), vec![7]);
        assert!(q.drain_batch(4).is_none());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q: Arc<RequestQueue<u32>> = Arc::new(RequestQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.drain_batch(4))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), vec![42]);
    }
}
