//! Sharded, tenant-aware request queue with weighted fair-share
//! draining and reject-on-full / reject-over-quota backpressure.
//!
//! The single global bounded queue of the early service serialized
//! every producer and every worker on one mutex and let any tenant
//! monopolize the worker pool. This module replaces it with:
//!
//! - **N queue shards** ([`QueueShard`]): a tenant's requests hash to a
//!   primary shard; on overflow the push consults one alternate shard
//!   (power-of-two-choices) before shedding. Producers on different
//!   shards never contend.
//! - **Per-tenant quotas**: a tenant may hold at most `quota` queued
//!   requests across all shards; submissions beyond that are rejected
//!   with [`PushError::QuotaExceeded`] *before* touching any shard, so
//!   a flooding tenant sheds its own overload, not everyone's.
//! - **Deficit round-robin draining**: each shard keeps one FIFO lane
//!   per tenant and drains them by weighted deficit round-robin — a
//!   backlogged tenant's completion share converges to its fair-share
//!   weight, and a tenant with an empty lane costs nothing.
//!
//! Determinism: shard assignment is a pure hash of the tenant index,
//! and the DRR cursor/deficit state advances only on push/drain, so a
//! fixed arrival script drained single-threadedly yields a reproducible
//! service order (see `tests/fair_share.rs`).
//!
//! The queue records no observability events itself: rejection marks
//! (which must carry the admission trace ID) and queue-wait spans are
//! recorded at the service layer, keeping this container generic.

use crate::tenant::TenantTable;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The primary and alternate shards were both at capacity; retry
    /// later or shed load upstream.
    Full {
        /// Total configured capacity across all shards.
        capacity: usize,
    },
    /// The tenant already holds `quota` queued requests.
    QuotaExceeded {
        /// Numeric tenant ID whose quota was exhausted.
        tenant: u32,
        /// The tenant's configured quota.
        quota: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            PushError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant {tenant} over admission quota ({quota})")
            }
            PushError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Where an accepted push landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReceipt {
    /// Shard index the request was queued on.
    pub shard: usize,
    /// That shard's depth *after* the push (for depth watermarks).
    pub shard_depth: usize,
}

/// Per-shard state: one FIFO lane per tenant plus the deficit
/// round-robin scheduler's cursor and deficits.
#[derive(Debug)]
struct ShardState<T> {
    lanes: Vec<VecDeque<T>>,
    /// Items across all lanes of this shard.
    occupancy: usize,
    deficits: Vec<u64>,
    cursor: usize,
    shutdown: bool,
}

/// One queue shard: a mutex-guarded set of per-tenant lanes with a
/// condition variable for its worker slice.
#[derive(Debug)]
pub struct QueueShard<T> {
    state: Mutex<ShardState<T>>,
    not_empty: Condvar,
}

impl<T> QueueShard<T> {
    fn new(tenants: usize) -> Self {
        QueueShard {
            state: Mutex::new(ShardState {
                lanes: (0..tenants).map(|_| VecDeque::new()).collect(),
                occupancy: 0,
                deficits: vec![0; tenants],
                cursor: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
        }
    }
}

/// The sharded multi-tenant queue. See the module docs for semantics.
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Vec<QueueShard<T>>,
    per_shard_capacity: usize,
    capacity: usize,
    /// Fair-share weights by dense tenant index.
    weights: Vec<u64>,
    /// Admission quotas by dense tenant index.
    quotas: Vec<usize>,
    /// Numeric tenant IDs by dense tenant index (for typed rejections).
    ids: Vec<u32>,
    /// Queued requests per tenant, across shards (quota accounting).
    queued: Vec<AtomicUsize>,
}

/// SplitMix64 finalizer: cheap, deterministic shard hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<T> ShardedQueue<T> {
    /// Creates `shards` shards holding at most `capacity` requests in
    /// total (split evenly, each shard at least 1), with per-tenant
    /// weights/quotas taken from `tenants`.
    pub fn new(shards: usize, capacity: usize, tenants: &TenantTable) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedQueue {
            shards: (0..shards)
                .map(|_| QueueShard::new(tenants.len()))
                .collect(),
            per_shard_capacity,
            capacity,
            weights: tenants.weights(),
            quotas: tenants.quotas(),
            ids: tenants.specs().iter().map(|s| s.id.0).collect(),
            queued: (0..tenants.len()).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total configured capacity across shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current total depth (racy; for monitoring only).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().occupancy)
            .sum::<usize>()
    }

    /// True when no requests are queued (racy; for monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests tenant `tenant_idx` currently holds across shards.
    pub fn queued_for(&self, tenant_idx: usize) -> usize {
        // ordering: Acquire pairs with the AcqRel updates in
        // `try_push`/`drr_drain` so monitors never see a count ahead of
        // the quota decisions it reflects.
        self.queued[tenant_idx].load(Ordering::Acquire)
    }

    /// The (primary, alternate) shard pair for a tenant. Pure in the
    /// tenant index and shard count: shard assignment is reproducible
    /// run to run.
    // qpp-lint: hot-path
    pub fn shard_pair(&self, tenant_idx: usize) -> (usize, usize) {
        let n = self.shards.len() as u64;
        let h = splitmix64(tenant_idx as u64 + 1);
        let primary = (h % n) as usize;
        let mut alternate = ((h >> 32) % n) as usize;
        if alternate == primary {
            alternate = (primary + 1) % n as usize;
        }
        (primary, alternate)
    }

    /// Attempts to enqueue for tenant `tenant_idx` without blocking:
    /// quota gate first, then the tenant's primary shard, then (on
    /// overflow only) its power-of-two alternate.
    // qpp-lint: hot-path
    pub fn try_push(&self, tenant_idx: usize, item: T) -> Result<PushReceipt, PushError> {
        let quota = self.quotas[tenant_idx];
        // ordering: AcqRel makes the quota reservation a single
        // read-modify-write total order across tenant threads — two
        // racing pushes cannot both observe the last free slot.
        let held = self.queued[tenant_idx].fetch_add(1, Ordering::AcqRel);
        if held >= quota {
            // ordering: AcqRel keeps the rollback in the same total
            // order as the reservation above.
            self.queued[tenant_idx].fetch_sub(1, Ordering::AcqRel);
            return Err(PushError::QuotaExceeded {
                tenant: self.ids[tenant_idx],
                quota,
            });
        }
        let (primary, alternate) = self.shard_pair(tenant_idx);
        for (attempt, shard) in [primary, alternate].into_iter().enumerate() {
            let mut state = self.shards[shard].state.lock();
            if state.shutdown {
                drop(state);
                // ordering: AcqRel keeps the rollback in the same total
                // order as the reservation above.
                self.queued[tenant_idx].fetch_sub(1, Ordering::AcqRel);
                return Err(PushError::ShuttingDown);
            }
            if state.occupancy < self.per_shard_capacity {
                state.lanes[tenant_idx].push_back(item);
                state.occupancy += 1;
                let depth = state.occupancy;
                drop(state);
                self.shards[shard].not_empty.notify_one();
                return Ok(PushReceipt {
                    shard,
                    shard_depth: depth,
                });
            }
            drop(state);
            // Power-of-two-choices: on primary overflow fall through to
            // the alternate once; two full shards mean shed the request.
            if attempt == 0 && alternate == primary {
                break;
            }
        }
        // ordering: AcqRel keeps the rollback in the same total order
        // as the reservation above.
        self.queued[tenant_idx].fetch_sub(1, Ordering::AcqRel);
        Err(PushError::Full {
            capacity: self.capacity,
        })
    }

    /// One deficit-round-robin pass over `shard`'s lanes, appending up
    /// to `max_batch` items to `out` (which is cleared first). Returns
    /// the number drained (0: shard empty). Non-blocking.
    // qpp-lint: hot-path
    pub fn try_drain(&self, shard: usize, max_batch: usize, out: &mut Vec<T>) -> usize {
        out.clear();
        let max_batch = max_batch.max(1);
        let mut state = self.shards[shard].state.lock();
        let drained = self.drr_drain(&mut state, max_batch, out);
        let more = state.occupancy > 0;
        drop(state);
        if more {
            // Wake a sibling worker for the remainder.
            self.shards[shard].not_empty.notify_one();
        }
        drained
    }

    /// Deficit round-robin over the shard's tenant lanes. Each visit to
    /// a backlogged lane adds the tenant's weight to its deficit and
    /// pops one item per deficit unit, so backlogged tenants are served
    /// in proportion to their weights; an emptied lane forfeits its
    /// leftover deficit (standard DRR, keeps idle tenants from hoarding
    /// credit). Deterministic: cursor and deficits advance only here.
    // qpp-lint: hot-path
    fn drr_drain(&self, state: &mut ShardState<T>, max_batch: usize, out: &mut Vec<T>) -> usize {
        let tenants = self.weights.len();
        let mut drained = 0;
        while drained < max_batch && state.occupancy > 0 {
            let t = state.cursor;
            if !state.lanes[t].is_empty() {
                state.deficits[t] += self.weights[t];
                while state.deficits[t] > 0 && drained < max_batch {
                    match state.lanes[t].pop_front() {
                        Some(item) => {
                            out.push(item);
                            state.deficits[t] -= 1;
                            state.occupancy -= 1;
                            drained += 1;
                            // ordering: AcqRel releases the quota slot in
                            // the same total order `try_push` reserves it,
                            // so a blocked tenant sees the free slot no
                            // earlier than the drain that created it.
                            self.queued[t].fetch_sub(1, Ordering::AcqRel);
                        }
                        None => break,
                    }
                }
                if state.lanes[t].is_empty() {
                    state.deficits[t] = 0;
                }
            }
            state.cursor = (t + 1) % tenants;
        }
        drained
    }

    /// Blocks until one of the worker's `owned` shards has work (or all
    /// are shut down and drained), then drains a fair-share micro-batch
    /// from the first shard (in rotation order) that has any. Returns
    /// the shard drained, or `None` when every owned shard is shut down
    /// *and* empty — no accepted request is ever lost.
    ///
    /// `rotation` is the worker's private scan cursor: it persists
    /// across calls so a worker that owns several shards serves them
    /// round-robin instead of favoring the lowest index.
    pub fn drain_owned(
        &self,
        owned: &[usize],
        rotation: &mut usize,
        max_batch: usize,
        out: &mut Vec<T>,
    ) -> Option<usize> {
        assert!(!owned.is_empty(), "a worker must own at least one shard");
        // A worker pinned to one shard can park on its condvar for a
        // long beat; a worker covering several shards polls with a
        // short timed wait so work landing on a non-primary shard is
        // picked up promptly even if its notification was missed.
        let park = if owned.len() == 1 {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(1)
        };
        loop {
            let mut ended = 0;
            for k in 0..owned.len() {
                let slot = (*rotation + k) % owned.len();
                let shard = owned[slot];
                if self.try_drain(shard, max_batch, out) > 0 {
                    *rotation = (slot + 1) % owned.len();
                    return Some(shard);
                }
                let state = self.shards[shard].state.lock();
                if state.shutdown && state.occupancy == 0 {
                    ended += 1;
                }
            }
            if ended == owned.len() {
                return None;
            }
            let shard = owned[*rotation % owned.len()];
            let mut state = self.shards[shard].state.lock();
            if state.occupancy == 0 && !state.shutdown {
                // Timed wait so a missed notification can never wedge
                // the worker forever.
                self.shards[shard].not_empty.wait_for(&mut state, park);
            }
        }
    }

    /// Marks every shard as shutting down and wakes all workers.
    /// Already queued requests are still drained.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.state.lock().shutdown = true;
            shard.not_empty.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantId, TenantSpec};
    use std::sync::Arc;
    use std::time::Instant;

    fn table(specs: Vec<TenantSpec>) -> TenantTable {
        TenantTable::new(specs)
    }

    fn single_tenant() -> TenantTable {
        table(Vec::new())
    }

    #[test]
    fn push_over_capacity_rejects_immediately() {
        let t = single_tenant();
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 2, &t);
        assert!(q.try_push(0, 1).is_ok());
        assert!(q.try_push(0, 2).is_ok());
        let start = Instant::now();
        assert_eq!(q.try_push(0, 3), Err(PushError::Full { capacity: 2 }));
        // Rejection must be immediate, never a block.
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_is_fifo_and_bounded_by_batch_size() {
        let t = single_tenant();
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 10, &t);
        for i in 0..5 {
            q.try_push(0, i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.try_drain(0, 3, &mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.try_drain(0, 3, &mut out), 2);
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn shutdown_drains_remaining_then_ends() {
        let t = single_tenant();
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 10, &t);
        q.try_push(0, 7).unwrap();
        q.shutdown();
        assert_eq!(q.try_push(0, 8), Err(PushError::ShuttingDown));
        let mut out = Vec::new();
        let mut rot = 0;
        assert_eq!(q.drain_owned(&[0], &mut rot, 4, &mut out), Some(0));
        assert_eq!(out, vec![7]);
        assert!(q.drain_owned(&[0], &mut rot, 4, &mut out).is_none());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let t = single_tenant();
        let q: Arc<ShardedQueue<u32>> = Arc::new(ShardedQueue::new(1, 4, &t));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut rot = 0;
                q.drain_owned(&[0], &mut rot, 4, &mut out).map(|_| out)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(0, 42).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn quota_rejects_carry_the_tenant_and_release_on_drain() {
        let t = table(vec![TenantSpec::new(TenantId(5), "capped").quota(2)]);
        let capped = t.resolve(TenantId(5));
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 100, &t);
        assert!(q.try_push(capped, 1).is_ok());
        assert!(q.try_push(capped, 2).is_ok());
        assert_eq!(
            q.try_push(capped, 3),
            Err(PushError::QuotaExceeded {
                tenant: 5,
                quota: 2
            })
        );
        // The default tenant is unaffected by tenant 5's quota.
        assert!(q.try_push(0, 9).is_ok());
        // Draining releases quota.
        let (shard, _) = q.shard_pair(capped);
        let mut out = Vec::new();
        assert!(q.try_drain(shard, 16, &mut out) >= 1);
        assert!(q.try_push(capped, 4).is_ok());
    }

    #[test]
    fn overflow_spills_to_the_alternate_shard_before_shedding() {
        let t = single_tenant();
        // 2 shards x 2 slots; tenant 0 always hashes to the same
        // primary, so pushes 3 and 4 must spill to the alternate.
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 4, &t);
        let (primary, alternate) = q.shard_pair(0);
        assert_ne!(primary, alternate);
        let mut shards = Vec::new();
        for i in 0..4 {
            shards.push(q.try_push(0, i).unwrap().shard);
        }
        assert_eq!(shards[0], primary);
        assert_eq!(shards[1], primary);
        assert_eq!(shards[2], alternate);
        assert_eq!(shards[3], alternate);
        assert_eq!(q.try_push(0, 9), Err(PushError::Full { capacity: 4 }));
    }

    #[test]
    fn drr_serves_backlogged_tenants_by_weight() {
        let t = table(vec![
            TenantSpec::new(TenantId(1), "heavy").weight(3),
            TenantSpec::new(TenantId(2), "light").weight(1),
        ]);
        let heavy = t.resolve(TenantId(1));
        let light = t.resolve(TenantId(2));
        let q: ShardedQueue<(usize, u32)> = ShardedQueue::new(1, 64, &t);
        for i in 0..12 {
            q.try_push(heavy, (heavy, i)).unwrap();
            q.try_push(light, (light, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.try_drain(0, 8, &mut out), 8);
        let heavy_got = out.iter().filter(|(t, _)| *t == heavy).count();
        let light_got = out.iter().filter(|(t, _)| *t == light).count();
        assert_eq!(
            (heavy_got, light_got),
            (6, 2),
            "weight 3:1 over a backlogged batch of 8: {out:?}"
        );
    }

    #[test]
    fn shard_assignment_is_reproducible() {
        let t = table(vec![
            TenantSpec::new(TenantId(1), "a"),
            TenantSpec::new(TenantId(2), "b"),
        ]);
        let a: ShardedQueue<u32> = ShardedQueue::new(4, 64, &t);
        let b: ShardedQueue<u32> = ShardedQueue::new(4, 64, &t);
        for idx in 0..t.len() {
            assert_eq!(a.shard_pair(idx), b.shard_pair(idx));
        }
    }
}
