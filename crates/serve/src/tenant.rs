//! Multi-tenant identity and admission configuration.
//!
//! The paper's workload-management story only works if predictions can
//! *enforce* decisions per workload owner: the ETL pipeline, the
//! dashboard fleet, and the ad-hoc analysts are different tenants with
//! different priorities, and one of them flooding the gateway must not
//! starve the others. This module gives the serve layer that identity:
//!
//! - [`TenantId`]: a small copyable ID carried on every request.
//! - [`TenantSpec`]: per-tenant fair-share weight and admission quota.
//! - [`TenantTable`]: the immutable directory the service builds at
//!   start — dense indices for per-tenant accounting, binary-search
//!   resolution on the admission hot path, and a catch-all default
//!   tenant for traffic that carries no registration.

/// Identifies one tenant (workload owner) of the prediction service.
///
/// `TenantId(0)` is the catch-all default: requests from unregistered
/// tenants are accounted under it. IDs are plain numbers, not secrets —
/// the embedder maps its own principal names onto them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// The catch-all tenant every service always has.
pub const DEFAULT_TENANT: TenantId = TenantId(0);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Per-tenant admission configuration.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The tenant this spec configures.
    pub id: TenantId,
    /// Human-readable name for reports and benches.
    pub name: String,
    /// Fair-share weight: the deficit-round-robin scheduler serves
    /// tenants in proportion to their weights when their queues are
    /// backlogged. Clamped to at least 1.
    pub weight: u32,
    /// Admission quota: maximum requests this tenant may have queued at
    /// once, across all shards. Submissions beyond it are rejected with
    /// `QppError::TenantQuotaExceeded` *before* touching any shard, so
    /// a flooding tenant sheds its own overload instead of everyone's.
    pub quota: usize,
}

impl TenantSpec {
    /// A spec with weight 1 and an effectively unlimited quota.
    pub fn new(id: TenantId, name: impl Into<String>) -> Self {
        TenantSpec {
            id,
            name: name.into(),
            weight: 1,
            quota: usize::MAX,
        }
    }

    /// Sets the fair-share weight (builder form).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the admission quota (builder form).
    pub fn quota(mut self, quota: usize) -> Self {
        self.quota = quota.max(1);
        self
    }
}

/// Immutable tenant directory, fixed at service start.
///
/// Tenants get dense indices in ascending-ID order; index 0 is always
/// the catch-all [`DEFAULT_TENANT`] (either the embedder's own spec for
/// ID 0 or an implicit weight-1 unlimited-quota one). Everything
/// per-tenant in the serve layer — queue shards, quota counters, stats
/// blocks — is an array indexed by these dense indices, so the hot path
/// never hashes.
#[derive(Debug)]
pub struct TenantTable {
    specs: Vec<TenantSpec>,
}

impl TenantTable {
    /// Builds the directory from the configured specs. Duplicate IDs
    /// keep the last spec; a default-tenant spec is synthesized when
    /// none was supplied.
    pub fn new(mut specs: Vec<TenantSpec>) -> Self {
        specs.sort_by_key(|s| s.id);
        specs.dedup_by(|later, earlier| {
            // `dedup_by` keeps the *first* of a run; overwrite it with
            // the later spec so "last one wins" holds.
            if later.id == earlier.id {
                std::mem::swap(later, earlier);
                true
            } else {
                false
            }
        });
        if specs.first().map(|s| s.id) != Some(DEFAULT_TENANT) {
            specs.insert(0, TenantSpec::new(DEFAULT_TENANT, "default"));
        }
        for spec in &mut specs {
            spec.weight = spec.weight.max(1);
        }
        TenantTable { specs }
    }

    /// Number of tenants (including the catch-all default).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Always false: the default tenant is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dense index for `id`; unregistered tenants fold into the
    /// catch-all default at index 0.
    // qpp-lint: hot-path
    pub fn resolve(&self, id: TenantId) -> usize {
        self.specs
            .binary_search_by_key(&id, |s| s.id)
            .unwrap_or_default()
    }

    /// The spec at a dense index.
    pub fn spec(&self, idx: usize) -> &TenantSpec {
        &self.specs[idx]
    }

    /// All specs in dense-index (ascending tenant-ID) order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Fair-share weights by dense index.
    pub fn weights(&self) -> Vec<u64> {
        self.specs.iter().map(|s| s.weight as u64).collect()
    }

    /// Admission quotas by dense index.
    pub fn quotas(&self) -> Vec<usize> {
        self.specs.iter().map(|s| s.quota).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_is_synthesized_at_index_zero() {
        let table = TenantTable::new(vec![
            TenantSpec::new(TenantId(7), "etl").weight(3),
            TenantSpec::new(TenantId(2), "dash"),
        ]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.spec(0).id, DEFAULT_TENANT);
        assert_eq!(table.spec(1).id, TenantId(2));
        assert_eq!(table.spec(2).id, TenantId(7));
        assert_eq!(table.resolve(TenantId(7)), 2);
        // Unregistered tenants fold into the default slot.
        assert_eq!(table.resolve(TenantId(999)), 0);
    }

    #[test]
    fn explicit_default_spec_is_kept() {
        let table = TenantTable::new(vec![TenantSpec::new(DEFAULT_TENANT, "everyone")
            .weight(2)
            .quota(5)]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.spec(0).name, "everyone");
        assert_eq!(table.spec(0).weight, 2);
        assert_eq!(table.spec(0).quota, 5);
    }

    #[test]
    fn duplicate_ids_keep_the_last_spec_and_weights_clamp() {
        let table = TenantTable::new(vec![
            TenantSpec::new(TenantId(3), "first").weight(9),
            TenantSpec {
                id: TenantId(3),
                name: "second".to_string(),
                weight: 0,
                quota: 4,
            },
        ]);
        let idx = table.resolve(TenantId(3));
        assert_eq!(table.spec(idx).name, "second");
        assert_eq!(table.spec(idx).weight, 1, "weight 0 clamps to 1");
        assert_eq!(table.quotas()[idx], 4);
    }
}
