//! Property tests for the sharded multi-tenant queue: quota isolation
//! under flooding, deterministic deficit-round-robin ordering, and
//! weight-proportional service — each checked over hundreds of seeded
//! arrival scripts.

use qpp_serve::{PushError, ShardedQueue, TenantId, TenantSpec, TenantTable};

/// SplitMix64: the scripts' deterministic RNG (no external dep, stable
/// across runs and platforms).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Backpressure property (no cross-tenant starvation): under a full
/// shard, a tenant flooding past its quota is shed exactly in
/// proportion to its over-quota submission, and a bystander tenant
/// within its own quota is never rejected — over 220 seeded arrival
/// scripts varying quota, flood volume, shard count, and interleaving.
#[test]
fn per_tenant_rejects_are_proportional_to_over_quota_submission() {
    for seed in 0..220u64 {
        let mut rng = Rng(seed.wrapping_mul(0x0de1_7c5e_11ed) + 1);
        let shards = rng.range(1, 2) as usize;
        let quota = rng.range(2, 8) as usize;
        let floods = quota as u64 + rng.range(1, 40); // always over quota
        let bystander_n = rng.range(1, 8);
        let table = TenantTable::new(vec![
            TenantSpec::new(TenantId(1), "flooder").quota(quota),
            TenantSpec::new(TenantId(2), "bystander").quota(8),
        ]);
        let flooder = table.resolve(TenantId(1));
        let bystander = table.resolve(TenantId(2));
        // Capacity 16 with at most 2 shards: the power-of-two push can
        // always reach every slot, so the flooder's *quota* (never raw
        // capacity) is the only thing that can shed its traffic, and
        // the bystander's 8 slots always fit beside the flooder's <= 8.
        let q: ShardedQueue<u64> = ShardedQueue::new(shards, 16, &table);

        // Random interleaving of the two tenants' arrivals.
        let mut script: Vec<usize> = Vec::new();
        script.extend(std::iter::repeat_n(flooder, floods as usize));
        script.extend(std::iter::repeat_n(bystander, bystander_n as usize));
        for i in (1..script.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            script.swap(i, j);
        }

        let mut rejects = [0u64; 2];
        let mut accepts = [0u64; 2];
        for (i, &tenant) in script.iter().enumerate() {
            match q.try_push(tenant, i as u64) {
                Ok(_) => accepts[tenant - 1] += 1,
                Err(PushError::QuotaExceeded {
                    tenant: id,
                    quota: reported,
                }) => {
                    assert_eq!(id, tenant as u32, "seed {seed}: reject names the tenant");
                    assert_eq!(reported, if tenant == flooder { quota } else { 8 });
                    rejects[tenant - 1] += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected rejection {e:?}"),
            }
        }
        // The flooder is shed exactly its over-quota excess; nothing
        // it did rejected the bystander.
        assert_eq!(
            accepts[flooder - 1],
            quota as u64,
            "seed {seed}: flooder holds exactly its quota"
        );
        assert_eq!(
            rejects[flooder - 1],
            floods - quota as u64,
            "seed {seed}: flooder shed = over-quota excess"
        );
        assert_eq!(
            rejects[bystander - 1],
            0,
            "seed {seed}: a flooding tenant must not starve a bystander"
        );
        assert_eq!(accepts[bystander - 1], bystander_n);
        // Quota accounting matches what is actually queued.
        assert_eq!(q.queued_for(flooder), quota);
        assert_eq!(q.queued_for(bystander), bystander_n as usize);
        assert_eq!(q.len(), quota + bystander_n as usize);
    }
}

/// Determinism property: the same seeded arrival script drained from
/// identically configured queues yields bitwise-identical drain order,
/// including the DRR cursor/deficit evolution across partial batches.
#[test]
fn drr_drain_order_is_reproducible_for_a_fixed_script() {
    for seed in 0..100u64 {
        let mut rng = Rng(seed.wrapping_mul(0xa076_1d64_78bd_642f) + 1);
        let weights: Vec<u32> = (0..3).map(|_| rng.range(1, 4) as u32).collect();
        let table = TenantTable::new(vec![
            TenantSpec::new(TenantId(1), "a").weight(weights[0]),
            TenantSpec::new(TenantId(2), "b").weight(weights[1]),
            TenantSpec::new(TenantId(3), "c").weight(weights[2]),
        ]);
        let script: Vec<usize> = (0..rng.range(10, 60))
            .map(|_| table.resolve(TenantId(rng.range(1, 3) as u32)))
            .collect();
        let batch = rng.range(1, 7) as usize;

        let run = |table: &TenantTable| -> Vec<u64> {
            let q: ShardedQueue<u64> = ShardedQueue::new(1, 1024, table);
            for (i, &t) in script.iter().enumerate() {
                q.try_push(t, i as u64).expect("capacity 1024 never fills");
            }
            let mut order = Vec::new();
            let mut out = Vec::new();
            while q.try_drain(0, batch, &mut out) > 0 {
                order.extend_from_slice(&out);
            }
            order
        };

        let first = run(&table);
        let second = run(&table);
        assert_eq!(first.len(), script.len(), "seed {seed}: nothing lost");
        assert_eq!(first, second, "seed {seed}: drain order must reproduce");
    }
}

/// Fairness property: with every tenant lane fully backlogged, the
/// deficit-round-robin drain serves each tenant within one weight
/// quantum of its exact fair share, for seeded random weights.
#[test]
fn backlogged_drain_shares_track_weights() {
    for seed in 0..100u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9fb2_1c65_1e98_df25) + 1);
        let weights: Vec<u64> = (0..3).map(|_| rng.range(1, 5)).collect();
        let table = TenantTable::new(vec![
            TenantSpec::new(TenantId(1), "a").weight(weights[0] as u32),
            TenantSpec::new(TenantId(2), "b").weight(weights[1] as u32),
            TenantSpec::new(TenantId(3), "c").weight(weights[2] as u32),
        ]);
        let q: ShardedQueue<(usize, u64)> = ShardedQueue::new(1, 4096, &table);
        // Deep backlogs: every lane always has work, so shares are
        // governed purely by the weights.
        let backlog = 100;
        for i in 0..backlog {
            for id in 1..=3u32 {
                let t = table.resolve(TenantId(id));
                q.try_push(t, (t, i as u64)).expect("fits");
            }
        }
        // Drain a window that keeps every lane non-empty throughout.
        let total_weight: u64 = weights.iter().sum();
        let cycles = 20;
        let want = cycles * total_weight;
        let mut got = [0u64; 4];
        let mut drained = 0;
        let mut out = Vec::new();
        while drained < want {
            let n = q.try_drain(0, (want - drained).min(16) as usize, &mut out);
            assert!(n > 0, "seed {seed}: backlog cannot run dry here");
            for (t, _) in &out {
                got[*t] += 1;
            }
            drained += n as u64;
        }
        for (i, &w) in weights.iter().enumerate() {
            let t = i + 1; // dense index (default tenant is 0)
            let exact = cycles * w;
            let diff = got[t].abs_diff(exact);
            assert!(
                diff <= w,
                "seed {seed}: tenant {t} served {} of {want}, exact share {exact} (weight {w})",
                got[t]
            );
        }
    }
}
