//! Concurrency tests for the prediction service: exactly-once answers
//! under producer/worker concurrency, non-blocking backpressure, and
//! torn-free model hot-swap.

use qpp_core::baselines::OptimizerCostModel;
use qpp_core::predictor::PredictorOptions;
use qpp_core::{Dataset, FeatureKind, KccaPredictor};
use qpp_engine::SystemConfig;
use qpp_serve::{
    AnswerSource, ModelKey, ModelRegistry, PredictRequest, PredictionService, QppError,
    ServeOptions, TenantId, TenantSpec, DEFAULT_TENANT,
};
use qpp_workload::{Schema, WorkloadGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dataset(n: usize, seed: u64) -> Dataset {
    let schema = Schema::tpcds(1.0);
    let mut g = WorkloadGenerator::tpcds(1.0, seed);
    Dataset::collect(&schema, g.generate(n), &SystemConfig::neoview_4(), 2)
}

fn trained(d: &Dataset) -> (KccaPredictor, OptimizerCostModel) {
    (
        KccaPredictor::train(d, PredictorOptions::default()).unwrap(),
        OptimizerCostModel::train(d).unwrap(),
    )
}

fn request(d: &Dataset, i: usize, key: &ModelKey, deadline: Duration) -> PredictRequest {
    request_for(d, i, key, deadline, DEFAULT_TENANT)
}

fn request_for(
    d: &Dataset,
    i: usize,
    key: &ModelKey,
    deadline: Duration,
    tenant: TenantId,
) -> PredictRequest {
    let r = &d.records[i % d.records.len()];
    PredictRequest {
        key: key.clone(),
        tenant,
        spec: r.spec.clone(),
        plan: r.optimized.plan.clone(),
        deadline,
    }
}

/// N producers x M workers: every accepted request is answered exactly
/// once, and the ledger (completed + fallbacks vs client-side answers)
/// balances.
#[test]
fn concurrent_smoke_every_request_answered_exactly_once() {
    let train = dataset(60, 101);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = Arc::new(PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 4,
            queue_capacity: 1024,
            max_batch: 8,
            ..ServeOptions::default()
        },
    ));

    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 50;
    let pool = dataset(40, 202);
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let service = Arc::clone(&service);
            let pool = pool.clone();
            let key = key.clone();
            std::thread::spawn(move || {
                let mut answers = 0usize;
                for i in 0..PER_PRODUCER {
                    let req = request(&pool, p * PER_PRODUCER + i, &key, Duration::from_secs(10));
                    let resp = service.submit(req).expect("capacity 1024 never fills here");
                    assert!(resp.prediction.metrics.elapsed_seconds.is_finite());
                    answers += 1;
                }
                answers
            })
        })
        .collect();

    let total: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, PRODUCERS * PER_PRODUCER);

    let snap = service.stats();
    assert_eq!(snap.submitted, (PRODUCERS * PER_PRODUCER) as u64);
    // Exactly-once ledger: every submission was answered through KCCA
    // or the fallback, and nothing was double-counted.
    assert_eq!(snap.completed + snap.fallbacks, snap.submitted);
    assert_eq!(snap.rejected_queue_full, 0);
    assert!(snap.mean_batch_size >= 1.0);
}

/// A full queue rejects instantly with a typed reason and never blocks
/// the submitter.
#[test]
fn backpressure_rejects_without_blocking() {
    let train = dataset(60, 103);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    // No workers: nothing drains, so the queue fills deterministically.
    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 0,
            queue_capacity: 3,
            ..ServeOptions::default()
        },
    );

    let mut pending = Vec::new();
    for i in 0..3 {
        pending.push(
            service
                .submit_async(request(&train, i, &key, Duration::from_millis(50)))
                .expect("under capacity"),
        );
    }
    let start = Instant::now();
    let overflow = service.submit_async(request(&train, 9, &key, Duration::from_millis(50)));
    assert!(
        start.elapsed() < Duration::from_millis(200),
        "rejection must be immediate"
    );
    match overflow {
        Err(QppError::QueueFull { capacity }) => assert_eq!(capacity, 3),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.stats().rejected_queue_full, 1);

    // The queued requests still get answers — via the deadline
    // fallback, since no worker will ever serve them.
    for p in pending {
        let resp = p.wait().expect("fallback answers");
        assert_eq!(resp.source, AnswerSource::CostModelFallback);
        assert!(resp.prediction.metrics.elapsed_seconds > 0.0);
    }
    let snap = service.stats();
    assert_eq!(snap.fallbacks, 3);
    assert_eq!(snap.completed + snap.fallbacks, snap.submitted);
}

/// Hot-swapping models mid-stream never tears a model: every answer
/// carries a version that was actually installed, and the stream never
/// drops or errors a request.
#[test]
fn hot_swap_mid_stream_is_atomic() {
    let train_a = dataset(60, 104);
    let train_b = dataset(60, 105);
    let (model_a, fallback_a) = trained(&train_a);
    let (model_b, fallback_b) = trained(&train_b);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    let v1 = registry.install(key.clone(), model_a, fallback_a.clone());

    let service = Arc::new(PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 3,
            queue_capacity: 512,
            max_batch: 4,
            ..ServeOptions::default()
        },
    ));

    const REQUESTS: usize = 200;
    let streamer = {
        let service = Arc::clone(&service);
        let pool = train_a.clone();
        let key = key.clone();
        std::thread::spawn(move || {
            let mut versions = Vec::with_capacity(REQUESTS);
            for i in 0..REQUESTS {
                let resp = service
                    .submit(request(&pool, i, &key, Duration::from_secs(10)))
                    .expect("stream request answered");
                versions.push(resp.model_version);
            }
            versions
        })
    };

    // Swap between the two models while the stream runs.
    let mut installed = vec![v1];
    for swap in 0..6 {
        std::thread::sleep(Duration::from_millis(5));
        let (m, f) = if swap % 2 == 0 {
            (model_b.clone(), fallback_b.clone())
        } else {
            trained(&train_a)
        };
        installed.push(registry.install(key.clone(), m, f));
    }

    let versions = streamer.join().unwrap();
    assert_eq!(versions.len(), REQUESTS);
    // No torn model: every answer came from a version that was actually
    // installed, never a mix.
    for v in &versions {
        assert!(installed.contains(v), "answered by uninstalled version {v}");
    }
    assert_eq!(registry.swap_count(), 6);
    let snap = service.stats();
    assert_eq!(snap.completed + snap.fallbacks, snap.submitted);
    assert_eq!(snap.model_swaps, 6);
}

/// Regression: `wait` used to arm `recv_timeout` with the request's
/// full deadline measured from wait-start, ignoring time already spent
/// since submission. A caller that did 300 ms of work between
/// `submit_async` and `wait` got 300 ms + deadline of total budget; the
/// deadline must be measured from submission.
#[test]
fn deadline_counts_from_submission_not_wait_start() {
    let train = dataset(60, 107);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    // No workers: the KCCA answer never arrives, so `wait` must hold
    // exactly the deadline's remainder before falling back.
    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 0,
            ..ServeOptions::default()
        },
    );

    let pending = service
        .submit_async(request(&train, 0, &key, Duration::from_millis(400)))
        .expect("under capacity");
    std::thread::sleep(Duration::from_millis(300));
    let wait_start = Instant::now();
    let resp = pending.wait().expect("fallback answers");
    let waited = wait_start.elapsed();
    assert_eq!(resp.source, AnswerSource::CostModelFallback);
    // ~100 ms of deadline remained; the old code waited the full 400 ms
    // from here.
    assert!(
        waited < Duration::from_millis(300),
        "wait held {waited:?}, deadline remainder was ~100ms"
    );
    // End-to-end latency stays near the deadline, not sleep + deadline.
    assert!(
        resp.latency < Duration::from_millis(650),
        "end-to-end {:?} blew past the 400ms deadline budget",
        resp.latency
    );
}

/// When the deadline has already expired before `wait` is called, the
/// fallback must answer (near-)immediately instead of waiting a full
/// fresh deadline.
#[test]
fn expired_deadline_falls_back_immediately() {
    let train = dataset(60, 108);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 0,
            ..ServeOptions::default()
        },
    );

    let pending = service
        .submit_async(request(&train, 0, &key, Duration::from_millis(100)))
        .expect("under capacity");
    std::thread::sleep(Duration::from_millis(250));
    let wait_start = Instant::now();
    let resp = pending.wait().expect("fallback answers");
    assert_eq!(resp.source, AnswerSource::CostModelFallback);
    assert!(
        wait_start.elapsed() < Duration::from_millis(100),
        "expired deadline must not wait again (held {:?})",
        wait_start.elapsed()
    );
}

/// One served request produces a complete trace: admission, queue-wait,
/// worker and predict spans all stamped with the trace ID the response
/// reports.
#[test]
fn served_request_exports_a_complete_trace() {
    use qpp_obs::{EventKind, Stage};

    let train = dataset(60, 109);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    );

    let resp = service
        .submit(request(&train, 0, &key, Duration::from_secs(10)))
        .expect("request answered");
    assert_eq!(resp.source, AnswerSource::Kcca);
    assert_ne!(resp.trace_id, 0, "accepted requests are always traced");

    let events = qpp_obs::recorder().export_trace(resp.trace_id);
    for stage in [
        Stage::Admission,
        Stage::QueueWait,
        Stage::Worker,
        Stage::Predict,
    ] {
        let found = events
            .iter()
            .find(|e| e.stage == stage && e.kind == EventKind::Span)
            .unwrap_or_else(|| panic!("trace missing {stage} span: {events:?}"));
        assert_eq!(found.trace_id, resp.trace_id);
    }
    // A KCCA answer must not be tagged as a fallback.
    assert!(
        !events.iter().any(|e| e.stage == Stage::Fallback),
        "kcca answer wrongly tagged fallback: {events:?}"
    );
}

/// A deadline-missed request's trace carries the fallback marker, and
/// the global fallback counter moves — the optimizer-cost fallback rate
/// is a first-class metric.
#[test]
fn fallback_answers_are_tagged_in_trace_and_counted() {
    use qpp_obs::{EventKind, Stage};

    let train = dataset(60, 110);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 0,
            ..ServeOptions::default()
        },
    );

    let fallbacks_before = qpp_obs::recorder().fallback_answers.get();
    let resp = service
        .submit(request(&train, 0, &key, Duration::from_millis(20)))
        .expect("fallback answers");
    assert_eq!(resp.source, AnswerSource::CostModelFallback);
    assert!(qpp_obs::recorder().fallback_answers.get() > fallbacks_before);

    let events = qpp_obs::recorder().export_trace(resp.trace_id);
    let mark = events
        .iter()
        .find(|e| e.stage == Stage::Fallback)
        .unwrap_or_else(|| panic!("fallback answer not tagged: {events:?}"));
    assert_eq!(mark.kind, EventKind::Mark);
    assert_eq!(mark.trace_id, resp.trace_id);
}

/// Submitting against a key with no installed model fails fast.
#[test]
fn unknown_model_fails_fast() {
    let registry = Arc::new(ModelRegistry::new());
    let service = PredictionService::start(registry, ServeOptions::default());
    let pool = dataset(20, 106);
    let key = ModelKey::new("nowhere", FeatureKind::QueryPlan);
    match service.submit(request(&pool, 0, &key, Duration::from_millis(10))) {
        Err(QppError::UnknownModel { key }) => assert!(key.contains("nowhere")),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
}

/// Satellite regression: a queue-full rejection must record a tagged
/// `admission_reject` mark carrying the request's admission trace ID
/// and tenant. (The pre-shard service lost the trace ID on this path —
/// the rejection was only a global counter bump, invisible to traces.)
#[test]
fn queue_full_rejection_records_tagged_mark_with_trace_id() {
    use qpp_obs::{unpack_tags, EventKind, Stage};

    let train = dataset(60, 107);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    // Tenant 777 is unique to this test: the obs recorder is global
    // and other tests run concurrently, so marks are filtered by the
    // unpacked tenant tag.
    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 0, // nothing drains: the queue fills deterministically
            queue_capacity: 2,
            tenants: vec![TenantSpec::new(TenantId(777), "flooder")],
            ..ServeOptions::default()
        },
    );

    let mut pending = Vec::new();
    for i in 0..2 {
        pending.push(
            service
                .submit_async(request_for(
                    &train,
                    i,
                    &key,
                    Duration::from_millis(50),
                    TenantId(777),
                ))
                .expect("under capacity"),
        );
    }
    match service.submit_async(request_for(
        &train,
        9,
        &key,
        Duration::from_millis(50),
        TenantId(777),
    )) {
        Err(QppError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }

    let rejects: Vec<_> = qpp_obs::recorder()
        .export()
        .into_iter()
        .filter(|e| e.stage == Stage::AdmissionReject && unpack_tags(e.value).0 == 777)
        .collect();
    assert!(!rejects.is_empty(), "rejection must record a tagged mark");
    for mark in &rejects {
        assert_eq!(mark.kind, EventKind::Mark);
        assert_ne!(
            mark.trace_id, 0,
            "the rejection mark must carry the admission trace ID"
        );
        let (tenant, _shard, reason) = unpack_tags(mark.value);
        assert_eq!(tenant, 777);
        assert_eq!(reason, qpp_serve::REJECT_QUEUE_FULL);
    }

    // And the per-tenant reject counter tracked it.
    let snap = service.stats();
    let row = snap
        .per_tenant
        .iter()
        .find(|t| t.tenant == 777)
        .expect("tenant 777 in snapshot");
    assert_eq!(row.rejected_queue_full, 1);
    assert_eq!(row.rejected_quota, 0);
}

/// An over-quota tenant is rejected with a typed error before touching
/// any shard, records a tagged mark with its trace ID, and cannot
/// displace other tenants' capacity.
#[test]
fn over_quota_tenant_is_rejected_with_typed_error_and_tagged_mark() {
    use qpp_obs::{unpack_tags, EventKind, Stage};

    let train = dataset(60, 108);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 0, // nothing drains: quota state is deterministic
            queue_capacity: 64,
            tenants: vec![
                TenantSpec::new(TenantId(778), "capped").quota(2),
                TenantSpec::new(TenantId(779), "bystander"),
            ],
            ..ServeOptions::default()
        },
    );

    let mut pending = Vec::new();
    for i in 0..2 {
        pending.push(
            service
                .submit_async(request_for(
                    &train,
                    i,
                    &key,
                    Duration::from_millis(50),
                    TenantId(778),
                ))
                .expect("under quota"),
        );
    }
    match service.submit_async(request_for(
        &train,
        5,
        &key,
        Duration::from_millis(50),
        TenantId(778),
    )) {
        Err(QppError::TenantQuotaExceeded { tenant, quota }) => {
            assert_eq!(tenant, 778);
            assert_eq!(quota, 2);
        }
        other => panic!("expected TenantQuotaExceeded, got {other:?}"),
    }
    // The bystander tenant is unaffected by 778's quota exhaustion.
    pending.push(
        service
            .submit_async(request_for(
                &train,
                6,
                &key,
                Duration::from_millis(50),
                TenantId(779),
            ))
            .expect("bystander admits freely"),
    );

    let rejects: Vec<_> = qpp_obs::recorder()
        .export()
        .into_iter()
        .filter(|e| e.stage == Stage::AdmissionReject && unpack_tags(e.value).0 == 778)
        .collect();
    assert_eq!(rejects.len(), 1, "exactly one quota rejection recorded");
    assert_eq!(rejects[0].kind, EventKind::Mark);
    assert_ne!(rejects[0].trace_id, 0);
    assert_eq!(
        unpack_tags(rejects[0].value).2,
        qpp_serve::REJECT_OVER_QUOTA
    );

    let snap = service.stats();
    assert_eq!(snap.rejected_quota, 1);
    let row = snap
        .per_tenant
        .iter()
        .find(|t| t.tenant == 778)
        .expect("tenant 778 in snapshot");
    assert_eq!(row.rejected_quota, 1);
    assert_eq!(row.submitted, 2);
}

/// Responses carry the resolved tenant, per-tenant stats split
/// completions, and unregistered tenants fold into the default.
#[test]
fn responses_and_stats_are_tenant_attributed() {
    let train = dataset(60, 109);
    let (model, fallback) = trained(&train);
    let key = ModelKey::new("neoview-4", FeatureKind::QueryPlan);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(key.clone(), model, fallback);

    let service = PredictionService::start(
        Arc::clone(&registry),
        ServeOptions {
            workers: 2,
            tenants: vec![
                TenantSpec::new(TenantId(5), "etl").weight(3),
                TenantSpec::new(TenantId(6), "adhoc"),
            ],
            ..ServeOptions::default()
        },
    );

    for i in 0..6 {
        let tenant = if i % 2 == 0 { TenantId(5) } else { TenantId(6) };
        let resp = service
            .submit(request_for(
                &train,
                i,
                &key,
                Duration::from_secs(10),
                tenant,
            ))
            .expect("answered");
        assert_eq!(resp.tenant, tenant, "response carries the tenant");
    }
    // An unregistered tenant folds into the default (tenant 0).
    let resp = service
        .submit(request_for(
            &train,
            7,
            &key,
            Duration::from_secs(10),
            TenantId(999),
        ))
        .expect("answered");
    assert_eq!(resp.tenant, qpp_serve::DEFAULT_TENANT);

    let snap = service.stats();
    assert_eq!(snap.per_tenant.len(), 3);
    let by_id = |id: u32| {
        snap.per_tenant
            .iter()
            .find(|t| t.tenant == id)
            .unwrap_or_else(|| panic!("tenant {id} missing"))
    };
    assert_eq!(by_id(0).submitted, 1);
    assert_eq!(by_id(5).submitted, 3);
    assert_eq!(by_id(5).weight, 3);
    assert_eq!(by_id(6).submitted, 3);
    assert_eq!(
        snap.per_tenant.iter().map(|t| t.submitted).sum::<u64>(),
        snap.submitted
    );
    assert_eq!(
        snap.per_tenant
            .iter()
            .map(|t| t.completed + t.fallbacks)
            .sum::<u64>(),
        snap.completed + snap.fallbacks
    );
}
