//! Workspace-level flow analysis: call graph, hot-path propagation,
//! lock-order composition, and the atomic-ordering audit.
//!
//! The per-file rules in [`crate::rules`] see one token stream at a
//! time; this module sees all of them at once. It builds a conservative
//! call graph from the scanned `fn` items (path resolution by
//! `crate::module::fn` qualifiers, method resolution by receiver type
//! hints with a same-crate name fallback), then runs three passes over
//! it:
//!
//! 1. **Hot-path propagation** — BFS from every `// qpp-lint: hot-path`
//!    root; the alloc/unwrap/wallclock rules fire in any reachable
//!    function, with the call chain attached as provenance.
//!    `// qpp-lint: cold-path` marks a deliberate slow-path boundary
//!    and stops the propagation.
//! 2. **Lock-order** — per-function acquisition sequences (guard
//!    lifetimes tracked through scopes and `drop`), composed through
//!    the call graph; any cycle in the lock-order graph is reported
//!    with its full witness path.
//! 3. **Atomic-ordering audit** — every `Ordering::*` use must carry an
//!    `// ordering: <why>` justification; `Relaxed` stores whose
//!    same-named field loads use `Acquire` elsewhere are flagged as a
//!    broken release/acquire pair.
//!
//! Known approximations are documented in DESIGN.md §16: resolution is
//! name-based (no trait dispatch, no instance identity), so the graph
//! over-approximates targets with identical method names in one crate
//! and under-approximates dynamic dispatch and locks it cannot type.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Token, TokenKind};
use crate::rules::{alloc_finding, Diagnostic};
use crate::scanner::{skip_angles, FileModel};

/// Aggregate counters for `--json` v2 and the CLI summary line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Files that entered the analysis.
    pub files: usize,
    /// Non-test `fn` items indexed as call-graph nodes.
    pub functions: usize,
    /// Resolved call edges (caller → workspace callee).
    pub call_edges: usize,
    /// Functions directly marked `// qpp-lint: hot-path`.
    pub hot_roots: usize,
    /// Functions hot only by reachability from a root.
    pub hot_propagated: usize,
    /// Lock/condvar acquisition sites the analysis could type.
    pub lock_sites: usize,
    /// Ordered edges in the composed lock-order graph.
    pub lock_edges: usize,
    /// Atomic `Ordering::*` uses in non-test code.
    pub atomic_sites: usize,
    /// Of those, sites carrying an `// ordering:` justification.
    pub atomic_justified: usize,
}

/// One call-graph node: `files[file].fns[item]`.
#[derive(Debug, Clone, Copy)]
struct Node {
    file: usize,
    item: usize,
}

/// A resolved call site: edge to `callee` at token `tok` of the
/// caller's file.
#[derive(Debug, Clone, Copy)]
struct Edge {
    callee: usize,
    tok: usize,
}

/// Identity of a lock in the order graph. Name-based: instances of the
/// same field share an identity (see module docs).
type LockId = (String, String); // (crate, field-or-constructor name)

/// One ordered edge `from → to` in the lock-order graph with the
/// evidence that produced it.
#[derive(Debug, Clone)]
struct LockEdge {
    file: usize,
    tok: usize,
    desc: String,
}

/// Words that look like calls but never are.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "ref", "mut",
    "else", "unsafe", "use", "pub", "impl", "struct", "enum", "trait", "mod", "where", "break",
    "continue", "dyn", "static", "const", "crate", "self", "Self", "super", "true", "false",
    "async", "await", "box", "type",
];

/// Methods that forward their receiver's interesting type (guards,
/// reborrows); receiver typing looks through them.
const TRANSPARENT: &[&str] = &[
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "get_mut",
    "unwrap",
    "expect",
];

const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_OPS: &[&str] = &[
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

struct Graph<'a> {
    files: &'a [FileModel],
    nodes: Vec<Node>,
    /// fn name → node ids (sorted by construction order, which is
    /// (file, item) and therefore deterministic).
    by_name: BTreeMap<String, Vec<usize>>,
    /// Struct field name → type identifiers, merged across files.
    field_types: BTreeMap<String, BTreeSet<String>>,
    edges: Vec<Vec<Edge>>,
}

impl<'a> Graph<'a> {
    fn item(&self, n: usize) -> &crate::scanner::FnItem {
        &self.files[self.nodes[n].file].fns[self.nodes[n].item]
    }

    fn file(&self, n: usize) -> &FileModel {
        &self.files[self.nodes[n].file]
    }

    fn crate_of(&self, n: usize) -> &str {
        self.file(n).crate_name.as_deref().unwrap_or("?")
    }

    /// Human name: `Type::fn` when in an impl, else the bare fn name.
    fn display(&self, n: usize) -> String {
        let it = self.item(n);
        match &it.self_type {
            Some(t) => format!("{t}::{}", it.name),
            None => it.name.clone(),
        }
    }

    /// Context identifiers a path qualifier may match for node `n`:
    /// crate name, external crate name (`qpp_<crate>`), file module,
    /// in-file modules, and the impl self type.
    fn ctx_matches(&self, n: usize, q: &str) -> bool {
        let f = self.file(n);
        let it = self.item(n);
        if let Some(c) = f.crate_name.as_deref() {
            if q == c || q == format!("qpp_{}", c.replace('-', "_")) {
                return true;
            }
        }
        f.file_mods.iter().any(|m| m == q)
            || it.mods.iter().any(|m| m == q)
            || it.self_type.as_deref() == Some(q)
    }

    fn build(files: &'a [FileModel]) -> Graph<'a> {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut field_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (k, tys) in &f.field_types {
                field_types
                    .entry(k.clone())
                    .or_default()
                    .extend(tys.iter().cloned());
            }
            if f.is_test_file {
                continue;
            }
            for (ii, it) in f.fns.iter().enumerate() {
                let Some(body) = &it.body else { continue };
                if f.in_test_region(body.start) {
                    continue;
                }
                by_name
                    .entry(it.name.clone())
                    .or_default()
                    .push(nodes.len());
                nodes.push(Node { file: fi, item: ii });
            }
        }
        let mut g = Graph {
            files,
            nodes,
            by_name,
            field_types,
            edges: Vec::new(),
        };
        let mut edges = Vec::with_capacity(g.nodes.len());
        for n in 0..g.nodes.len() {
            edges.push(g.extract_calls(n));
        }
        g.edges = edges;
        g
    }

    /// Type identifiers for the locals of node `n`, from parameter
    /// ascriptions, `let x: T`, and `let x = <constructor>` forms.
    fn local_types(&self, n: usize) -> BTreeMap<String, BTreeSet<String>> {
        let f = self.file(n);
        let it = self.item(n);
        let toks = &f.lexed.tokens;
        let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

        // Parameters: `name: Type` pairs at paren depth 1.
        let mut k = skip_angles(toks, it.fn_tok + 2, &f.src);
        if txt(k) == Some("(") {
            let mut depth = 0i32;
            while k < toks.len() {
                match txt(k) {
                    Some("(") | Some("[") => depth += 1,
                    Some(")") | Some("]") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(":")
                        if depth == 1
                            && txt(k + 1) != Some(":")
                            && txt(k.wrapping_sub(1)) != Some(":") =>
                    {
                        if let Some(name) =
                            txt(k - 1).filter(|_| toks[k - 1].kind == TokenKind::Ident)
                        {
                            let tys = collect_type_idents(toks, &f.src, k + 1, &[",", ")"]);
                            out.insert(name.to_string(), tys);
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }

        // Lets in the body.
        let Some((open, close)) = it.body_toks else {
            return out;
        };
        let mut j = open + 1;
        while j < close {
            if toks[j].kind == TokenKind::Ident && txt(j) == Some("let") {
                let mut k = j + 1;
                if txt(k) == Some("mut") {
                    k += 1;
                }
                if toks.get(k).map(|t| t.kind) == Some(TokenKind::Ident) {
                    let name = txt(k).unwrap_or_default().to_string();
                    if txt(k + 1) == Some(":") && txt(k + 2) != Some(":") {
                        let tys = collect_type_idents(toks, &f.src, k + 2, &["=", ";"]);
                        out.insert(name, tys);
                    } else if txt(k + 1) == Some("=") {
                        if let Some(tys) = self.init_hints(n, k + 2) {
                            out.insert(name, tys);
                        }
                    }
                }
            }
            j += 1;
        }
        out
    }

    /// Type hints from a `let x = …` initializer starting at token `k`:
    /// `Type::new(..)` / `Type { .. }` → {Type}; `helper(..)` → the
    /// union of return-type idents of workspace fns named `helper`;
    /// `self.field…` → the field's declared type idents.
    fn init_hints(&self, n: usize, k: usize) -> Option<BTreeSet<String>> {
        let f = self.file(n);
        let toks = &f.lexed.tokens;
        let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
        let mut k = k;
        while matches!(txt(k), Some("&") | Some("mut") | Some("*")) {
            k += 1;
        }
        let t = toks.get(k)?;
        if t.kind != TokenKind::Ident {
            return None;
        }
        let head = txt(k)?;
        if head == "self" {
            if txt(k + 1) == Some(".") {
                let fld = txt(k + 2)?;
                if txt(k + 3) == Some("(") {
                    return self.ret_hints(fld);
                }
                return self.field_types.get(fld).cloned();
            }
            return None;
        }
        let first = head.chars().next().unwrap_or('_');
        if first.is_ascii_uppercase() {
            if head == "Some" || head == "Ok" || head == "Err" {
                return None;
            }
            return Some(BTreeSet::from([head.to_string()]));
        }
        if txt(k + 1) == Some("(") {
            return self.ret_hints(head);
        }
        None
    }

    /// Union of return-type identifiers over all workspace fns named
    /// `name`; `None` when nothing is known.
    fn ret_hints(&self, name: &str) -> Option<BTreeSet<String>> {
        let cands = self.by_name.get(name)?;
        let mut h = BTreeSet::new();
        for &c in cands {
            h.extend(self.item(c).ret_types.iter().cloned());
        }
        if h.is_empty() {
            None
        } else {
            Some(h)
        }
    }

    /// Receiver type hints for the method call whose `.` sits at token
    /// `dot`. `None` means the receiver could not be typed (resolution
    /// falls back to same-crate methods); an empty/known set restricts
    /// candidates to matching impl types.
    fn receiver_hints(
        &self,
        n: usize,
        dot: usize,
        locals: &BTreeMap<String, BTreeSet<String>>,
    ) -> Option<BTreeSet<String>> {
        let f = self.file(n);
        let toks = &f.lexed.tokens;
        let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
        let mut k = dot.checked_sub(1)?;
        loop {
            if txt(k) == Some(")") {
                let open = match_paren_back(toks, &f.src, k)?;
                let before = open.checked_sub(1)?;
                if toks[before].kind != TokenKind::Ident {
                    return None;
                }
                let callee = txt(before)?;
                if TRANSPARENT.contains(&callee) && txt(before.wrapping_sub(1)) == Some(".") {
                    k = before.checked_sub(2)?;
                    continue;
                }
                return self.ret_hints(callee);
            }
            if toks.get(k).map(|t| t.kind) == Some(TokenKind::Ident) {
                let r = txt(k)?;
                if r == "self" {
                    return self.item(n).self_type.clone().map(|t| BTreeSet::from([t]));
                }
                if txt(k.wrapping_sub(1)) == Some(".") {
                    return self.field_types.get(r).cloned();
                }
                if let Some(t) = locals.get(r) {
                    return Some(t.clone());
                }
                return self.field_types.get(r).cloned();
            }
            return None;
        }
    }

    /// Extracts and resolves every call site in node `n`'s body.
    fn extract_calls(&self, n: usize) -> Vec<Edge> {
        let f = self.file(n);
        let it = self.item(n);
        let Some((open, close)) = it.body_toks else {
            return Vec::new();
        };
        let toks = &f.lexed.tokens;
        let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
        let locals = self.local_types(n);
        let mut out: Vec<Edge> = Vec::new();
        for j in open + 1..close {
            if toks[j].kind != TokenKind::Ident {
                continue;
            }
            let name = &f.src[toks[j].start..toks[j].end];
            if KEYWORDS.contains(&name) {
                continue;
            }
            // `name(`, or `name::<T>(` (turbofish).
            let called = txt(j + 1) == Some("(")
                || (txt(j + 1) == Some(":")
                    && txt(j + 2) == Some(":")
                    && txt(j + 3) == Some("<")
                    && txt(skip_angles(toks, j + 3, &f.src)) == Some("("));
            if !called || txt(j.wrapping_sub(1)) == Some("fn") {
                continue;
            }
            let prev = txt(j.wrapping_sub(1));
            let targets: Vec<usize> = if prev == Some(".") {
                self.resolve_method(n, j, name, &locals)
            } else if prev == Some(":") && txt(j.wrapping_sub(2)) == Some(":") {
                self.resolve_path(n, j, name)
            } else {
                self.resolve_bare(n, name)
            };
            for callee in targets {
                if callee != n {
                    out.push(Edge { callee, tok: j });
                }
            }
        }
        out
    }

    /// `a::b::f(..)`: every qualifier must match the candidate's
    /// context; no name-only fallback, so `Vec::new` stays external.
    fn resolve_path(&self, n: usize, j: usize, name: &str) -> Vec<usize> {
        let f = self.file(n);
        let toks = &f.lexed.tokens;
        let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
        let mut quals: Vec<String> = Vec::new();
        let mut k = j;
        while k >= 3
            && txt(k - 1) == Some(":")
            && txt(k - 2) == Some(":")
            && toks[k - 3].kind == TokenKind::Ident
        {
            quals.push(txt(k - 3).unwrap_or_default().to_string());
            k -= 3;
        }
        if quals.is_empty() {
            return Vec::new();
        }
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        cands
            .iter()
            .copied()
            .filter(|&c| {
                quals.iter().all(|q| match q.as_str() {
                    "crate" | "self" | "super" => self.crate_of(c) == self.crate_of(n),
                    "Self" => {
                        self.item(c).self_type.is_some()
                            && self.item(c).self_type == self.item(n).self_type
                    }
                    q => self.ctx_matches(c, q),
                })
            })
            .collect()
    }

    /// `f(..)`: same file, then same crate, then workspace-wide
    /// (`use`-imported helpers).
    fn resolve_bare(&self, n: usize, name: &str) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| !self.item(c).has_self)
            .collect();
        let same_file: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].file == self.nodes[n].file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| self.crate_of(c) == self.crate_of(n))
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        free
    }

    /// `recv.m(..)`: candidates whose impl type matches the receiver's
    /// type hints; an untypable receiver falls back to same-crate
    /// methods of that name (documented over-approximation).
    fn resolve_method(
        &self,
        n: usize,
        j: usize,
        name: &str,
        locals: &BTreeMap<String, BTreeSet<String>>,
    ) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| self.item(c).has_self)
            .collect();
        if methods.is_empty() {
            return Vec::new();
        }
        match self.receiver_hints(n, j - 1, locals) {
            Some(hints) => methods
                .into_iter()
                .filter(|&c| {
                    self.item(c)
                        .self_type
                        .as_deref()
                        .is_some_and(|t| hints.contains(t))
                })
                .collect(),
            None => methods
                .into_iter()
                .filter(|&c| self.crate_of(c) == self.crate_of(n))
                .collect(),
        }
    }
}

/// Collects type identifiers from token `k` until any of `stops` at
/// bracket depth 0 (skipping keywords and lifetime marks).
fn collect_type_idents(toks: &[Token], src: &str, k: usize, stops: &[&str]) -> BTreeSet<String> {
    let txt = |k: usize| toks.get(k).map(|t| &src[t.start..t.end]);
    let mut out = BTreeSet::new();
    let mut depth = 0i32;
    let mut j = k;
    while j < toks.len() {
        let s = match txt(j) {
            Some(s) => s,
            None => break,
        };
        match s {
            "<" | "(" | "[" => depth += 1,
            ">" if txt(j.wrapping_sub(1)) != Some("-") => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" | "{" => break,
            s if depth == 0 && stops.contains(&s) => break,
            s if toks[j].kind == TokenKind::Ident
                && !matches!(
                    s,
                    "pub" | "crate" | "dyn" | "mut" | "const" | "in" | "impl" | "ref"
                ) =>
            {
                out.insert(s.to_string());
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Backward scan from a `)` at `close` to its matching `(`.
fn match_paren_back(toks: &[Token], src: &str, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close;
    loop {
        let s = &src[toks[k].start..toks[k].end];
        if toks[k].kind == TokenKind::Punct {
            match s {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// Runs all workspace-level passes over the already-built file models.
/// Returns the extra diagnostics plus the graph statistics.
pub fn check_workspace(files: &[FileModel]) -> (Vec<Diagnostic>, GraphStats) {
    let g = Graph::build(files);
    let mut stats = GraphStats {
        files: files.len(),
        functions: g.nodes.len(),
        call_edges: g.edges.iter().map(Vec::len).sum(),
        ..GraphStats::default()
    };
    let mut out = Vec::new();
    propagate_hot(&g, &mut out, &mut stats);
    lock_order(&g, &mut out, &mut stats);
    atomic_audit(files, &mut out, &mut stats);
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    (out, stats)
}

/// Emits a workspace-level diagnostic at token `tok` of `files[fi]`,
/// honoring per-line allow directives.
fn emit_at(
    files: &[FileModel],
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    fi: usize,
    tok: usize,
    message: String,
    provenance: Vec<String>,
) {
    let f = &files[fi];
    let t = &f.lexed.tokens[tok];
    if f.is_allowed(t.line, rule) {
        return;
    }
    out.push(Diagnostic {
        rule,
        path: f.path.clone(),
        line: t.line,
        col: t.col,
        message,
        snippet: f.line_text(t.line).trim_start().to_string(),
        provenance,
    });
}

// ---------------------------------------------------------------------
// Pass 1: hot-path propagation.
// ---------------------------------------------------------------------

/// BFS from marked roots; for every function that is hot only by
/// reachability, re-run the hot-path family of checks over its body
/// with the call chain as provenance.
fn propagate_hot(g: &Graph<'_>, out: &mut Vec<Diagnostic>, stats: &mut GraphStats) {
    let n = g.nodes.len();
    // pred[v] = (caller, call-site token) that first reached v.
    let mut pred: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut hot = vec![false; n];
    let mut queue = VecDeque::new();
    for (v, h) in hot.iter_mut().enumerate() {
        if g.item(v).marked_hot {
            *h = true;
            stats.hot_roots += 1;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        for e in &g.edges[v] {
            let c = e.callee;
            if hot[c] || g.item(c).marked_cold {
                continue;
            }
            hot[c] = true;
            pred[c] = Some((v, e.tok));
            queue.push_back(c);
        }
    }

    for (v, &is_hot) in hot.iter().enumerate() {
        if !is_hot || g.item(v).marked_hot {
            continue; // roots are covered by the per-file rule
        }
        stats.hot_propagated += 1;
        let chain = provenance_chain(g, &pred, v);
        let f = g.file(v);
        let fi = g.nodes[v].file;
        let Some((open, close)) = g.item(v).body_toks else {
            continue;
        };
        let crate_name = f.crate_name.as_deref().unwrap_or("");
        for i in open + 1..close {
            let t = &f.lexed.tokens[i];
            if t.kind != TokenKind::Ident || f.in_test_region(t.start) {
                continue;
            }
            // no-alloc-hot-path, now cross-function.
            if let Some((name, why)) = alloc_finding(f, i) {
                let msg = format!(
                    "`{name}` {why} in `{}`, reachable from a `qpp-lint: hot-path` \
                     root (chain in provenance); reuse a caller-provided buffer or \
                     mark a deliberate boundary with `// qpp-lint: cold-path`",
                    g.display(v)
                );
                emit_at(g.files, out, "no-alloc-hot-path", fi, i, msg, chain.clone());
                continue;
            }
            let name = f.text(t);
            let txt = |k: usize| f.lexed.tokens.get(k).map(|t| &f.src[t.start..t.end]);
            // no-wallclock-in-model: crates already covered by the
            // per-file rule are skipped (no duplicates); obs is the
            // sanctioned clock layer, bench never serves.
            if (name == "Instant" || name == "SystemTime")
                && !matches!(
                    crate_name,
                    "core" | "ml" | "linalg" | "adapt" | "obs" | "bench"
                )
            {
                let msg = format!(
                    "`{name}` in `{}`, reachable from a `qpp-lint: hot-path` root — \
                     route timing through qpp-obs (the sanctioned clock layer) or \
                     take timestamps as parameters",
                    g.display(v)
                );
                emit_at(
                    g.files,
                    out,
                    "no-wallclock-in-model",
                    fi,
                    i,
                    msg,
                    chain.clone(),
                );
            }
            // no-unwrap-lib: the per-file rule already covers library
            // code; extend only to contexts it exempts (bins, bench).
            if (f.is_bin_file || crate_name == "bench")
                && ((matches!(name, "unwrap" | "expect")
                    && txt(i.wrapping_sub(1)) == Some(".")
                    && txt(i + 1) == Some("("))
                    || (name == "panic" && txt(i + 1) == Some("!")))
            {
                let msg = format!(
                    "`{name}` in `{}`, reachable from a `qpp-lint: hot-path` root — \
                     a panic here tears down the serving path; return a typed error",
                    g.display(v)
                );
                emit_at(g.files, out, "no-unwrap-lib", fi, i, msg, chain.clone());
            }
        }
    }
}

/// Root-to-leaf chain of `file:line: caller -> callee` steps for a
/// propagated-hot node.
fn provenance_chain(g: &Graph<'_>, pred: &[Option<(usize, usize)>], v: usize) -> Vec<String> {
    let mut steps = Vec::new();
    let mut cur = v;
    while let Some((caller, tok)) = pred[cur] {
        let f = g.file(caller);
        let t = &f.lexed.tokens[tok];
        let root = if g.item(caller).marked_hot {
            " (hot-path root)"
        } else {
            ""
        };
        steps.push(format!(
            "{}:{}: `{}`{root} calls `{}`",
            f.path,
            t.line,
            g.display(caller),
            g.display(cur),
        ));
        cur = caller;
    }
    steps.reverse();
    steps
}

// ---------------------------------------------------------------------
// Pass 2: lock-order analysis.
// ---------------------------------------------------------------------

/// Per-function lock behavior extracted from the body walk.
#[derive(Debug, Clone, Default)]
struct LockFacts {
    /// Every lock this function acquires directly.
    acquires: BTreeSet<LockId>,
    /// Direct edges: (held, taken, site token).
    edges: Vec<(LockId, LockId, usize)>,
    /// Workspace calls made while holding locks: (callee, held, tok).
    held_calls: Vec<(usize, Vec<LockId>, usize)>,
}

fn lock_method_kind(name: &str) -> Option<&'static str> {
    match name {
        "lock" => Some("Mutex"),
        "read" | "write" => Some("RwLock"),
        "wait" | "wait_while" | "wait_until" | "wait_for" | "wait_timeout" => Some("Condvar"),
        _ => None,
    }
}

/// Resolves the receiver of `.lock()`-style call at `dot` to a lock
/// name plus its type hints.
fn lock_receiver(
    g: &Graph<'_>,
    n: usize,
    dot: usize,
    locals: &BTreeMap<String, BTreeSet<String>>,
) -> Option<(String, BTreeSet<String>)> {
    let f = g.file(n);
    let toks = &f.lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
    let k = dot.checked_sub(1)?;
    if txt(k) == Some(")") {
        // `self.shard_of(key).read()` — lock identity is the accessor.
        let open = match_paren_back(toks, &f.src, k)?;
        let before = open.checked_sub(1)?;
        if toks[before].kind != TokenKind::Ident {
            return None;
        }
        let name = txt(before)?.to_string();
        let hints = g.ret_hints(&name)?;
        return Some((name, hints));
    }
    if toks.get(k).map(|t| t.kind) == Some(TokenKind::Ident) {
        let r = txt(k)?.to_string();
        if r == "self" {
            return None;
        }
        let hints = if txt(k.wrapping_sub(1)) == Some(".") {
            g.field_types.get(&r).cloned()
        } else {
            locals
                .get(&r)
                .cloned()
                .or_else(|| g.field_types.get(&r).cloned())
        }?;
        return Some((r, hints));
    }
    None
}

/// Walks one function body tracking guard lifetimes, producing its
/// [`LockFacts`].
fn lock_facts(g: &Graph<'_>, n: usize) -> LockFacts {
    let f = g.file(n);
    let it = g.item(n);
    let mut facts = LockFacts::default();
    let Some((open, close)) = it.body_toks else {
        return facts;
    };
    let toks = &f.lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
    let locals = g.local_types(n);
    let call_edges: BTreeMap<usize, Vec<usize>> = {
        let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in &g.edges[n] {
            m.entry(e.tok).or_default().push(e.callee);
        }
        m
    };

    struct Guard {
        lock: LockId,
        var: Option<String>,
        depth: i32,
    }
    let mut active: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;

    for j in open + 1..close {
        let t = &toks[j];
        let s = &f.src[t.start..t.end];
        if t.kind == TokenKind::Punct {
            match s {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    active.retain(|gd| gd.depth <= depth);
                }
                ";" => {
                    // End of statement: temporaries bound at (or above)
                    // this depth die here.
                    active.retain(|gd| gd.var.is_some() || depth > gd.depth);
                    pending_let = None;
                }
                _ => {}
            }
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        if s == "let" {
            let mut k = j + 1;
            if txt(k) == Some("mut") {
                k += 1;
            }
            if toks.get(k).map(|t| t.kind) == Some(TokenKind::Ident) {
                pending_let = txt(k).map(str::to_string);
            }
            continue;
        }
        if s == "drop" && txt(j + 1) == Some("(") && txt(j + 3) == Some(")") {
            if let Some(v) = txt(j + 2) {
                active.retain(|gd| gd.var.as_deref() != Some(v));
            }
            continue;
        }
        // Acquisition?
        if let Some(required) = lock_method_kind(s) {
            let is_call = txt(j.wrapping_sub(1)) == Some(".") && txt(j + 1) == Some("(");
            if is_call {
                if let Some((name, hints)) = lock_receiver(g, n, j - 1, &locals) {
                    if hints.contains(required) {
                        let lock: LockId = (g.crate_of(n).to_string(), name);
                        for gd in &active {
                            if gd.lock != lock {
                                facts.edges.push((gd.lock.clone(), lock.clone(), j));
                            }
                        }
                        facts.acquires.insert(lock.clone());
                        // Condvar waits release and re-take their mutex;
                        // they are order edges but never held guards.
                        if required != "Condvar" {
                            active.push(Guard {
                                lock,
                                var: pending_let.clone(),
                                depth,
                            });
                            pending_let = None;
                        }
                        continue;
                    }
                }
            }
        }
        // Workspace call while holding locks?
        if !active.is_empty() {
            if let Some(callees) = call_edges.get(&j) {
                let held: Vec<LockId> = active.iter().map(|gd| gd.lock.clone()).collect();
                for &c in callees {
                    facts.held_calls.push((c, held.clone(), j));
                }
            }
        }
    }
    facts
}

/// Builds the composed lock-order graph and reports every cycle with a
/// deterministic witness path.
fn lock_order(g: &Graph<'_>, out: &mut Vec<Diagnostic>, stats: &mut GraphStats) {
    let n = g.nodes.len();
    let facts: Vec<LockFacts> = (0..n).map(|v| lock_facts(g, v)).collect();
    stats.lock_sites = facts.iter().map(|f| f.acquires.len()).sum();

    // Transitive acquisition sets through the call graph (fixpoint —
    // the graph may have cycles).
    let mut star: Vec<BTreeSet<LockId>> = facts.iter().map(|f| f.acquires.clone()).collect();
    loop {
        let mut changed = false;
        for v in 0..n {
            let mut add: Vec<LockId> = Vec::new();
            for e in &g.edges[v] {
                for l in &star[e.callee] {
                    if !star[v].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                star[v].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // Edge map with first-witness-wins determinism: nodes ascending,
    // sites in token order.
    let mut edges: BTreeMap<LockId, BTreeMap<LockId, LockEdge>> = BTreeMap::new();
    for (v, fact) in facts.iter().enumerate() {
        let fi = g.nodes[v].file;
        for (held, taken, tok) in &fact.edges {
            let line = g.file(v).lexed.tokens[*tok].line;
            edges
                .entry(held.clone())
                .or_default()
                .entry(taken.clone())
                .or_insert(LockEdge {
                    file: fi,
                    tok: *tok,
                    desc: format!(
                        "{}:{}: `{}` acquires `{}` while holding `{}`",
                        g.file(v).path,
                        line,
                        g.display(v),
                        fmt_lock(taken),
                        fmt_lock(held),
                    ),
                });
        }
        for (callee, held, tok) in &facts[v].held_calls {
            let line = g.file(v).lexed.tokens[*tok].line;
            for h in held {
                for l in &star[*callee] {
                    if l == h {
                        continue; // same-name locks: no instance identity
                    }
                    edges
                        .entry(h.clone())
                        .or_default()
                        .entry(l.clone())
                        .or_insert(LockEdge {
                            file: fi,
                            tok: *tok,
                            desc: format!(
                                "{}:{}: `{}` calls `{}` while holding `{}`; `{}` \
                             (transitively) acquires `{}`",
                                g.file(v).path,
                                line,
                                g.display(v),
                                g.display(*callee),
                                fmt_lock(h),
                                g.display(*callee),
                                fmt_lock(l),
                            ),
                        });
                }
            }
        }
    }
    stats.lock_edges = edges.values().map(BTreeMap::len).sum();

    // Cycle detection: BFS from each lock in sorted order; a cycle is
    // reported once, anchored at its smallest lock, with the shortest
    // (and lexicographically first) witness path.
    let locks: Vec<LockId> = edges.keys().cloned().collect();
    for start in &locks {
        if let Some(path) = shortest_cycle(&edges, start) {
            if path.iter().min() < Some(start) {
                continue; // reported from the smaller anchor
            }
            let names: Vec<String> = path.iter().map(fmt_lock).collect();
            let provenance: Vec<String> = path
                .iter()
                .zip(path.iter().cycle().skip(1))
                .map(|(a, b)| edges[a][b].desc.clone())
                .collect();
            let first = &edges[&path[0]][&path[1]];
            let msg = format!(
                "potential deadlock: lock-order cycle {} -> {}; every edge is \
                 listed in the provenance — pick one global order and break the \
                 cycle",
                names.join(" -> "),
                names[0],
            );
            emit_at(
                g.files,
                out,
                "lock-order",
                first.file,
                first.tok,
                msg,
                provenance,
            );
        }
    }
}

fn fmt_lock(l: &LockId) -> String {
    format!("{}::{}", l.0, l.1)
}

/// Shortest path `start → … → start` (length ≥ 2) in the lock graph,
/// if any; BFS over sorted neighbors makes it deterministic.
fn shortest_cycle(
    edges: &BTreeMap<LockId, BTreeMap<LockId, LockEdge>>,
    start: &LockId,
) -> Option<Vec<LockId>> {
    let mut pred: BTreeMap<LockId, LockId> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(start.clone());
    while let Some(u) = queue.pop_front() {
        if let Some(next) = edges.get(&u) {
            for v in next.keys() {
                if v == start {
                    // Reconstruct start → … → u; the pred chain already
                    // terminates at `start` (BFS origin, never given a
                    // predecessor), so reversing it yields the cycle
                    // without the closing repeat.
                    let mut path = vec![u.clone()];
                    let mut cur = u.clone();
                    while let Some(p) = pred.get(&cur) {
                        path.push(p.clone());
                        cur = p.clone();
                    }
                    path.reverse();
                    return Some(path);
                }
                if *v != *start && !pred.contains_key(v) && u != *v {
                    pred.insert(v.clone(), u.clone());
                    queue.push_back(v.clone());
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Pass 3: atomic-ordering audit.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct AtomicSite {
    file: usize,
    tok: usize,
    variant: String,
    op: Option<String>,
    field: Option<String>,
    justified: bool,
}

fn atomic_audit(files: &[FileModel], out: &mut Vec<Diagnostic>, stats: &mut GraphStats) {
    let mut sites: Vec<AtomicSite> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.is_test_file {
            continue;
        }
        let toks = &f.lexed.tokens;
        let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident || txt(i) != Some("Ordering") {
                continue;
            }
            if txt(i + 1) != Some(":") || txt(i + 2) != Some(":") {
                continue;
            }
            let Some(variant) = txt(i + 3).filter(|v| ATOMIC_VARIANTS.contains(v)) else {
                continue;
            };
            if f.in_test_region(tok.start) {
                continue;
            }
            let (op, field) = atomic_op_context(f, i);
            let justified = has_ordering_comment(f, i);
            sites.push(AtomicSite {
                file: fi,
                tok: i + 3,
                variant: variant.to_string(),
                op,
                field,
                justified,
            });
        }
    }

    stats.atomic_sites = sites.len();
    stats.atomic_justified = sites.iter().filter(|s| s.justified).count();

    // (a) Unjustified sites.
    for s in &sites {
        if s.justified {
            continue;
        }
        let what = match (&s.op, &s.field) {
            (Some(op), Some(fl)) => format!("`{fl}.{op}(Ordering::{})`", s.variant),
            _ => format!("`Ordering::{}`", s.variant),
        };
        emit_at(
            files,
            out,
            "atomic-ordering-audit",
            s.file,
            s.tok,
            format!(
                "{what} has no `// ordering:` justification — state in one line \
                 why this ordering is sufficient (same line, in-statement, or the \
                 line above)"
            ),
            Vec::new(),
        );
    }

    // (b) Relaxed stores paired (by field name) with Acquire loads.
    let mut acquire_loads: BTreeMap<&str, (usize, u32)> = BTreeMap::new();
    for s in &sites {
        if s.variant == "Acquire" || s.variant == "AcqRel" {
            if let (Some(op), Some(fl)) = (&s.op, &s.field) {
                if op == "load" {
                    let line = files[s.file].lexed.tokens[s.tok].line;
                    acquire_loads.entry(fl).or_insert((s.file, line));
                }
            }
        }
    }
    for s in &sites {
        if s.variant != "Relaxed" {
            continue;
        }
        let (Some(op), Some(fl)) = (&s.op, &s.field) else {
            continue;
        };
        if op != "store" {
            continue;
        }
        if let Some((lf, ll)) = acquire_loads.get(fl.as_str()) {
            emit_at(
                files,
                out,
                "atomic-ordering-audit",
                s.file,
                s.tok,
                format!(
                    "Relaxed store to `{fl}` but `{}:{ll}` loads it with Acquire — \
                     the Acquire synchronizes with nothing; store with Release or \
                     downgrade the load",
                    files[*lf].path
                ),
                vec![format!(
                    "{}:{}: Acquire load of `{fl}`",
                    files[*lf].path, ll
                )],
            );
        }
    }
}

/// Finds the atomic method call and receiver field enclosing the
/// `Ordering` path at token `i` (`self.queued.store(v, Ordering::…)`
/// → (`store`, `queued`)).
fn atomic_op_context(f: &FileModel, i: usize) -> (Option<String>, Option<String>) {
    let toks = &f.lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &f.src[t.start..t.end]);
    // Walk back to the `(` that opens the enclosing call.
    let mut depth = 0i32;
    let mut k = i;
    let open = loop {
        k = match k.checked_sub(1) {
            Some(k) => k,
            None => return (None, None),
        };
        match txt(k) {
            Some(")") => depth += 1,
            Some("(") => {
                if depth == 0 {
                    break k;
                }
                depth -= 1;
            }
            Some(";") | Some("{") if depth == 0 => return (None, None),
            _ => {}
        }
    };
    let m = match open.checked_sub(1) {
        Some(m) if toks[m].kind == TokenKind::Ident => m,
        _ => return (None, None),
    };
    let op = txt(m)
        .filter(|o| ATOMIC_OPS.contains(o))
        .map(str::to_string);
    // `self.queued.store(..)` / `QUEUED.store(..)`: the ident before
    // the method's `.` names the atomic.
    let field = if txt(m.wrapping_sub(1)) == Some(".") {
        match m.checked_sub(2) {
            Some(p) if toks[p].kind == TokenKind::Ident && txt(p) != Some("self") => {
                txt(p).map(str::to_string)
            }
            _ => None,
        }
    } else {
        None
    };
    (op, field)
}

/// True when an `// ordering:` comment covers the statement containing
/// token `i`: same line as the variant, any line within the statement,
/// or anywhere in the contiguous comment block directly above the
/// statement's first line (multi-line justifications are one block).
fn has_ordering_comment(f: &FileModel, i: usize) -> bool {
    let toks = &f.lexed.tokens;
    let site_line = toks[i + 3].line;
    // Statement start: first token after the previous `;`/`{`/`}`.
    let mut k = i;
    let stmt_line = loop {
        match k.checked_sub(1) {
            None => break toks[0].line,
            Some(p) => {
                let s = &f.src[toks[p].start..toks[p].end];
                if toks[p].kind == TokenKind::Punct && matches!(s, ";" | "{" | "}") {
                    break toks[k].line;
                }
                k = p;
            }
        }
    };
    let mut comment_lines: BTreeMap<u32, bool> = BTreeMap::new();
    for c in &f.lexed.comments {
        let e = comment_lines.entry(c.line).or_insert(false);
        *e |= c.text.contains("ordering:");
    }
    // Within the statement (incl. the variant's own line).
    if (stmt_line..=site_line).any(|l| comment_lines.get(&l) == Some(&true)) {
        return true;
    }
    // The contiguous comment block ending on the line above it.
    let mut line = stmt_line.saturating_sub(1);
    while line > 0 {
        match comment_lines.get(&line) {
            Some(true) => return true,
            Some(false) => line -= 1,
            None => break,
        }
    }
    false
}
