//! Lightweight item scanner: turns a lexed file into the structural
//! facts the rules match against.
//!
//! Nothing here is a full parser. The scanner extracts exactly four
//! things, all computed from the token stream (so strings and comments
//! can never confuse it):
//!
//! * **test regions** — byte ranges of `#[cfg(test)]` items and
//!   `#[test]` functions, which most rules exempt;
//! * **hot-path functions** — body ranges of `fn`s marked with a
//!   `// qpp-lint: hot-path` comment;
//! * **allow directives** — per-line `// qpp-lint: allow(rule, ...)`
//!   opt-outs (plus the legacy `// allow-vecvec` spelling);
//! * **map-typed identifiers** — names declared with a `HashMap` /
//!   `HashSet` type, used by the iteration-order rule;
//! * **function items** — every `fn` with its enclosing impl type and
//!   inline-module path, body span, receiver/return facts, and
//!   `hot-path` / `cold-path` markers, feeding the workspace call
//!   graph (`graph` module);
//! * **struct field types** — `field: Type` pairs from struct bodies,
//!   used to type method receivers and identify lock/condvar fields.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::path::Path;

/// One `fn` item, as the call-graph layer sees it.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (`r#`-prefixed raw identifiers keep the prefix).
    pub name: String,
    /// Enclosing `impl` self type (`Foo` for `impl Foo`, the type after
    /// `for` in trait impls, the trait name inside `trait` bodies).
    pub self_type: Option<String>,
    /// Inline-module path from the file root (`["tests"]` inside
    /// `mod tests { .. }`), excluding the file's own module name.
    pub mods: Vec<String>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token indices of the body's `{` and matching `}` (None for
    /// bodyless trait-method declarations).
    pub body_toks: Option<(usize, usize)>,
    /// Byte range of the body including braces.
    pub body: Option<Range<usize>>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Marked `// qpp-lint: hot-path`.
    pub marked_hot: bool,
    /// Marked `// qpp-lint: cold-path` (stops hot propagation).
    pub marked_cold: bool,
    /// Identifiers appearing in the return type (for guard-returning
    /// helpers: a fn returning a `RwLock`/`Mutex` reference names a
    /// lock the caller acquires through it).
    pub ret_types: BTreeSet<String>,
}

/// Everything the rules need to know about one source file.
pub struct FileModel {
    /// Path as given on the command line (kept verbatim in output).
    pub path: String,
    /// Full source text.
    pub src: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Byte offset where each 1-based line starts.
    pub line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` items and `#[test]` fns.
    pub test_regions: Vec<Range<usize>>,
    /// Body byte ranges of functions marked `// qpp-lint: hot-path`.
    pub hot_fns: Vec<Range<usize>>,
    /// `(line, rule)` pairs from allow directives; rule `"*"` means all.
    pub allows: Vec<(u32, String)>,
    /// Identifiers declared with a hash-map/set type in this file.
    pub map_idents: BTreeSet<String>,
    /// Crate this file belongs to (`core` for `crates/core/src/...`),
    /// taken from the component after the **last** `crates` directory
    /// so fixture trees can replicate real layouts.
    pub crate_name: Option<String>,
    /// True for files under `tests/`, `benches/` or `examples/`.
    pub is_test_file: bool,
    /// True for binary targets (`src/bin/...` or `main.rs`).
    pub is_bin_file: bool,
    /// Module path of the file itself within its crate (`["vector"]`
    /// for `crates/linalg/src/vector.rs`, empty for `lib.rs`).
    pub file_mods: Vec<String>,
    /// Every `fn` item in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Struct-field declarations: field name → type identifiers seen in
    /// its declared type (`state: Mutex<ControlState>` yields
    /// `state → {Mutex, ControlState}`).
    pub field_types: BTreeMap<String, BTreeSet<String>>,
}

impl FileModel {
    /// Lexes and scans one file.
    pub fn build(path: &str, src: String) -> FileModel {
        let lexed = lex(&src);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let (crate_name, is_test_file, is_bin_file) = classify(path);
        let test_regions = find_test_regions(&lexed.tokens, &src);
        let hot_fns = find_marked_fn_bodies(&lexed, &src, "hot-path");
        let cold_fns = find_marked_fn_bodies(&lexed, &src, "cold-path");
        let allows = find_allows(&lexed.comments, &line_starts, &src);
        let map_idents = find_map_idents(&lexed.tokens, &src);
        let file_mods = file_mods(path);
        let (fns, field_types) = scan_items(&lexed, &src, &hot_fns, &cold_fns);
        FileModel {
            path: path.to_string(),
            src,
            lexed,
            line_starts,
            test_regions,
            hot_fns,
            allows,
            map_idents,
            crate_name,
            is_test_file,
            is_bin_file,
            file_mods,
            fns,
            field_types,
        }
    }

    /// Token text.
    pub fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    /// The full source line `line` (1-based), without trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let i = (line as usize).saturating_sub(1);
        let start = self.line_starts.get(i).copied().unwrap_or(0);
        let end = self
            .line_starts
            .get(i + 1)
            .map(|e| e.saturating_sub(1))
            .unwrap_or(self.src.len());
        self.src[start..end.max(start)].trim_end()
    }

    /// True when byte `offset` falls inside any test region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&offset))
    }

    /// True when byte `offset` falls inside a hot-path function body.
    pub fn in_hot_fn(&self, offset: usize) -> bool {
        self.hot_fns.iter().any(|r| r.contains(&offset))
    }

    /// True when `rule` is allowed on `line` by a directive comment
    /// (same line, or a directive alone on the previous line).
    pub fn is_allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| *l == line && (r == rule || r == "*"))
    }
}

/// Splits `path` into (crate name, is-test-file, is-bin-file), looking
/// at the components after the last `crates` directory.
fn classify(path: &str) -> (Option<String>, bool, bool) {
    let comps: Vec<&str> = Path::new(path)
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let (crate_name, rest): (Option<String>, &[&str]) =
        match comps.iter().rposition(|c| *c == "crates") {
            Some(i) => (
                comps.get(i + 1).map(|s| s.to_string()),
                comps.get(i + 2..).unwrap_or(&[]),
            ),
            None => (None, &comps[..]),
        };
    let is_test_file = rest
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
    let is_bin_file =
        rest.contains(&"bin") || rest.last().map(|c| *c == "main.rs").unwrap_or(false);
    (crate_name, is_test_file, is_bin_file)
}

/// Token index of the `}` matching the `{` at token index `open`.
fn match_brace(tokens: &[Token], open: usize, src: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in tokens[open..].iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match &src[t.start..t.end] {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(open + off);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Finds `#[cfg(test)]` / `#[test]` attribute targets and returns the
/// byte range of each target item (attribute through closing brace).
fn find_test_regions(tokens: &[Token], src: &str) -> Vec<Range<usize>> {
    let txt = |k: usize| tokens.get(k).map(|t| &src[t.start..t.end]);
    let mut regions: Vec<Range<usize>> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let after_attr = match match_test_attribute(tokens, i, src) {
            Some(k) => k,
            None => {
                i += 1;
                continue;
            }
        };
        // Find the item body: first `{` before a `;` at bracket depth 0,
        // skipping any stacked attributes.
        let mut k = after_attr;
        let mut depth = 0i32;
        let mut body: Option<Range<usize>> = None;
        while k < tokens.len() {
            match txt(k) {
                Some("#") if txt(k + 1) == Some("[") && depth == 0 => {
                    // Skip a stacked `#[...]` attribute group.
                    let mut d = 0i32;
                    k += 1;
                    while k < tokens.len() {
                        match txt(k) {
                            Some("[") => d += 1,
                            Some("]") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some(";") if depth == 0 => break, // braceless item
                Some("{") if depth == 0 => {
                    if let Some(close) = match_brace(tokens, k, src) {
                        body = Some(tokens[i].start..tokens[close].end);
                    }
                    break;
                }
                None => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(r) = body {
            i = k; // resume after the body opener; nested attrs are inside
            regions.push(r);
        }
        i += 1;
    }
    regions
}

/// If the attribute starting at token `i` is `#[test]` or a `#[cfg(...)]`
/// whose arguments mention `test`, returns the index one past its `]`.
fn match_test_attribute(tokens: &[Token], i: usize, src: &str) -> Option<usize> {
    let txt = |k: usize| tokens.get(k).map(|t| &src[t.start..t.end]);
    if txt(i)? != "#" || txt(i + 1)? != "[" {
        return None;
    }
    match txt(i + 2)? {
        "test" if txt(i + 3)? == "]" => Some(i + 4),
        "cfg" if txt(i + 3)? == "(" => {
            let mut depth = 1usize;
            let mut k = i + 4;
            let mut saw_test = false;
            while k < tokens.len() && depth > 0 {
                match txt(k)? {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" => saw_test = true,
                    _ => {}
                }
                k += 1;
            }
            if saw_test && txt(k) == Some("]") {
                Some(k + 1)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Body ranges of `fn`s preceded by a `qpp-lint: <word>` marker comment
/// (`hot-path` roots the allocation rule; `cold-path` documents a
/// reviewed off-steady-state helper and stops hot propagation).
fn find_marked_fn_bodies(lexed: &Lexed, src: &str, word: &str) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        if !is_marker(&c.text, word) {
            continue;
        }
        // First `fn` token after the marker (attributes and doc comments
        // may sit between the marker and the fn).
        let fn_idx = lexed.tokens.iter().position(|t| {
            t.start >= c.end && t.kind == TokenKind::Ident && &src[t.start..t.end] == "fn"
        });
        let fn_idx = match fn_idx {
            Some(i) => i,
            None => continue,
        };
        let open = lexed.tokens[fn_idx..]
            .iter()
            .position(|t| t.kind == TokenKind::Punct && &src[t.start..t.end] == "{")
            .map(|off| fn_idx + off);
        if let Some(open) = open {
            if let Some(close) = match_brace(&lexed.tokens, open, src) {
                out.push(lexed.tokens[open].start..lexed.tokens[close].end);
            }
        }
    }
    out
}

/// True when `text` is a bare `qpp-lint:` marker directive for `word`
/// (e.g. `qpp-lint: hot-path`). The directive must *start* the comment
/// — prose that merely mentions `qpp-lint: hot-path` in backticks does
/// not mark anything.
fn is_marker(text: &str, word: &str) -> bool {
    match text.trim_start().strip_prefix("qpp-lint:") {
        Some(rest) => {
            let rest = rest.trim();
            // Allow an explanation after the marker word, separated by
            // whitespace (`// qpp-lint: cold-path — delegates …`).
            rest == word
                || rest
                    .strip_prefix(word)
                    .is_some_and(|tail| tail.starts_with(char::is_whitespace))
        }
        None => false,
    }
}

/// Parses allow directives out of the comment stream. A directive on a
/// code line covers that line; a directive alone on its line covers the
/// next line.
fn find_allows(comments: &[Comment], line_starts: &[usize], src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for c in comments {
        let mut rules: Vec<String> = Vec::new();
        if let Some(rest) = c.text.trim_start().strip_prefix("qpp-lint:") {
            let rest = rest.trim();
            if let Some(args) = rest.strip_prefix("allow") {
                if let Some(inner) = args
                    .trim()
                    .strip_prefix('(')
                    .and_then(|a| a.split(')').next())
                {
                    for rule in inner.split(',') {
                        let rule = rule.trim();
                        if !rule.is_empty() {
                            rules.push(rule.to_string());
                        }
                    }
                }
            }
        }
        // Legacy spelling kept working so existing fixtures need no churn.
        if c.text.contains("allow-vecvec") {
            rules.push("no-vecvec".to_string());
        }
        if rules.is_empty() {
            continue;
        }
        let line_start = line_starts.get(c.line as usize - 1).copied().unwrap_or(0);
        let alone = src[line_start..c.start].trim().is_empty();
        for rule in rules {
            out.push((c.line, rule.clone()));
            if alone {
                out.push((c.line + 1, rule));
            }
        }
    }
    out
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type:
/// `name: ...HashMap<...`, or `let [mut] name = HashMap::new()`.
fn find_map_idents(tokens: &[Token], src: &str) -> BTreeSet<String> {
    let txt = |k: usize| tokens.get(k).map(|t| &src[t.start..t.end]);
    let mut out = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = &src[t.start..t.end];
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // `name: RwLock<HashMap<K, V>>` — walk backwards over the type
        // expression to the introducing `:` (skipping `::` pairs), then
        // take the identifier before it. A `use` path never crosses a
        // single `:`, so imports declare nothing.
        let mut k = i;
        while k > 0 {
            k -= 1;
            match txt(k) {
                Some(":") => {
                    if k > 0 && txt(k - 1) == Some(":") {
                        k -= 1; // `::` path separator — skip the pair
                        continue;
                    }
                    if k > 0 && tokens[k - 1].kind == TokenKind::Ident {
                        let prev = &src[tokens[k - 1].start..tokens[k - 1].end];
                        out.insert(prev.to_string());
                    }
                    break;
                }
                Some("<") | Some(">") | Some("&") => continue,
                Some(_) if tokens[k].kind == TokenKind::Ident => continue,
                Some(_) if tokens[k].kind == TokenKind::Lifetime => continue,
                _ => break,
            }
        }
        // `let [mut] name = HashMap::new()`.
        if i >= 2 && txt(i - 1) == Some("=") {
            let mut k = i - 2;
            if k > 0 && txt(k) == Some("mut") {
                k -= 1;
            }
            if tokens[k].kind == TokenKind::Ident && txt(k) != Some("mut") {
                out.insert(src[tokens[k].start..tokens[k].end].to_string());
            }
        }
    }
    out
}

/// The file's own module path within its crate: the `.rs` stem for
/// ordinary modules, empty for crate roots (`lib.rs`, `main.rs`) and
/// `mod.rs`.
fn file_mods(path: &str) -> Vec<String> {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    match stem {
        "" | "lib" | "main" | "mod" => Vec::new(),
        s => vec![s.to_string()],
    }
}

/// What opened a brace, for the item-context stack.
#[derive(Debug, Clone)]
enum BraceCtx {
    Mod(String),
    Impl(String),
    Struct,
    Other,
}

/// Walks the token stream once, extracting every `fn` item (with its
/// impl/module context) and every struct field's declared type idents.
fn scan_items(
    lexed: &Lexed,
    src: &str,
    hot_fns: &[Range<usize>],
    cold_fns: &[Range<usize>],
) -> (Vec<FnItem>, BTreeMap<String, BTreeSet<String>>) {
    let toks = &lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &src[t.start..t.end]);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // Brace token index → what it opens, precomputed at item keywords.
    let mut openers: BTreeMap<usize, BraceCtx> = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident {
            match &src[toks[i].start..toks[i].end] {
                "mod" => {
                    if let (Some(name), Some("{")) = (txt(i + 1), txt(i + 2)) {
                        if toks[i + 1].kind == TokenKind::Ident {
                            openers.insert(i + 2, BraceCtx::Mod(name.to_string()));
                        }
                    }
                }
                "impl" => {
                    if let Some((ty, open)) = parse_impl_header(toks, i, src) {
                        openers.insert(open, BraceCtx::Impl(ty));
                    }
                }
                "trait" => {
                    // Trait bodies give default methods their trait name
                    // as a self type (good enough for name resolution).
                    if let Some(name) = txt(i + 1) {
                        if toks[i + 1].kind == TokenKind::Ident {
                            if let Some(open) = find_body_open(toks, i + 2, src) {
                                openers.insert(open, BraceCtx::Impl(name.to_string()));
                            }
                        }
                    }
                }
                "struct" if txt(i + 1).is_some_and(|_| toks[i + 1].kind == TokenKind::Ident) => {
                    if let Some(open) = find_body_open(toks, i + 2, src) {
                        openers.insert(open, BraceCtx::Struct);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }

    // Main walk: maintain the context stack and collect items.
    let mut stack: Vec<BraceCtx> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let s = &src[t.start..t.end];
        if t.kind == TokenKind::Punct {
            match s {
                "{" => stack.push(openers.get(&i).cloned().unwrap_or(BraceCtx::Other)),
                "}" => {
                    stack.pop();
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && s == "fn" {
            // Skip `fn` inside type positions (`impl Fn(..)`, `dyn Fn`)
            // — those lex as `Fn`, capital, so a bare lowercase `fn`
            // followed by an identifier is reliably an item.
            if let Some(name) = txt(i + 1) {
                if toks[i + 1].kind == TokenKind::Ident {
                    let item = parse_fn_item(toks, i, src, &stack, hot_fns, cold_fns);
                    i += 1;
                    if let Some(item) = item {
                        fns.push(item);
                    }
                    continue;
                }
                let _ = name;
            }
        }
        if t.kind == TokenKind::Ident && matches!(stack.last(), Some(BraceCtx::Struct)) {
            // `field : Type` at struct-body level (not `::` paths).
            if txt(i + 1) == Some(":")
                && txt(i + 2) != Some(":")
                && txt(i.wrapping_sub(1)) != Some(":")
            {
                let entry = fields.entry(s.to_string()).or_default();
                let mut k = i + 2;
                let mut depth = 0i32;
                while k < toks.len() {
                    match txt(k) {
                        Some("<") | Some("(") | Some("[") => depth += 1,
                        Some(">") | Some(")") | Some("]")
                            if txt(k.wrapping_sub(1)) != Some("-") =>
                        {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        Some(",") if depth == 0 => break,
                        Some("}") if depth == 0 => break,
                        Some(w)
                            if toks[k].kind == TokenKind::Ident
                                && !matches!(
                                    w,
                                    "pub" | "crate" | "dyn" | "mut" | "const" | "in"
                                ) =>
                        {
                            entry.insert(w.to_string());
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    (fns, fields)
}

/// Parses an `impl` header starting at token `i` (`impl`), returning
/// the self-type name and the body-opening brace's token index.
/// `impl<T> Foo<T>` → Foo; `impl Trait for Bar` → Bar.
fn parse_impl_header(toks: &[Token], i: usize, src: &str) -> Option<(String, usize)> {
    let txt = |k: usize| toks.get(k).map(|t| &src[t.start..t.end]);
    let mut k = i + 1;
    // Generic parameter list on the impl itself.
    k = skip_angles(toks, k, src);
    let mut last_ident: Option<String> = None;
    while k < toks.len() {
        match txt(k)? {
            "{" => return last_ident.map(|ty| (ty, k)),
            "for" => {
                last_ident = None;
                k += 1;
            }
            "where" => {
                // The self type is settled; find the body brace.
                let open = toks[k..]
                    .iter()
                    .position(|t| t.kind == TokenKind::Punct && &src[t.start..t.end] == "{")
                    .map(|off| k + off)?;
                return last_ident.map(|ty| (ty, open));
            }
            "<" => k = skip_angles(toks, k, src),
            "(" | "[" => {
                // `impl Trait for (A, B)` and friends: give up on a
                // nameable self type but still locate the body.
                let open = toks[k..]
                    .iter()
                    .position(|t| t.kind == TokenKind::Punct && &src[t.start..t.end] == "{")
                    .map(|off| k + off)?;
                return last_ident.map(|ty| (ty, open));
            }
            w if toks[k].kind == TokenKind::Ident => {
                if w != "dyn" && w != "crate" && w != "self" && w != "super" {
                    last_ident = Some(w.to_string());
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
    None
}

/// If token `k` is `<`, returns the index one past its matching `>`
/// (treating the `>` of `->` as plain punctuation); otherwise `k`.
pub(crate) fn skip_angles(toks: &[Token], k: usize, src: &str) -> usize {
    let txt = |k: usize| toks.get(k).map(|t| &src[t.start..t.end]);
    if txt(k) != Some("<") {
        return k;
    }
    let mut depth = 0i32;
    let mut j = k;
    while j < toks.len() {
        match txt(j) {
            Some("<") => depth += 1,
            Some(">") if txt(j.wrapping_sub(1)) != Some("-") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            Some(";") | Some("{") => return j, // malformed; bail
            _ => {}
        }
        j += 1;
    }
    j
}

/// Finds the `{` opening an item body, scanning from `k` and skipping
/// generic-parameter lists; `None` when a `;` ends the item first.
fn find_body_open(toks: &[Token], k: usize, src: &str) -> Option<usize> {
    let txt = |k: usize| toks.get(k).map(|t| &src[t.start..t.end]);
    let mut j = k;
    while j < toks.len() {
        match txt(j)? {
            "{" => return Some(j),
            ";" => return None,
            "(" => return None, // tuple struct
            "<" => j = skip_angles(toks, j, src),
            _ => j += 1,
        }
    }
    None
}

/// Parses the `fn` item whose `fn` keyword sits at token `i`.
fn parse_fn_item(
    toks: &[Token],
    i: usize,
    src: &str,
    stack: &[BraceCtx],
    hot_fns: &[Range<usize>],
    cold_fns: &[Range<usize>],
) -> Option<FnItem> {
    let txt = |k: usize| toks.get(k).map(|t| &src[t.start..t.end]);
    let name = txt(i + 1)?.to_string();
    let mut k = skip_angles(toks, i + 2, src);
    if txt(k)? != "(" {
        return None;
    }
    // Parameter list: `self` in the first parameter ⇒ method receiver.
    let params_open = k;
    let mut depth = 0i32;
    let mut has_self = false;
    let mut first_param = true;
    while k < toks.len() {
        match txt(k)? {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => first_param = false,
            "self" if depth == 1 && first_param => has_self = true,
            _ => {}
        }
        k += 1;
    }
    let params_close = k;
    // Return type + body locator.
    let mut ret_types = BTreeSet::new();
    let mut k = params_close + 1;
    let mut body_open: Option<usize> = None;
    let mut in_where = false;
    while k < toks.len() {
        match txt(k)? {
            "{" => {
                body_open = Some(k);
                break;
            }
            ";" => break,
            "where" => {
                in_where = true;
                k += 1;
            }
            w if toks[k].kind == TokenKind::Ident => {
                if !in_where && !matches!(w, "dyn" | "impl" | "mut" | "const" | "Send" | "Sync") {
                    ret_types.insert(w.to_string());
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
    let body_toks =
        body_open.and_then(|open| match_brace(toks, open, src).map(|close| (open, close)));
    let body = body_toks.map(|(open, close)| toks[open].start..toks[close].end);
    let marked = |ranges: &[Range<usize>]| match &body {
        Some(b) => ranges.iter().any(|r| r.start == b.start),
        None => false,
    };
    let marked_hot = marked(hot_fns);
    let marked_cold = marked(cold_fns);
    let self_type = stack.iter().rev().find_map(|c| match c {
        BraceCtx::Impl(ty) => Some(ty.clone()),
        _ => None,
    });
    let mods = stack
        .iter()
        .filter_map(|c| match c {
            BraceCtx::Mod(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    let _ = params_open;
    Some(FnItem {
        name,
        self_type,
        mods,
        fn_tok: i,
        body_toks,
        body,
        line: toks[i].line,
        has_self,
        marked_hot,
        marked_cold,
        ret_types,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/demo/src/lib.rs", src.to_string())
    }

    #[test]
    fn classifies_paths_after_last_crates_component() {
        let (c, t, b) = classify("crates/serve/tests/service.rs");
        assert_eq!(c.as_deref(), Some("serve"));
        assert!(t && !b);
        let (c, t, b) = classify("crates/lint/tests/fixtures/x/crates/ml/src/fires.rs");
        assert_eq!(c.as_deref(), Some("ml"));
        assert!(!t && !b);
        let (c, t, b) = classify("crates/bench/src/bin/loadgen.rs");
        assert_eq!(c.as_deref(), Some("bench"));
        assert!(!t && b);
    }

    #[test]
    fn cfg_test_module_becomes_a_test_region() {
        let m =
            model("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n");
        assert_eq!(m.test_regions.len(), 1);
        let unwrap_at = m.src.find("unwrap").unwrap_or(0);
        assert!(m.in_test_region(unwrap_at));
        let lib_at = m.src.find("lib").unwrap_or(0);
        assert!(!m.in_test_region(lib_at));
    }

    #[test]
    fn test_attribute_fn_becomes_a_region() {
        let m = model("#[test]\nfn t() { let x = 1; }\nfn real() {}\n");
        assert_eq!(m.test_regions.len(), 1);
    }

    #[test]
    fn hot_path_marker_attaches_to_next_fn() {
        let m = model(
            "// qpp-lint: hot-path\npub fn fast(out: &mut Vec<f64>) {\n    out.clear();\n}\nfn cold() {}\n",
        );
        assert_eq!(m.hot_fns.len(), 1);
        let clear_at = m.src.find("clear").unwrap_or(0);
        assert!(m.in_hot_fn(clear_at));
        let cold_at = m.src.find("cold").unwrap_or(0);
        assert!(!m.in_hot_fn(cold_at));
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let m = model(
            "// qpp-lint: allow(no-unwrap-lib)\nlet a = x.unwrap();\nlet b = y.unwrap(); // qpp-lint: allow(no-unwrap-lib, no-vecvec)\n",
        );
        assert!(m.is_allowed(2, "no-unwrap-lib"));
        assert!(m.is_allowed(3, "no-unwrap-lib"));
        assert!(m.is_allowed(3, "no-vecvec"));
        assert!(!m.is_allowed(2, "no-vecvec"));
    }

    #[test]
    fn fn_items_carry_impl_and_module_context() {
        let m = model(
            "pub struct Engine { pool: Pool }\n\
             impl Engine {\n\
                 pub fn new(cap: usize) -> Self { Engine { pool: Pool::new(cap) } }\n\
                 // qpp-lint: hot-path\n\
                 pub fn predict(&self, q: &Query) -> f64 { self.score(q) }\n\
                 fn score(&self, q: &Query) -> f64 { 0.0 }\n\
             }\n\
             mod inner {\n\
                 pub fn helper() {}\n\
             }\n\
             fn free() -> Vec<f64> { Vec::new() }\n",
        );
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).expect(n);
        let new = by_name("new");
        assert_eq!(new.self_type.as_deref(), Some("Engine"));
        assert!(!new.has_self);
        assert!(new.ret_types.contains("Self"));
        let predict = by_name("predict");
        assert!(predict.has_self && predict.marked_hot && !predict.marked_cold);
        assert!(by_name("score").has_self);
        let helper = by_name("helper");
        assert_eq!(helper.mods, vec!["inner".to_string()]);
        assert!(helper.self_type.is_none());
        let free = by_name("free");
        assert!(free.ret_types.contains("Vec") && free.ret_types.contains("f64"));
        assert_eq!(
            m.field_types.get("pool").map(|t| t.contains("Pool")),
            Some(true)
        );
    }

    #[test]
    fn trait_impls_resolve_self_type_after_for() {
        let m = model(
            "impl<T: Clone> Runner for Sharded<T> where T: Send {\n\
                 fn run(&mut self) { self.step(); }\n\
             }\n\
             impl Default for Config {\n\
                 fn default() -> Self { Config }\n\
             }\n",
        );
        let run = m.fns.iter().find(|f| f.name == "run").expect("run");
        assert_eq!(run.self_type.as_deref(), Some("Sharded"));
        let default = m.fns.iter().find(|f| f.name == "default").expect("default");
        assert_eq!(default.self_type.as_deref(), Some("Config"));
    }

    #[test]
    fn cold_marker_and_generic_signatures_parse() {
        let m = model(
            "// qpp-lint: hot-path\n\
             fn hot<T: Into<f64>>(xs: &[T]) -> Result<f64, Error> { cold_fallback() }\n\
             // qpp-lint: cold-path\n\
             fn cold_fallback() -> f64 { 0.0 }\n",
        );
        let hot = m.fns.iter().find(|f| f.name == "hot").expect("hot");
        assert!(hot.marked_hot);
        assert!(hot.ret_types.contains("Result") && hot.ret_types.contains("Error"));
        let cold = m
            .fns
            .iter()
            .find(|f| f.name == "cold_fallback")
            .expect("cold");
        assert!(cold.marked_cold && !cold.marked_hot);
    }

    #[test]
    fn file_mods_uses_stem_except_crate_roots() {
        assert_eq!(
            file_mods("crates/serve/src/queue.rs"),
            vec!["queue".to_string()]
        );
        assert!(file_mods("crates/serve/src/lib.rs").is_empty());
        assert!(file_mods("crates/lint/src/main.rs").is_empty());
    }

    #[test]
    fn map_typed_idents_are_collected() {
        let m = model(
            "use std::collections::HashMap;\nstruct S { models: RwLock<HashMap<K, V>> }\nfn f() { let mut cache = HashMap::new(); }\n",
        );
        assert!(m.map_idents.contains("models"));
        assert!(m.map_idents.contains("cache"));
        assert!(!m.map_idents.contains("collections"));
        assert!(!m.map_idents.contains("std"));
    }
}
