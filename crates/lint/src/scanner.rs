//! Lightweight item scanner: turns a lexed file into the structural
//! facts the rules match against.
//!
//! Nothing here is a full parser. The scanner extracts exactly four
//! things, all computed from the token stream (so strings and comments
//! can never confuse it):
//!
//! * **test regions** — byte ranges of `#[cfg(test)]` items and
//!   `#[test]` functions, which most rules exempt;
//! * **hot-path functions** — body ranges of `fn`s marked with a
//!   `// qpp-lint: hot-path` comment;
//! * **allow directives** — per-line `// qpp-lint: allow(rule, ...)`
//!   opt-outs (plus the legacy `// allow-vecvec` spelling);
//! * **map-typed identifiers** — names declared with a `HashMap` /
//!   `HashSet` type, used by the iteration-order rule.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use std::collections::BTreeSet;
use std::ops::Range;
use std::path::Path;

/// Everything the rules need to know about one source file.
pub struct FileModel {
    /// Path as given on the command line (kept verbatim in output).
    pub path: String,
    /// Full source text.
    pub src: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Byte offset where each 1-based line starts.
    pub line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` items and `#[test]` fns.
    pub test_regions: Vec<Range<usize>>,
    /// Body byte ranges of functions marked `// qpp-lint: hot-path`.
    pub hot_fns: Vec<Range<usize>>,
    /// `(line, rule)` pairs from allow directives; rule `"*"` means all.
    pub allows: Vec<(u32, String)>,
    /// Identifiers declared with a hash-map/set type in this file.
    pub map_idents: BTreeSet<String>,
    /// Crate this file belongs to (`core` for `crates/core/src/...`),
    /// taken from the component after the **last** `crates` directory
    /// so fixture trees can replicate real layouts.
    pub crate_name: Option<String>,
    /// True for files under `tests/`, `benches/` or `examples/`.
    pub is_test_file: bool,
    /// True for binary targets (`src/bin/...` or `main.rs`).
    pub is_bin_file: bool,
}

impl FileModel {
    /// Lexes and scans one file.
    pub fn build(path: &str, src: String) -> FileModel {
        let lexed = lex(&src);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let (crate_name, is_test_file, is_bin_file) = classify(path);
        let test_regions = find_test_regions(&lexed.tokens, &src);
        let hot_fns = find_hot_fns(&lexed, &src);
        let allows = find_allows(&lexed.comments, &line_starts, &src);
        let map_idents = find_map_idents(&lexed.tokens, &src);
        FileModel {
            path: path.to_string(),
            src,
            lexed,
            line_starts,
            test_regions,
            hot_fns,
            allows,
            map_idents,
            crate_name,
            is_test_file,
            is_bin_file,
        }
    }

    /// Token text.
    pub fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    /// The full source line `line` (1-based), without trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let i = (line as usize).saturating_sub(1);
        let start = self.line_starts.get(i).copied().unwrap_or(0);
        let end = self
            .line_starts
            .get(i + 1)
            .map(|e| e.saturating_sub(1))
            .unwrap_or(self.src.len());
        self.src[start..end.max(start)].trim_end()
    }

    /// True when byte `offset` falls inside any test region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&offset))
    }

    /// True when byte `offset` falls inside a hot-path function body.
    pub fn in_hot_fn(&self, offset: usize) -> bool {
        self.hot_fns.iter().any(|r| r.contains(&offset))
    }

    /// True when `rule` is allowed on `line` by a directive comment
    /// (same line, or a directive alone on the previous line).
    pub fn is_allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| *l == line && (r == rule || r == "*"))
    }
}

/// Splits `path` into (crate name, is-test-file, is-bin-file), looking
/// at the components after the last `crates` directory.
fn classify(path: &str) -> (Option<String>, bool, bool) {
    let comps: Vec<&str> = Path::new(path)
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let (crate_name, rest): (Option<String>, &[&str]) =
        match comps.iter().rposition(|c| *c == "crates") {
            Some(i) => (
                comps.get(i + 1).map(|s| s.to_string()),
                comps.get(i + 2..).unwrap_or(&[]),
            ),
            None => (None, &comps[..]),
        };
    let is_test_file = rest
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
    let is_bin_file =
        rest.contains(&"bin") || rest.last().map(|c| *c == "main.rs").unwrap_or(false);
    (crate_name, is_test_file, is_bin_file)
}

/// Token index of the `}` matching the `{` at token index `open`.
fn match_brace(tokens: &[Token], open: usize, src: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in tokens[open..].iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match &src[t.start..t.end] {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(open + off);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Finds `#[cfg(test)]` / `#[test]` attribute targets and returns the
/// byte range of each target item (attribute through closing brace).
fn find_test_regions(tokens: &[Token], src: &str) -> Vec<Range<usize>> {
    let txt = |k: usize| tokens.get(k).map(|t| &src[t.start..t.end]);
    let mut regions: Vec<Range<usize>> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let after_attr = match match_test_attribute(tokens, i, src) {
            Some(k) => k,
            None => {
                i += 1;
                continue;
            }
        };
        // Find the item body: first `{` before a `;` at bracket depth 0,
        // skipping any stacked attributes.
        let mut k = after_attr;
        let mut depth = 0i32;
        let mut body: Option<Range<usize>> = None;
        while k < tokens.len() {
            match txt(k) {
                Some("#") if txt(k + 1) == Some("[") && depth == 0 => {
                    // Skip a stacked `#[...]` attribute group.
                    let mut d = 0i32;
                    k += 1;
                    while k < tokens.len() {
                        match txt(k) {
                            Some("[") => d += 1,
                            Some("]") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some(";") if depth == 0 => break, // braceless item
                Some("{") if depth == 0 => {
                    if let Some(close) = match_brace(tokens, k, src) {
                        body = Some(tokens[i].start..tokens[close].end);
                    }
                    break;
                }
                None => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(r) = body {
            i = k; // resume after the body opener; nested attrs are inside
            regions.push(r);
        }
        i += 1;
    }
    regions
}

/// If the attribute starting at token `i` is `#[test]` or a `#[cfg(...)]`
/// whose arguments mention `test`, returns the index one past its `]`.
fn match_test_attribute(tokens: &[Token], i: usize, src: &str) -> Option<usize> {
    let txt = |k: usize| tokens.get(k).map(|t| &src[t.start..t.end]);
    if txt(i)? != "#" || txt(i + 1)? != "[" {
        return None;
    }
    match txt(i + 2)? {
        "test" if txt(i + 3)? == "]" => Some(i + 4),
        "cfg" if txt(i + 3)? == "(" => {
            let mut depth = 1usize;
            let mut k = i + 4;
            let mut saw_test = false;
            while k < tokens.len() && depth > 0 {
                match txt(k)? {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" => saw_test = true,
                    _ => {}
                }
                k += 1;
            }
            if saw_test && txt(k) == Some("]") {
                Some(k + 1)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Body ranges of `fn`s preceded by a `qpp-lint: hot-path` comment.
fn find_hot_fns(lexed: &Lexed, src: &str) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        if !is_marker(&c.text, "hot-path") {
            continue;
        }
        // First `fn` token after the marker (attributes and doc comments
        // may sit between the marker and the fn).
        let fn_idx = lexed.tokens.iter().position(|t| {
            t.start >= c.end && t.kind == TokenKind::Ident && &src[t.start..t.end] == "fn"
        });
        let fn_idx = match fn_idx {
            Some(i) => i,
            None => continue,
        };
        let open = lexed.tokens[fn_idx..]
            .iter()
            .position(|t| t.kind == TokenKind::Punct && &src[t.start..t.end] == "{")
            .map(|off| fn_idx + off);
        if let Some(open) = open {
            if let Some(close) = match_brace(&lexed.tokens, open, src) {
                out.push(lexed.tokens[open].start..lexed.tokens[close].end);
            }
        }
    }
    out
}

/// True when `text` is a bare `qpp-lint:` marker directive for `word`
/// (e.g. `qpp-lint: hot-path`). The directive must *start* the comment
/// — prose that merely mentions `qpp-lint: hot-path` in backticks does
/// not mark anything.
fn is_marker(text: &str, word: &str) -> bool {
    match text.trim_start().strip_prefix("qpp-lint:") {
        Some(rest) => rest.trim() == word,
        None => false,
    }
}

/// Parses allow directives out of the comment stream. A directive on a
/// code line covers that line; a directive alone on its line covers the
/// next line.
fn find_allows(comments: &[Comment], line_starts: &[usize], src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for c in comments {
        let mut rules: Vec<String> = Vec::new();
        if let Some(rest) = c.text.trim_start().strip_prefix("qpp-lint:") {
            let rest = rest.trim();
            if let Some(args) = rest.strip_prefix("allow") {
                if let Some(inner) = args
                    .trim()
                    .strip_prefix('(')
                    .and_then(|a| a.split(')').next())
                {
                    for rule in inner.split(',') {
                        let rule = rule.trim();
                        if !rule.is_empty() {
                            rules.push(rule.to_string());
                        }
                    }
                }
            }
        }
        // Legacy spelling kept working so existing fixtures need no churn.
        if c.text.contains("allow-vecvec") {
            rules.push("no-vecvec".to_string());
        }
        if rules.is_empty() {
            continue;
        }
        let line_start = line_starts.get(c.line as usize - 1).copied().unwrap_or(0);
        let alone = src[line_start..c.start].trim().is_empty();
        for rule in rules {
            out.push((c.line, rule.clone()));
            if alone {
                out.push((c.line + 1, rule));
            }
        }
    }
    out
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type:
/// `name: ...HashMap<...`, or `let [mut] name = HashMap::new()`.
fn find_map_idents(tokens: &[Token], src: &str) -> BTreeSet<String> {
    let txt = |k: usize| tokens.get(k).map(|t| &src[t.start..t.end]);
    let mut out = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = &src[t.start..t.end];
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // `name: RwLock<HashMap<K, V>>` — walk backwards over the type
        // expression to the introducing `:` (skipping `::` pairs), then
        // take the identifier before it. A `use` path never crosses a
        // single `:`, so imports declare nothing.
        let mut k = i;
        while k > 0 {
            k -= 1;
            match txt(k) {
                Some(":") => {
                    if k > 0 && txt(k - 1) == Some(":") {
                        k -= 1; // `::` path separator — skip the pair
                        continue;
                    }
                    if k > 0 && tokens[k - 1].kind == TokenKind::Ident {
                        let prev = &src[tokens[k - 1].start..tokens[k - 1].end];
                        out.insert(prev.to_string());
                    }
                    break;
                }
                Some("<") | Some(">") | Some("&") => continue,
                Some(_) if tokens[k].kind == TokenKind::Ident => continue,
                Some(_) if tokens[k].kind == TokenKind::Lifetime => continue,
                _ => break,
            }
        }
        // `let [mut] name = HashMap::new()`.
        if i >= 2 && txt(i - 1) == Some("=") {
            let mut k = i - 2;
            if k > 0 && txt(k) == Some("mut") {
                k -= 1;
            }
            if tokens[k].kind == TokenKind::Ident && txt(k) != Some("mut") {
                out.insert(src[tokens[k].start..tokens[k].end].to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/demo/src/lib.rs", src.to_string())
    }

    #[test]
    fn classifies_paths_after_last_crates_component() {
        let (c, t, b) = classify("crates/serve/tests/service.rs");
        assert_eq!(c.as_deref(), Some("serve"));
        assert!(t && !b);
        let (c, t, b) = classify("crates/lint/tests/fixtures/x/crates/ml/src/fires.rs");
        assert_eq!(c.as_deref(), Some("ml"));
        assert!(!t && !b);
        let (c, t, b) = classify("crates/bench/src/bin/loadgen.rs");
        assert_eq!(c.as_deref(), Some("bench"));
        assert!(!t && b);
    }

    #[test]
    fn cfg_test_module_becomes_a_test_region() {
        let m =
            model("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n");
        assert_eq!(m.test_regions.len(), 1);
        let unwrap_at = m.src.find("unwrap").unwrap_or(0);
        assert!(m.in_test_region(unwrap_at));
        let lib_at = m.src.find("lib").unwrap_or(0);
        assert!(!m.in_test_region(lib_at));
    }

    #[test]
    fn test_attribute_fn_becomes_a_region() {
        let m = model("#[test]\nfn t() { let x = 1; }\nfn real() {}\n");
        assert_eq!(m.test_regions.len(), 1);
    }

    #[test]
    fn hot_path_marker_attaches_to_next_fn() {
        let m = model(
            "// qpp-lint: hot-path\npub fn fast(out: &mut Vec<f64>) {\n    out.clear();\n}\nfn cold() {}\n",
        );
        assert_eq!(m.hot_fns.len(), 1);
        let clear_at = m.src.find("clear").unwrap_or(0);
        assert!(m.in_hot_fn(clear_at));
        let cold_at = m.src.find("cold").unwrap_or(0);
        assert!(!m.in_hot_fn(cold_at));
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let m = model(
            "// qpp-lint: allow(no-unwrap-lib)\nlet a = x.unwrap();\nlet b = y.unwrap(); // qpp-lint: allow(no-unwrap-lib, no-vecvec)\n",
        );
        assert!(m.is_allowed(2, "no-unwrap-lib"));
        assert!(m.is_allowed(3, "no-unwrap-lib"));
        assert!(m.is_allowed(3, "no-vecvec"));
        assert!(!m.is_allowed(2, "no-vecvec"));
    }

    #[test]
    fn map_typed_idents_are_collected() {
        let m = model(
            "use std::collections::HashMap;\nstruct S { models: RwLock<HashMap<K, V>> }\nfn f() { let mut cache = HashMap::new(); }\n",
        );
        assert!(m.map_idents.contains("models"));
        assert!(m.map_idents.contains("cache"));
        assert!(!m.map_idents.contains("collections"));
        assert!(!m.map_idents.contains("std"));
    }
}
