//! qpp-lint: workspace static analysis for the qpp invariants.
//!
//! PRs 2–3 bought three hard guarantees — bitwise-deterministic
//! parallel training, a zero-allocation predict path, and the unified
//! `QppError` hierarchy. This crate is the enforcement layer that keeps
//! refactors from silently regressing them: a dependency-free static
//! analyzer with a hand-rolled Rust lexer (comment/string/raw-string/
//! char-literal aware), a lightweight item scanner, and a rule engine
//! emitting span-accurate diagnostics.
//!
//! Run it over the workspace (`cargo run -p qpp-lint -- crates`), ask
//! it to explain a rule (`--explain no-unwrap-lib`), or get
//! machine-readable output (`--json`). Opt out per line with
//! `// qpp-lint: allow(<rule>)`; mark zero-allocation functions with
//! `// qpp-lint: hot-path`.
//!
//! See `DESIGN.md` §11 for the rule table and how to add a rule.

pub mod graph;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scanner;

pub use graph::GraphStats;
pub use rules::{check_file, rule_info, Diagnostic, RuleInfo, RULES};
pub use scanner::FileModel;

use std::path::{Path, PathBuf};

/// Lints one in-memory source file with the per-file rules only (the
/// workspace passes need every file at once; see [`lint_report`]).
pub fn lint_source(path: &str, src: String) -> Vec<Diagnostic> {
    check_file(&FileModel::build(path, src))
}

/// A full lint run: diagnostics from both the per-file rules and the
/// workspace-level passes, walk errors, and call-graph statistics.
pub struct LintReport {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Unreadable paths.
    pub errors: Vec<String>,
    /// Call-graph / lock-graph / atomic-audit counters.
    pub stats: GraphStats,
}

/// Lints every `.rs` file under `roots` (files are linted as given;
/// directories are walked recursively in sorted order, skipping
/// `target` and nested `fixtures` directories), then runs the
/// workspace-level passes (hot-path propagation, lock-order,
/// atomic-ordering audit) over the whole file set.
pub fn lint_report(roots: &[String]) -> LintReport {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for root in roots {
        let p = Path::new(root);
        if p.is_file() {
            files.push(p.to_path_buf());
        } else if p.is_dir() {
            walk(p, 0, &mut files, &mut errors);
        } else {
            errors.push(format!("{root}: not found"));
        }
    }
    files.sort();
    files.dedup();
    let mut models: Vec<FileModel> = Vec::new();
    for f in files {
        let shown = f.to_string_lossy().into_owned();
        match std::fs::read_to_string(&f) {
            Ok(src) => models.push(FileModel::build(&shown, src)),
            Err(e) => errors.push(format!("{shown}: {e}")),
        }
    }
    let mut diags: Vec<Diagnostic> = models.iter().flat_map(check_file).collect();
    let (graph_diags, stats) = graph::check_workspace(&models);
    diags.extend(graph_diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    diags.dedup();
    LintReport {
        diagnostics: diags,
        errors,
        stats,
    }
}

/// Compatibility wrapper around [`lint_report`] for callers that only
/// need the diagnostics and errors.
pub fn lint_paths(roots: &[String]) -> (Vec<Diagnostic>, Vec<String>) {
    let r = lint_report(roots);
    (r.diagnostics, r.errors)
}

fn walk(dir: &Path, depth: usize, files: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("{}: {e}", dir.to_string_lossy()));
            return;
        }
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let name = p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if p.is_dir() {
            // Intentional-violation corpora live in `fixtures` dirs; a
            // workspace walk must not trip over them. Naming a fixtures
            // dir as the root still lints it (depth 0).
            if name == "target" || name == ".git" || (depth > 0 && name == "fixtures") {
                continue;
            }
            walk(&p, depth + 1, files, errors);
        } else if name.ends_with(".rs") {
            files.push(p);
        }
    }
}

/// Renders diagnostics in the human `file:line:col` format with
/// snippets and carets.
pub fn render_human(diags: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(
            out,
            "{}:{}:{}: error[{}]: {}",
            d.path, d.line, d.col, d.rule, d.message
        );
        let _ = writeln!(out, "    {}", d.snippet);
        for step in &d.provenance {
            let _ = writeln!(out, "    note: {step}");
        }
    }
    if !diags.is_empty() {
        let _ = writeln!(
            out,
            "qpp-lint: {} violation{} (run `qpp-lint --explain <rule>` for the \
             rationale and fixes)",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_reports_sorted_spans() {
        let src = "fn f() {\n    let x = a.unwrap();\n    let y = b.unwrap();\n}\n";
        let d = lint_source("crates/demo/src/lib.rs", src.to_string());
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].rule, "no-unwrap-lib");
        assert_eq!((d[0].line, d[0].col), (2, 15));
        assert_eq!((d[1].line, d[1].col), (3, 15));
        assert!(d[0].snippet.contains("a.unwrap()"));
    }
}
