//! Minimal JSON emission for `--json` output.
//!
//! The linter is dependency-free by design, so this is a small writer
//! for exactly the one shape we emit, with correct string escaping per
//! RFC 8259.
//!
//! The v2 document adds the call-graph statistics and per-diagnostic
//! provenance chains introduced by the workspace-level passes:
//!
//! ```text
//! {
//!   "version": 2,
//!   "count": N,
//!   "graph": { "files": .., "functions": .., ... },
//!   "diagnostics": [ { ..v1 fields.., "provenance": [".."] } ]
//! }
//! ```

use crate::graph::GraphStats;
use crate::rules::Diagnostic;
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes a full lint run as the stable, pretty-printed v2 JSON
/// document described in the module docs.
pub fn to_json(diags: &[Diagnostic], stats: &GraphStats) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 2,\n");
    let _ = writeln!(out, "  \"count\": {},", diags.len());
    out.push_str("  \"graph\": {\n");
    for (i, (k, v)) in [
        ("files", stats.files),
        ("functions", stats.functions),
        ("call_edges", stats.call_edges),
        ("hot_roots", stats.hot_roots),
        ("hot_propagated", stats.hot_propagated),
        ("lock_sites", stats.lock_sites),
        ("lock_edges", stats.lock_edges),
        ("atomic_sites", stats.atomic_sites),
        ("atomic_justified", stats.atomic_justified),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "    \"{k}\": {v}");
    }
    out.push_str("\n  },\n");
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        for (j, (k, v)) in [("rule", d.rule), ("file", d.path.as_str())]
            .iter()
            .enumerate()
        {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n      \"{k}\": \"");
            escape_into(&mut out, v);
            out.push('"');
        }
        let _ = write!(out, ",\n      \"line\": {},", d.line);
        let _ = write!(out, "\n      \"col\": {}", d.col);
        for (k, v) in [
            ("message", d.message.as_str()),
            ("snippet", d.snippet.as_str()),
        ] {
            let _ = write!(out, ",\n      \"{k}\": \"");
            escape_into(&mut out, v);
            out.push('"');
        }
        out.push_str(",\n      \"provenance\": [");
        for (j, step) in d.provenance.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n        \"");
            escape_into(&mut out, step);
            out.push('"');
        }
        if !d.provenance.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
