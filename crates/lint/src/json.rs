//! Minimal JSON emission for `--json` output.
//!
//! The linter is dependency-free by design, so this is a ~40-line
//! writer for exactly the one shape we emit, with correct string
//! escaping per RFC 8259.

use crate::rules::Diagnostic;
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes diagnostics as a stable, pretty-printed JSON document:
/// `{"version":1,"count":N,"diagnostics":[...]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    let _ = writeln!(out, "  \"count\": {},", diags.len());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        for (j, (k, v)) in [("rule", d.rule), ("file", d.path.as_str())]
            .iter()
            .enumerate()
        {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n      \"{k}\": \"");
            escape_into(&mut out, v);
            out.push('"');
        }
        let _ = write!(out, ",\n      \"line\": {},", d.line);
        let _ = write!(out, "\n      \"col\": {}", d.col);
        for (k, v) in [
            ("message", d.message.as_str()),
            ("snippet", d.snippet.as_str()),
        ] {
            let _ = write!(out, ",\n      \"{k}\": \"");
            escape_into(&mut out, v);
            out.push('"');
        }
        out.push_str("\n    }");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
