//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The rules in this crate match on *token* streams, never on raw text,
//! so `"unwrap"` inside a string literal, `.unwrap()` inside a doc
//! comment, and `Vec<Vec<f64>>` inside a `/* ... */` block can never
//! produce a false positive. The lexer understands:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments — captured
//!   separately so directive comments (`qpp-lint: allow(...)`) can be
//!   parsed;
//! * string literals with escapes, raw strings (`r#"..."#`, any number
//!   of hashes), byte strings (`b"..."`, `br#"..."#`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! * raw identifiers (`r#fn`, `r#match`) — lexed as one `Ident` token
//!   so the keyword scanner never sees a phantom `fn`/`match`;
//! * identifiers, numbers (without swallowing `..` range punctuation),
//!   and single-character punctuation.
//!
//! It is loss-tolerant: malformed input (an unterminated string at EOF)
//! lexes to the end of the file instead of failing — a linter must
//! degrade gracefully on code the compiler would reject anyway.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Vec`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Any string-like literal (string, raw string, byte string, char).
    Literal,
    /// A numeric literal.
    Number,
    /// A single punctuation character (`.`, `<`, `!`, ...).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

/// One comment with its source span and body text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the comment.
    pub end: usize,
    /// 1-based line of the comment start.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
    /// Body text without the `//` / `/* */` markers, trimmed.
    pub text: String,
}

/// Token stream plus comment stream for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters.
    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0b1100_0000 != 0b1000_0000 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match b {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, line, col),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, line, col),
                b'"' => self.string_literal(start, line, col),
                b'r' if self.raw_string_ahead(0) => self.raw_string(start, line, col, 1),
                b'r' if self.raw_ident_ahead() => {
                    // `r#fn` must lex as ONE identifier token: splitting
                    // it into `r` + `#` + `fn` would hand the item
                    // scanner a phantom `fn` keyword.
                    self.bump_n(2);
                    self.ident(start, line, col);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.string_literal(start, line, col);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump();
                    self.char_literal(start, line, col);
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(1) => {
                    self.raw_string(start, line, col, 2)
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.lifetime(start, line, col);
                    } else {
                        self.char_literal(start, line, col);
                    }
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.ident(start, line, col)
                }
                _ if b.is_ascii_digit() => self.number(start, line, col),
                _ if b.is_ascii_whitespace() => self.bump(),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn line_comment(&mut self, start: usize, line: u32, col: u32) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let body = self.src[start..self.pos]
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        self.out.comments.push(Comment {
            start,
            end: self.pos,
            line,
            col,
            text: body.to_string(),
        });
    }

    fn block_comment(&mut self, start: usize, line: u32, col: u32) {
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        let inner = self.src[start..self.pos]
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        self.out.comments.push(Comment {
            start,
            end: self.pos,
            line,
            col,
            text: inner.to_string(),
        });
    }

    fn string_literal(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Literal, start, line, col);
    }

    /// True when the cursor sits on a raw identifier: `r#` followed by
    /// an identifier start (`r#fn`, `r#type`). A raw *string* (`r#"`)
    /// never matches because `"` is not an identifier start.
    fn raw_ident_ahead(&self) -> bool {
        self.peek(1) == Some(b'#')
            && matches!(self.peek(2), Some(b) if b == b'_' || b.is_ascii_alphabetic())
    }

    /// True when the bytes at `pos + offset` start a raw-string opener:
    /// `r"` or `r#...#"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset + 1; // past the `r`
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self, start: usize, line: u32, col: u32, prefix: usize) {
        self.bump_n(prefix); // `r` or `br`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                self.bump_n(hashes);
                break;
            }
        }
        self.push(TokenKind::Literal, start, line, col);
    }

    /// True when the `'` at the cursor begins a lifetime rather than a
    /// char literal: `'ident` not followed by a closing `'`.
    fn lifetime_ahead(&self) -> bool {
        let first = match self.peek(1) {
            Some(b) if b == b'_' || b.is_ascii_alphabetic() => b,
            _ => return false,
        };
        let _ = first;
        let mut i = 2;
        while let Some(b) = self.peek(i) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                i += 1;
            } else {
                break;
            }
        }
        self.peek(i) != Some(b'\'')
    }

    fn lifetime(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // `'`
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Lifetime, start, line, col);
    }

    fn char_literal(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening `'`
        match self.peek(0) {
            Some(b'\\') => {
                self.bump(); // backslash
                if self.peek(0) == Some(b'u') {
                    // '\u{...}'
                    while let Some(b) = self.peek(0) {
                        self.bump();
                        if b == b'}' {
                            break;
                        }
                    }
                } else {
                    self.bump(); // the escaped char
                }
            }
            Some(_) => self.bump(),
            None => {}
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        self.push(TokenKind::Literal, start, line, col);
    }

    fn ident(&mut self, start: usize, line: u32, col: u32) {
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, start, line, col);
    }

    fn number(&mut self, start: usize, line: u32, col: u32) {
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else if b == b'.' {
                // Consume the dot only for `1.5`, never for `0..n` or
                // `1.method()`.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => self.bump(),
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| &src[t.start..t.end])
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "x.unwrap() Vec<Vec<f64>>";
            // y.unwrap() in a comment
            /* Vec<Vec<f64>> /* nested */ still comment */
            let b = r#"raw "quoted" unwrap"#;
            let c = b"bytes unwrap";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"Vec"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } // tick";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(chars, vec!["'x'"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let u = '\u{1F600}'; x.unwrap()";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { let f = 1.5e-3; }";
        let lexed = lex(src);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e", "3"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        // `r#fn` split into `r`+`#`+`fn` would hand the item scanner a
        // phantom `fn` keyword; it must arrive as one ident.
        let src = "let r#fn = 1; struct r#type { r#match: u32 }";
        let ids = idents(src);
        assert!(ids.contains(&"r#fn"));
        assert!(ids.contains(&"r#type"));
        assert!(ids.contains(&"r#match"));
        assert!(!ids.contains(&"fn"));
        assert!(!ids.contains(&"match"));
    }

    #[test]
    fn raw_strings_hide_ticks_braces_and_directives() {
        // A raw string containing `'`, braces, comment markers, and a
        // directive-looking body must lex as ONE literal: leaking any of
        // it would corrupt brace matching, char-literal detection, or
        // the allow-directive parser in the scanner.
        let src = r###"let s = r#"can't { } // qpp-lint: allow(no-unwrap-lib) fn fake() {"#; x.unwrap();"###;
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 0, "no comment inside a raw string");
        let ids = idents(src);
        assert!(ids.contains(&"unwrap"));
        assert!(!ids.contains(&"fake"));
        let braces = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && matches!(&src[t.start..t.end], "{" | "}"))
            .count();
        assert_eq!(braces, 0, "braces inside the raw string must not leak");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            0,
            "the tick inside the raw string is not a lifetime"
        );
    }

    #[test]
    fn raw_strings_with_inner_hash_quote_runs_terminate_correctly() {
        let src = r####"let a = r##"x "# y"##; let b = r#""#; foo.unwrap()"####;
        let ids = idents(src);
        assert!(
            ids.contains(&"unwrap"),
            "lexer must resync after raw strings"
        );
        assert!(!ids.contains(&"x"));
        assert!(!ids.contains(&"y"));
    }

    #[test]
    fn lifetime_ticks_never_become_char_literals() {
        // Every common lifetime position: generics, references, bounds,
        // labeled loops, turbofish, `'_`, `'static` — none may lex as a
        // char literal (which would swallow following tokens).
        let src = "fn f<'a, 'b: 'a>(x: &'a str, y: &'b mut [u8], z: &'_ u32) -> &'static str {\n    'outer: loop { break 'outer; }\n    g::<'a>(x)\n}";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(
            lifetimes,
            vec!["'a", "'b", "'a", "'a", "'b", "'_", "'static", "'outer", "'outer", "'a"]
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            0,
            "no lifetime tick may be read as a char literal"
        );
    }

    #[test]
    fn char_literals_with_brace_quote_and_escape_payloads() {
        // `'{'` / `'}'` must stay literals (leaked braces would corrupt
        // fn-body matching); `'\''` and `'\\'` must not desync the lexer.
        let src = r"let open = '{'; let close = '}'; let q = '\''; let b = '\\'; h.unwrap()";
        let lexed = lex(src);
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(lits, vec!["'{'", "'}'", r"'\''", r"'\\'"]);
        assert!(idents(src).contains(&"unwrap"));
        let braces = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && matches!(&src[t.start..t.end], "{" | "}"))
            .count();
        assert_eq!(braces, 0);
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let src = "let a = 1;\n  foo.unwrap();\n";
        let lexed = lex(src);
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| &src[t.start..t.end] == "unwrap")
            .copied();
        match unwrap {
            Some(t) => {
                assert_eq!(t.line, 2);
                assert_eq!(t.col, 7);
            }
            None => panic!("unwrap token not found"),
        }
    }
}
