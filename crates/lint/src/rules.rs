//! The rule engine: six rules wired to the workspace's real invariants.
//!
//! Every rule matches on the token stream of a [`FileModel`], honors
//! per-line `// qpp-lint: allow(<rule>)` directives, and reports
//! span-accurate diagnostics. Scope filters (test files, binaries,
//! per-crate applicability) are data on the rule, not ad-hoc code, so
//! adding a rule is: write a `check` function, add a [`RuleInfo`] row,
//! add a fixture triple.

use crate::lexer::TokenKind;
use crate::scanner::FileModel;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `no-unwrap-lib`.
    pub rule: &'static str,
    /// File path as given to the linter.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// One-line description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For workspace-level findings: the chain of call-graph /
    /// lock-graph steps that led here (empty for per-file findings).
    pub provenance: Vec<String>,
}

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable identifier used in output and allow directives.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form `--explain` documentation.
    pub explain: &'static str,
}

/// All rules, in the order they run and report.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-vecvec",
        summary: "nested Vec<Vec<f64>> must not appear in library code",
        explain: "\
The data plane operates on contiguous row-major matrices and borrowed\n\
views (qpp_linalg::Matrix / MatrixView); nested `Vec<Vec<f64>>` rows\n\
defeat the zero-copy boundaries that PR 3 established and fragment the\n\
cache layout of every hot loop that touches them.\n\
\n\
Fires on: the token sequence `Vec < Vec < f64` in any non-test source\n\
file (string literals and comments never match — the linter lexes).\n\
\n\
Fix: build a `Matrix` (or accept a `MatrixView`) instead. Test-only\n\
fixtures may opt out with `// qpp-lint: allow(no-vecvec)` or the legacy\n\
`// allow-vecvec` comment on the same line.",
    },
    RuleInfo {
        id: "no-alloc-hot-path",
        summary: "no heap allocation inside functions marked `// qpp-lint: hot-path`",
        explain: "\
The steady-state predict path performs zero heap allocations per call\n\
(enforced at runtime by tests/alloc_regression.rs with the counting\n\
allocator). This rule is the static side of the same contract: inside\n\
any function marked with a `// qpp-lint: hot-path` comment, allocating\n\
constructs are rejected.\n\
\n\
Fires on: `Vec::new`, `Vec::with_capacity`, `vec![...]`, `.to_vec()`,\n\
`.collect()`, `.clone()`, `.to_owned()`, `.to_string()`, `format!`,\n\
`String::new`, `String::from`, and `Box::new` inside a marked body.\n\
\n\
Fix: write into a caller-provided `&mut Vec<_>` scratch buffer\n\
(`clear()` + `extend(..)` / `resize(..)` reuse capacity and do not\n\
allocate once warm). Constructs that provably do not allocate (e.g.\n\
collecting into an inline small-vec) may opt out with\n\
`// qpp-lint: allow(no-alloc-hot-path)` plus a justification.",
    },
    RuleInfo {
        id: "no-unordered-float-reduce",
        summary: "float reductions must use the canonical ordered helpers",
        explain: "\
Training and projection are bitwise-deterministic for any thread count\n\
(tests/thread_invariance.rs). Float addition is not associative, so\n\
every float reduction must have a pinned evaluation order. Bare\n\
iterator `.sum()` / `.fold(..)` calls scattered through the code are\n\
where that guarantee silently erodes: a later refactor can parallelize\n\
or reorder them without noticing.\n\
\n\
Fires on: `.sum()` / `.fold(..)` over floats (float turbofish, float\n\
fold seeds such as `0.0` or `f64::INFINITY`, or no visible integer\n\
type) in library code, outside qpp-par (whose ordered reductions are\n\
the sanctioned primitive) and outside qpp-bench reporting code.\n\
\n\
Fix: call the canonical sequential reductions in qpp_linalg::vector\n\
(`sum`, `sum_iter`, `min_iter`, `max_iter` — all fixed left-to-right\n\
order), or give integer reductions an explicit integer turbofish\n\
(`.sum::<u64>()`), which this rule recognizes as order-free.",
    },
    RuleInfo {
        id: "no-hashmap-iter-order",
        summary: "HashMap/HashSet iteration order must not escape",
        explain: "\
HashMap iteration order is randomized per process; anything that\n\
iterates a map and lets the order reach results, output, or wire\n\
formats is nondeterministic across runs. Reproducibility studies of\n\
QPP pipelines exist precisely because this class of bug is invisible\n\
in single-run tests.\n\
\n\
Fires on: `.iter()`, `.iter_mut()`, `.keys()`, `.values()`,\n\
`.values_mut()`, `.into_iter()`, `.into_keys()`, `.into_values()`,\n\
`.drain(..)` on a receiver declared with a `HashMap`/`HashSet` type in\n\
the same file, and `for .. in` loops over such names, in library code.\n\
\n\
Fix: use a `BTreeMap` (ordered by key), or sort the collected keys\n\
before the order can escape. Iteration whose order provably cannot\n\
escape (e.g. summing values) may opt out with\n\
`// qpp-lint: allow(no-hashmap-iter-order)`.",
    },
    RuleInfo {
        id: "no-unwrap-lib",
        summary: "no unwrap/expect/panic! in non-test library code",
        explain: "\
Every fallible library path returns the unified `QppError` hierarchy\n\
(PR 3); a panic in library code tears down a serving worker instead of\n\
degrading into a typed error the caller can route. Production studies\n\
of learned QPP systems put operational error handling, not accuracy,\n\
at the top of the trust budget.\n\
\n\
Fires on: `.unwrap()`, `.expect(..)`, and `panic!(..)` in non-test\n\
library code of every serving/model crate (files under tests/,\n\
examples/, benches/, src/bin/, `#[cfg(test)]` / `#[test]` items, and\n\
the offline qpp-bench harness are exempt; so are `unwrap_or*`,\n\
`unwrap_err`, `expect_err`, and assert macros).\n\
\n\
Fix: return a typed error (`QppError`, or the crate's error enum)\n\
with `ResultExt::ctx` context. Invariants that genuinely cannot fail\n\
(e.g. lock poisoning recovery, fatal pool spawn) may opt out with\n\
`// qpp-lint: allow(no-unwrap-lib)` plus a justification comment.",
    },
    RuleInfo {
        id: "no-wallclock-in-model",
        summary: "no wall-clock reads in deterministic model code",
        explain: "\
qpp-core, qpp-ml and qpp-linalg are the deterministic heart of the\n\
system: identical inputs must produce bitwise-identical models and\n\
predictions (tests/determinism.rs). A wall-clock read — timing-based\n\
seeding, time-dependent tolerances, embedded timestamps — breaks that\n\
contract in a way no fixed-seed test can catch.\n\
\n\
Fires on: any use of `Instant` or `SystemTime` (including imports) in\n\
non-test code of qpp-core, qpp-ml, qpp-linalg, or qpp-adapt (drift\n\
detection is epoch-driven: the caller injects logical time). Serving\n\
and bench crates measure latency legitimately and are out of scope.\n\
\n\
Fix: accept timestamps as parameters from the caller, or move the\n\
timing to the serving/bench layer. There is deliberately no sanctioned\n\
in-crate opt-out pattern; if you think you need one, the code belongs\n\
in a different crate.",
    },
    RuleInfo {
        id: "atomic-ordering-audit",
        summary: "every atomic Ordering use carries an `// ordering:` justification",
        explain: "\
The lock-free plumbing (obs ring buffer, sharded admission queue,\n\
registry epoch counters, adapt trackers) is exactly the code where a\n\
wrong memory ordering is invisible to every test and fatal under load.\n\
This rule turns each `Ordering::{Relaxed,Acquire,Release,AcqRel,\n\
SeqCst}` use into a reviewed decision: the statement must carry a\n\
`// ordering: <why>` comment on the same line, within the statement,\n\
or on the line above it.\n\
\n\
Fires on: (a) any atomic `Ordering::*` variant in non-test code with\n\
no `// ordering:` justification in range; (b) a `Relaxed` *store* to a\n\
field whose *loads* elsewhere in the workspace use `Acquire` — the\n\
Acquire load synchronizes with nothing unless the store is `Release`,\n\
so the pair is either a bug or two sites that disagree about the\n\
protocol (pairing is heuristic, keyed by field name).\n\
\n\
Fix: write the one-line reason the chosen ordering is sufficient\n\
(`// ordering: Release publishes the slot payload written above`).\n\
For (b), publish with `Release` or downgrade the load to `Relaxed`,\n\
then document whichever you chose. Sites the heuristic mispairs may\n\
opt out with `// qpp-lint: allow(atomic-\
ordering-audit)`.",
    },
    RuleInfo {
        id: "lock-order",
        summary: "lock acquisition order must be cycle-free across the workspace",
        explain: "\
Two functions that take the same two locks in opposite orders deadlock\n\
under the right interleaving — and the acquisitions are usually in\n\
different files, composed through helper calls, where no local review\n\
can see the cycle. This pass extracts every `Mutex::lock` /\n\
`RwLock::{read,write}` / `Condvar::wait*` acquisition per function,\n\
tracks guard lifetimes (let-bound guards to end of scope or `drop`,\n\
temporaries to end of statement), composes held-sets through the call\n\
graph, and reports any cycle in the resulting lock-order graph.\n\
\n\
Fires on: a cycle `A -> B -> ... -> A` in the workspace lock-order\n\
graph. The diagnostic points at the first edge's acquisition site and\n\
carries the full witness path (every edge with its file:line) in the\n\
provenance, so the report is actionable without re-deriving the\n\
analysis. Locks are identified by (crate, field-or-constructor name);\n\
two instances of the same field (e.g. per-shard locks ordered by\n\
index) are indistinguishable, so same-lock self-edges are not\n\
reported.\n\
\n\
Fix: pick one global acquisition order (document it where the locks\n\
are declared) and restructure the odd function out — usually by\n\
dropping the first guard before taking the second, or by hoisting the\n\
second acquisition out of the critical section. A cycle the analysis\n\
cannot see past (e.g. instance-disambiguated ordering) may opt out\n\
with `// qpp-lint: allow(lock-order)` on the witness line.",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Runs every rule over one file model and returns its diagnostics,
/// sorted by (line, col, rule).
pub fn check_file(m: &FileModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    no_vecvec(m, &mut out);
    no_alloc_hot_path(m, &mut out);
    no_unordered_float_reduce(m, &mut out);
    no_hashmap_iter_order(m, &mut out);
    no_unwrap_lib(m, &mut out);
    no_wallclock_in_model(m, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn emit(m: &FileModel, out: &mut Vec<Diagnostic>, rule: &'static str, tok_idx: usize, msg: String) {
    let t = &m.lexed.tokens[tok_idx];
    if m.is_allowed(t.line, rule) {
        return;
    }
    out.push(Diagnostic {
        rule,
        path: m.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
        snippet: m.line_text(t.line).trim_start().to_string(),
        provenance: Vec::new(),
    });
}

/// `Vec < Vec < f64` token sequence in non-test files.
fn no_vecvec(m: &FileModel, out: &mut Vec<Diagnostic>) {
    if m.is_test_file {
        return;
    }
    let toks = &m.lexed.tokens;
    for i in 0..toks.len().saturating_sub(4) {
        let texts: Vec<&str> = (i..i + 5).map(|k| m.text(&toks[k])).collect();
        if texts == ["Vec", "<", "Vec", "<", "f64"] {
            emit(
                m,
                out,
                "no-vecvec",
                i,
                "nested `Vec<Vec<f64>>` in library code — use a contiguous \
                 `Matrix`/`MatrixView` instead"
                    .to_string(),
            );
        }
    }
}

/// Classifies token `i` as an allocating construct (`Vec::new`,
/// `.collect()`, `vec![..]`, …). Shared by the per-file hot-path rule
/// and the call-graph propagation pass; returns the construct name and
/// a short reason.
pub(crate) fn alloc_finding(m: &FileModel, i: usize) -> Option<(&str, &'static str)> {
    let toks = &m.lexed.tokens;
    let t = toks.get(i)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    let txt = |k: usize| toks.get(k).map(|t| &m.src[t.start..t.end]);
    let name = m.text(t);
    let prev = if i > 0 { txt(i - 1) } else { None };
    let next = txt(i + 1);
    // `.name(` or `.name::<..>(` — a method call (the `::` of a
    // turbofish lexes as two `:` tokens).
    let is_method_call =
        prev == Some(".") && (next == Some("(") || (next == Some(":") && txt(i + 2) == Some(":")));
    match name {
        "to_vec" | "collect" | "clone" | "to_owned" | "to_string" if is_method_call => {
            Some((name, "allocates a fresh buffer"))
        }
        // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::new`,
        // `String::from` — match the *type* token before `::`.
        "Vec" | "Box" | "String"
            if next == Some(":")
                && txt(i + 2) == Some(":")
                && matches!(
                    txt(i + 3).map(|s| (name, s)),
                    Some(("Vec", "new"))
                        | Some(("Vec", "with_capacity"))
                        | Some(("Box", "new"))
                        | Some(("String", "new"))
                        | Some(("String", "from"))
                ) =>
        {
            Some((name, "constructs a fresh allocation"))
        }
        // `vec![...]`, `format!(...)`.
        "vec" | "format" if next == Some("!") => Some((name, "allocates a fresh buffer")),
        _ => None,
    }
}

/// Allocating constructs inside `// qpp-lint: hot-path` function bodies.
fn no_alloc_hot_path(m: &FileModel, out: &mut Vec<Diagnostic>) {
    if m.hot_fns.is_empty() {
        return;
    }
    for i in 0..m.lexed.tokens.len() {
        if !m.in_hot_fn(m.lexed.tokens[i].start) {
            continue;
        }
        if let Some((name, why)) = alloc_finding(m, i) {
            emit(
                m,
                out,
                "no-alloc-hot-path",
                i,
                format!(
                    "`{name}` in a `qpp-lint: hot-path` function — {why}; reuse a \
                     caller-provided scratch buffer"
                ),
            );
        }
    }
}

/// Integer types whose reductions are order-free.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Bare `.sum()` / `.fold(..)` over floats outside the ordered-reduction
/// homes (qpp-par) and reporting code (qpp-bench).
fn no_unordered_float_reduce(m: &FileModel, out: &mut Vec<Diagnostic>) {
    if m.is_test_file || m.is_bin_file {
        return;
    }
    if let Some(name) = m.crate_name.as_deref() {
        if matches!(name, "par" | "bench" | "lint") {
            return;
        }
    }
    let toks = &m.lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &m.src[t.start..t.end]);
    for (i, t) in toks.iter().enumerate().skip(1) {
        if t.kind != TokenKind::Ident || txt(i - 1) != Some(".") || m.in_test_region(t.start) {
            continue;
        }
        match m.text(t) {
            "sum" => {
                // `.sum::<T>()` — integer T is order-free; float or
                // absent T must go through the ordered helpers.
                if txt(i + 1) == Some(":") && txt(i + 2) == Some(":") && txt(i + 3) == Some("<") {
                    match txt(i + 4) {
                        Some(ty) if INT_TYPES.contains(&ty) => continue,
                        _ => {}
                    }
                } else if txt(i + 1) != Some("(") {
                    continue; // a field or different method, not `.sum()`
                } else if int_annotated_line(m, t.line) {
                    continue;
                }
                emit(
                    m,
                    out,
                    "no-unordered-float-reduce",
                    i,
                    "bare float `.sum()` — use qpp_linalg::vector::sum / sum_iter \
                     (ordered), or an integer turbofish if this is an integer sum"
                        .to_string(),
                );
            }
            "fold" => {
                if txt(i + 1) != Some("(") {
                    continue;
                }
                // Inspect the fold seed (first argument): integer seeds
                // are order-free, float seeds are not.
                if fold_seed_is_integer(m, i + 1) {
                    continue;
                }
                emit(
                    m,
                    out,
                    "no-unordered-float-reduce",
                    i,
                    "bare float `.fold(..)` — use qpp_linalg::vector::min_iter / \
                     max_iter / sum_iter (ordered) instead"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// True when the line carries an explicit integer type annotation
/// (`let total: u64 = ...`), making a bare `.sum()` order-free.
fn int_annotated_line(m: &FileModel, line: u32) -> bool {
    let text = m.line_text(line);
    INT_TYPES
        .iter()
        .any(|ty| text.contains(&format!(": {ty} ")) || text.contains(&format!(": {ty} =")))
}

/// Inspects the first argument of a `.fold(` whose `(` token index is
/// `open`; returns true when the seed is integer-typed.
fn fold_seed_is_integer(m: &FileModel, open: usize) -> bool {
    let toks = &m.lexed.tokens;
    let mut depth = 0i32;
    for tok in &toks[open..] {
        let s = m.text(tok);
        match s {
            "(" | "[" | "{" => {
                depth += 1;
                continue;
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            "," if depth == 1 => break, // end of first argument
            _ => {}
        }
        if tok.kind == TokenKind::Number {
            // `0.0`, `1e-9` are float seeds; `0`, `0u64` are not —
            // unless suffixed with a float type.
            let is_float = s.contains('.') || s.contains('e') && !s.contains('x');
            let int_suffix = INT_TYPES.iter().any(|ty| s.ends_with(ty));
            return !is_float || int_suffix;
        }
        if tok.kind == TokenKind::Ident {
            if s == "f64" || s == "f32" {
                return false; // `f64::INFINITY` etc.
            }
            if INT_TYPES.contains(&s) {
                return true;
            }
        }
    }
    // No evidence either way: treat as float (the conservative default —
    // determinism bugs are worse than one allow comment).
    false
}

/// Iteration over HashMap/HashSet receivers in library code.
fn no_hashmap_iter_order(m: &FileModel, out: &mut Vec<Diagnostic>) {
    if m.is_test_file || m.map_idents.is_empty() {
        return;
    }
    const ITERS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
    ];
    let toks = &m.lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &m.src[t.start..t.end]);
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || m.in_test_region(t.start) {
            continue;
        }
        let name = m.text(t);
        // `for pat in &map { ... }` — the loop header names the map.
        if name == "for" {
            let mut k = i + 1;
            let mut hit: Option<usize> = None;
            while k < toks.len() {
                match txt(k) {
                    Some("{") | Some(";") | None => break,
                    Some(s) if toks[k].kind == TokenKind::Ident && m.map_idents.contains(s) => {
                        hit = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(k) = hit {
                // Skip when the loop actually iterates a method result
                // that the `.keys()` check below already covers.
                let followed_by_call = txt(k + 1) == Some(".");
                if !followed_by_call {
                    emit(
                        m,
                        out,
                        "no-hashmap-iter-order",
                        k,
                        format!(
                            "iterating hash-ordered `{}` — order is randomized per \
                             process; use a BTreeMap or sort first",
                            m.text(&toks[k])
                        ),
                    );
                }
            }
            continue;
        }
        if !ITERS.contains(&name) || txt(i - 1) != Some(".") || txt(i + 1) != Some("(") {
            continue;
        }
        // Receiver scan: identifiers in the same method chain, walking
        // back to the start of the statement.
        let mut k = i - 1;
        let mut receiver_is_map = false;
        while k > 0 {
            k -= 1;
            let s = match txt(k) {
                Some(s) => s,
                None => break,
            };
            match s {
                ";" | "{" | "}" | "=" | "," => break,
                _ => {}
            }
            if toks[k].kind == TokenKind::Ident && m.map_idents.contains(s) {
                receiver_is_map = true;
                break;
            }
        }
        if receiver_is_map {
            emit(
                m,
                out,
                "no-hashmap-iter-order",
                i,
                format!(
                    "`.{name}()` on a hash-ordered map — order is randomized per \
                     process; use a BTreeMap or sort before the order escapes"
                ),
            );
        }
    }
}

/// `.unwrap()` / `.expect(..)` / `panic!` in non-test library code.
fn no_unwrap_lib(m: &FileModel, out: &mut Vec<Diagnostic>) {
    if m.is_test_file || m.is_bin_file {
        return;
    }
    // qpp-bench is an offline experiment harness: failing fast on a
    // broken experiment is correct there, and it serves no traffic.
    if m.crate_name.as_deref() == Some("bench") {
        return;
    }
    let toks = &m.lexed.tokens;
    let txt = |k: usize| toks.get(k).map(|t| &m.src[t.start..t.end]);
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || m.in_test_region(t.start) {
            continue;
        }
        let name = m.text(t);
        let prev = if i > 0 { txt(i - 1) } else { None };
        let next = txt(i + 1);
        let msg = match name {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => format!(
                "`.{name}()` in library code — return a typed `QppError` \
                 (or annotate a true invariant with an allow comment)"
            ),
            "panic" if next == Some("!") => "`panic!` in library code — return a typed \
                 `QppError` instead of tearing down the caller"
                .to_string(),
            _ => continue,
        };
        emit(m, out, "no-unwrap-lib", i, msg);
    }
}

/// `Instant` / `SystemTime` anywhere in deterministic model crates.
fn no_wallclock_in_model(m: &FileModel, out: &mut Vec<Diagnostic>) {
    match m.crate_name.as_deref() {
        Some("core") | Some("ml") | Some("linalg") | Some("adapt") => {}
        _ => return,
    }
    if m.is_test_file {
        return;
    }
    for (i, t) in m.lexed.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || m.in_test_region(t.start) {
            continue;
        }
        let name = m.text(t);
        if name == "Instant" || name == "SystemTime" {
            emit(
                m,
                out,
                "no-wallclock-in-model",
                i,
                format!(
                    "`{name}` in deterministic model code — identical inputs must \
                     give bitwise-identical outputs; take time as a parameter or \
                     move the timing to the serving layer"
                ),
            );
        }
    }
}
