//! qpp-lint CLI.
//!
//! ```text
//! qpp-lint [--json] [PATH ...]       lint files/directories (default: crates)
//! qpp-lint --explain <RULE>          print a rule's rationale and fixes
//! qpp-lint --list                    list all rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut explain: Option<String> = None;
    let mut list = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--explain" => match it.next() {
                Some(rule) => explain = Some(rule),
                None => {
                    eprintln!("qpp-lint: --explain needs a rule id (try --list)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("qpp-lint: unknown flag `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }

    if list {
        for r in qpp_lint::RULES {
            println!("{:<28} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = explain {
        return match qpp_lint::rule_info(&rule) {
            Some(info) => {
                println!("{} — {}\n\n{}", info.id, info.summary, info.explain);
                println!(
                    "\nOpt out per line with `// qpp-lint: allow({})` on the \
                     offending line or alone on the line above it.",
                    info.id
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("qpp-lint: unknown rule `{rule}` (try --list)");
                ExitCode::from(2)
            }
        };
    }

    if paths.is_empty() {
        paths.push("crates".to_string());
    }
    let report = qpp_lint::lint_report(&paths);
    let (diags, errors) = (report.diagnostics, report.errors);
    for e in &errors {
        eprintln!("qpp-lint: {e}");
    }
    if json {
        print!("{}", qpp_lint::json::to_json(&diags, &report.stats));
    } else if diags.is_empty() {
        println!(
            "qpp-lint: clean ({} rule{} enforced)",
            qpp_lint::RULES.len(),
            if qpp_lint::RULES.len() == 1 { "" } else { "s" }
        );
    } else {
        print!("{}", qpp_lint::render_human(&diags));
    }
    if !errors.is_empty() {
        ExitCode::from(2)
    } else if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_usage() {
    println!(
        "qpp-lint: workspace static analysis for the qpp invariants\n\n\
         usage:\n  qpp-lint [--json] [PATH ...]   lint files/directories (default: crates)\n  \
         qpp-lint --explain <RULE>      print a rule's rationale and fixes\n  \
         qpp-lint --list                list all rules\n\n\
         exit codes: 0 clean, 1 violations, 2 usage or I/O error"
    );
}
