//! Fixture: ordered maps iterate deterministically and pass.

use std::collections::BTreeMap;

pub fn listing(models: &BTreeMap<String, u64>) -> Vec<String> {
    models.keys().cloned().collect()
}

pub fn lookup(models: &BTreeMap<String, u64>, key: &str) -> Option<u64> {
    models.get(key).copied()
}
