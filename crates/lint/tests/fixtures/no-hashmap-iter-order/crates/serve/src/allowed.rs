//! Fixture: order-insensitive aggregation may opt out.

use std::collections::HashMap;

pub fn total(counts: &HashMap<String, u64>) -> u64 {
    // Order cannot escape a commutative integer sum.
    // qpp-lint: allow(no-hashmap-iter-order)
    counts.values().sum::<u64>()
}
