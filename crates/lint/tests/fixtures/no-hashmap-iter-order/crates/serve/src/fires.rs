//! Fixture: hash-map iteration order escaping into results.

use std::collections::HashMap;

pub fn listing(models: &HashMap<String, u64>) -> Vec<String> {
    models.keys().cloned().collect()
}

pub fn dump(models: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (k, v) in models {
        out.push((k.clone(), *v));
    }
    out
}
