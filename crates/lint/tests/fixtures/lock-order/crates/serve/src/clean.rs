//! Fixture: both functions respect the same global order (`a` before
//! `b`), and `release_early` drops its first guard before taking the
//! second — no cycle either way.

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn release_early(&self) -> u64 {
        let gb = self.b.lock();
        let x = *gb;
        drop(gb);
        let ga = self.a.lock();
        *ga + x
    }
}
