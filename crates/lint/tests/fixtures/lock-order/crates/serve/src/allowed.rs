//! Fixture: the same cycle as `fires.rs`, waived at the reported
//! anchor site (the first edge of the cycle's witness path).

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        // qpp-lint: allow(lock-order)
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga - *gb
    }
}
