//! Fixture: `forward` acquires `a` then `b`; `backward` acquires `b`
//! then `a`. The composed lock graph has the cycle
//! `serve::a -> serve::b -> serve::a`, reported once with both edges
//! as the witness.

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga - *gb
    }
}
