//! Fixture: wall-clock reads in deterministic model code must be
//! rejected.

use std::time::Instant;

pub fn seed_from_clock() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
