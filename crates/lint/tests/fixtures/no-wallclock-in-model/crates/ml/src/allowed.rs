//! Fixture: the directive mechanically suppresses the rule (policy
//! still says wall-clock code belongs outside the model crates).

use std::time::Instant; // qpp-lint: allow(no-wallclock-in-model)

pub fn elapsed_nanos(start: Instant) -> u128 { // qpp-lint: allow(no-wallclock-in-model)
    start.elapsed().as_nanos()
}
