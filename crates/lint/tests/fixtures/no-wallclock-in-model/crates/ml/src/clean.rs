//! Fixture: time taken as a parameter passes.

pub fn seed_from_param(nanos: u64) -> u64 {
    nanos.wrapping_mul(6364136223846793005)
}
