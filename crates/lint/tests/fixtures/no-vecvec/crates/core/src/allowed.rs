//! Fixture: both directive spellings suppress the rule.

// qpp-lint: allow(no-vecvec)
pub fn rows() -> Vec<Vec<f64>> {
    Vec::new()
}

pub fn legacy() -> Vec<Vec<f64>> { // allow-vecvec
    Vec::new()
}
