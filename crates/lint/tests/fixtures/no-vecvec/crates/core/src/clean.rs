//! Fixture: contiguous storage passes.

pub fn rows() -> Vec<f64> {
    vec![1.0, 2.0, 3.0, 4.0]
}

pub fn names() -> Vec<Vec<u8>> {
    Vec::new()
}
