//! Fixture: nested row vectors in library code must be rejected.

pub fn rows() -> Vec<Vec<f64>> {
    vec![vec![1.0, 2.0], vec![3.0, 4.0]]
}
