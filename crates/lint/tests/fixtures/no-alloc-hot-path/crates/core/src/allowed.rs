//! Fixture: a justified opt-out for a provably non-allocating collect.

// qpp-lint: hot-path
pub fn predict_ids(indices: &[usize]) -> usize {
    // Collecting into an inline small-vec does not touch the heap.
    // qpp-lint: allow(no-alloc-hot-path)
    let ids: Vec<usize> = indices.iter().copied().collect();
    ids.len()
}
