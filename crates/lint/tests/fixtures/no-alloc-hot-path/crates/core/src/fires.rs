//! Fixture: allocating constructs inside a marked hot function.

// qpp-lint: hot-path
pub fn predict_into(row: &[f64], out: &mut Vec<f64>) {
    let tmp = vec![0.0; row.len()];
    let copied = tmp.clone();
    out.extend(copied.iter().copied());
}

pub fn cold_path_is_free() -> Vec<f64> {
    vec![1.0, 2.0]
}
