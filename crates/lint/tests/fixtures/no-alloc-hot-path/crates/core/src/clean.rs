//! Fixture: scratch-buffer reuse inside a marked hot function passes.

// qpp-lint: hot-path
pub fn predict_into(row: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(row.len());
    out.extend(row.iter().map(|v| v * 2.0));
    out.resize(row.len(), 0.0);
}
