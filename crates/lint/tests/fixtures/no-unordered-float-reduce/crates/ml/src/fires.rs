//! Fixture: bare float reductions in model code must be rejected.

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

pub fn peak(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

pub fn norm_sq(xs: &[f64]) -> f64 {
    xs.iter().map(|v| v * v).sum::<f64>()
}
