//! Fixture: integer reductions are order-free and pass.

pub fn count(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

pub fn width(xs: &[u32]) -> u64 {
    let total: u64 = xs.iter().map(|&v| v as u64).sum();
    total
}

pub fn deepest(xs: &[usize]) -> usize {
    xs.iter().copied().fold(0usize, usize::max)
}
