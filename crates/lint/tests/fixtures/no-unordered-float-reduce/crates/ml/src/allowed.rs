//! Fixture: an opted-out float reduction (the canonical-helper pattern).

pub fn ordered_total(xs: &[f64]) -> f64 {
    // qpp-lint: allow(no-unordered-float-reduce)
    xs.iter().fold(0.0, |acc, v| acc + v)
}
