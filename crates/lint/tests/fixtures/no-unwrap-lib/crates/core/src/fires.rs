//! Fixture: panicking escape hatches in library code must be rejected.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn must(v: Result<u64, String>) -> u64 {
    v.expect("must succeed")
}

pub fn bail() -> u64 {
    panic!("library code must not panic")
}
