//! Fixture: typed errors and fallbacks pass.

pub fn first(v: &[u64]) -> Option<u64> {
    v.first().copied()
}

pub fn with_default(v: Option<u64>) -> u64 {
    v.unwrap_or(0)
}

pub fn propagate(v: Result<u64, String>) -> Result<u64, String> {
    let n = v?;
    Ok(n + 1)
}
