//! Fixture: a justified invariant may opt out.

pub fn must(v: Option<u64>) -> u64 {
    // The only caller fills `v` unconditionally.
    // qpp-lint: allow(no-unwrap-lib)
    v.expect("invariant: always Some")
}
