//! Fixture: the same unjustified sites as `fires.rs`, each waived with
//! an allow directive (which also suppresses the pairing check anchored
//! at the store site).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    ready: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        // qpp-lint: allow(atomic-ordering-audit)
        self.ready.store(1, Ordering::Relaxed);
    }

    pub fn is_ready(&self) -> bool {
        // qpp-lint: allow(atomic-ordering-audit)
        self.ready.load(Ordering::Acquire) == 1
    }
}
