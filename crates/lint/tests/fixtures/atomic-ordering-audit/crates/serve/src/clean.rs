//! Fixture: every `Ordering` use carries an `// ordering:`
//! justification, and the store/load pair is Release/Acquire — nothing
//! fires.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    ready: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        // ordering: Release publishes the flag; pairs with the Acquire
        // load in `is_ready`.
        self.ready.store(1, Ordering::Release);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) == 1 // ordering: pairs with `publish`
    }
}
