//! Fixture: unjustified `Ordering` uses fire the audit, and the
//! Relaxed-store/Acquire-load mismatch on `ready` fires the pairing
//! check on top of them.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    ready: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Relaxed);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) == 1
    }
}
