//! Fixture: the same allocating chain as `fires.rs`, but `reshape` is
//! declared a deliberate boundary with `// qpp-lint: cold-path` — the
//! sanctioned way to stop propagation (preferred over a per-line
//! allow, because it documents the design decision at the function).

// qpp-lint: hot-path
pub fn admit(xs: &[f64], out: &mut Vec<f64>) {
    stage(xs, out);
}

fn stage(xs: &[f64], out: &mut Vec<f64>) {
    reshape(xs, out);
}

// qpp-lint: cold-path — slow-path reshaping is allowed to allocate.
fn reshape(xs: &[f64], out: &mut Vec<f64>) {
    let scratch = xs.to_vec();
    out.extend_from_slice(&scratch);
}
