//! Fixture: the hot-path root `admit` never allocates itself, but it
//! reaches `reshape` two calls down, and `reshape` does — the
//! propagated `no-alloc-hot-path` check fires there with the full call
//! chain as provenance.

// qpp-lint: hot-path
pub fn admit(xs: &[f64], out: &mut Vec<f64>) {
    stage(xs, out);
}

fn stage(xs: &[f64], out: &mut Vec<f64>) {
    reshape(xs, out);
}

fn reshape(xs: &[f64], out: &mut Vec<f64>) {
    let scratch = xs.to_vec();
    out.extend_from_slice(&scratch);
}
