//! Fixture: the same call chain as `fires.rs`, but the leaf writes
//! into the caller-provided buffer instead of allocating — nothing
//! propagates.

// qpp-lint: hot-path
pub fn admit(xs: &[f64], out: &mut Vec<f64>) {
    stage(xs, out);
}

fn stage(xs: &[f64], out: &mut Vec<f64>) {
    reshape(xs, out);
}

fn reshape(xs: &[f64], out: &mut Vec<f64>) {
    for x in xs {
        out.push(*x * 2.0);
    }
}
