//! Fixture corpus: every rule has a `fires` / `clean` / `allowed`
//! triple under `tests/fixtures/<rule>/crates/<crate>/src/`, laid out
//! like real workspace paths so crate-scope filters apply exactly as
//! they do in production code.

use qpp_lint::{lint_paths, Diagnostic};

fn lint_fixture(rule: &str, which: &str) -> Vec<Diagnostic> {
    // Integration tests run with the package root as cwd.
    let crate_dir = match rule {
        "no-unordered-float-reduce" | "no-wallclock-in-model" => "ml",
        "no-hashmap-iter-order" | "atomic-ordering-audit" | "lock-order" => "serve",
        _ => "core",
    };
    let path = format!("tests/fixtures/{rule}/crates/{crate_dir}/src/{which}.rs");
    let (diags, errors) = lint_paths(&[path]);
    assert!(errors.is_empty(), "fixture read errors: {errors:?}");
    diags
}

const ALL_RULES: &[(&str, usize)] = &[
    ("no-vecvec", 1),
    ("no-alloc-hot-path", 2),
    ("no-unordered-float-reduce", 3),
    ("no-hashmap-iter-order", 2),
    ("no-unwrap-lib", 3),
    ("no-wallclock-in-model", 2),
    // Workspace-level passes: fires.rs yields 3 atomic findings (two
    // unjustified sites plus the Relaxed-store/Acquire-load pairing)
    // and exactly one lock-order cycle report.
    ("atomic-ordering-audit", 3),
    ("lock-order", 1),
];

#[test]
fn fires_fixtures_fire_exactly_their_rule() {
    for &(rule, expected) in ALL_RULES {
        let diags = lint_fixture(rule, "fires");
        assert_eq!(
            diags.len(),
            expected,
            "{rule}/fires.rs should yield {expected} diagnostics, got {diags:?}"
        );
        for d in &diags {
            assert_eq!(d.rule, rule, "unexpected cross-rule finding: {d:?}");
            assert!(d.line > 0 && d.col > 0, "spans are 1-based: {d:?}");
            assert!(!d.snippet.is_empty(), "snippet missing: {d:?}");
        }
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for &(rule, _) in ALL_RULES {
        let diags = lint_fixture(rule, "clean");
        assert!(diags.is_empty(), "{rule}/clean.rs should pass: {diags:?}");
    }
}

#[test]
fn allow_directives_suppress_their_rule() {
    for &(rule, _) in ALL_RULES {
        let diags = lint_fixture(rule, "allowed");
        assert!(diags.is_empty(), "{rule}/allowed.rs should pass: {diags:?}");
    }
}

#[test]
fn spans_are_exact() {
    let diags = lint_fixture("no-vecvec", "fires");
    assert_eq!((diags[0].line, diags[0].col), (3, 18));
    assert_eq!(diags[0].snippet, "pub fn rows() -> Vec<Vec<f64>> {");

    let diags = lint_fixture("no-unwrap-lib", "fires");
    let spans: Vec<(u32, u32, &str)> = diags
        .iter()
        .map(|d| (d.line, d.col, d.snippet.as_str()))
        .collect();
    assert_eq!(
        spans,
        vec![
            (4, 16, "*v.first().unwrap()"),
            (8, 7, "v.expect(\"must succeed\")"),
            (12, 5, "panic!(\"library code must not panic\")"),
        ]
    );
}

#[test]
fn directory_walk_aggregates_and_sorts() {
    let (diags, errors) = lint_paths(&["tests/fixtures/no-vecvec".to_string()]);
    assert!(errors.is_empty());
    // allowed.rs and clean.rs contribute nothing; fires.rs one finding.
    assert_eq!(diags.len(), 1);
    assert!(diags[0].path.ends_with("fires.rs"));
}
