//! The linter's own acceptance test: the real workspace is clean.
//!
//! This is the same check `ci.sh` runs as its first gate; keeping it in
//! the test suite means `cargo test` alone catches a regression in any
//! crate — including edits that bypass ci.sh.

use qpp_lint::lint_paths;

#[test]
fn live_workspace_has_no_violations() {
    let crates_dir = format!("{}/../../crates", env!("CARGO_MANIFEST_DIR"));
    let (diags, errors) = lint_paths(&[crates_dir]);
    assert!(errors.is_empty(), "walk errors: {errors:?}");
    assert!(
        diags.is_empty(),
        "workspace must be lint-clean; run `cargo run -p qpp-lint -- crates`:\n{}",
        qpp_lint::render_human(&diags)
    );
}

/// The observability crate sits on the serve hot path, so it gets the
/// strictest treatment: not only lint-clean, but with ZERO opt-outs of
/// the allocation rule. Recording an event must be allocation-free by
/// construction, not by waiver.
#[test]
fn obs_crate_is_lint_clean_with_no_alloc_waivers() {
    let obs_dir = format!("{}/../../crates/obs", env!("CARGO_MANIFEST_DIR"));
    let (diags, errors) = lint_paths(std::slice::from_ref(&obs_dir));
    assert!(errors.is_empty(), "walk errors: {errors:?}");
    assert!(
        diags.is_empty(),
        "qpp-obs must be lint-clean:\n{}",
        qpp_lint::render_human(&diags)
    );

    let mut sources = Vec::new();
    let src_dir = std::path::Path::new(&obs_dir).join("src");
    for entry in std::fs::read_dir(&src_dir).expect("read crates/obs/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            sources.push(path);
        }
    }
    assert!(!sources.is_empty(), "crates/obs/src holds Rust sources");
    for path in sources {
        let text = std::fs::read_to_string(&path).expect("read obs source");
        assert!(
            !text.contains("allow(no-alloc-hot-path)"),
            "{} opts out of no-alloc-hot-path; the obs hot path must be \
             allocation-free without waivers",
            path.display()
        );
    }
}

/// Every atomic `Ordering` choice in the workspace is justified by a
/// real `// ordering:` comment — never waived. A waiver would let an
/// undocumented ordering through the audit, which defeats its purpose:
/// the justification IS the deliverable, and writing one is never
/// harder than writing the allow directive.
#[test]
fn workspace_has_zero_atomic_ordering_waivers() {
    let crates_dir = format!("{}/../../crates", env!("CARGO_MANIFEST_DIR"));
    // Assembled at runtime so this test's own source never contains
    // the needle it hunts for.
    let needle = format!("allow({})", "atomic-ordering-audit");
    let mut stack = vec![std::path::PathBuf::from(&crates_dir)];
    let mut sources = 0usize;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read workspace dir") {
            let path = entry.expect("dir entry").path();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                sources += 1;
                let text = std::fs::read_to_string(&path).expect("read source");
                assert!(
                    !text.contains(&needle),
                    "{} waives the atomic-ordering audit; justify the ordering \
                     with an `// ordering:` comment instead",
                    path.display()
                );
            }
        }
    }
    assert!(sources > 50, "workspace walk found only {sources} sources");
}

/// The sharded serve data plane (queue push/drain, stats cells, tenant
/// resolution, registry routing) is covered by `no-alloc-hot-path`
/// markers rather than exempted from them: the admission gate and the
/// deficit-round-robin drain run on every request, so they must stay
/// allocation-free by construction. This pins both directions — the
/// markers exist (a refactor can't silently drop the coverage) and no
/// waiver weakens them.
#[test]
fn serve_hot_paths_stay_marked_and_waiver_free() {
    let serve_dir = format!("{}/../../crates/serve", env!("CARGO_MANIFEST_DIR"));
    let (diags, errors) = lint_paths(std::slice::from_ref(&serve_dir));
    assert!(errors.is_empty(), "walk errors: {errors:?}");
    assert!(
        diags.is_empty(),
        "qpp-serve must be lint-clean:\n{}",
        qpp_lint::render_human(&diags)
    );

    let src_dir = std::path::Path::new(&serve_dir).join("src");
    let mut markers = 0usize;
    let mut sources = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("read crates/serve/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        sources += 1;
        let text = std::fs::read_to_string(&path).expect("read serve source");
        markers += text.matches("qpp-lint: hot-path").count();
        assert!(
            !text.contains("allow(no-alloc-hot-path)"),
            "{} opts out of no-alloc-hot-path; serve data-plane code must \
             be allocation-free without waivers",
            path.display()
        );
        assert!(
            !text.contains("qpp-lint: allow("),
            "{} carries a lint waiver; qpp-serve must be clean without \
             opt-outs",
            path.display()
        );
    }
    assert!(sources >= 5, "crates/serve/src holds the pipeline modules");
    assert!(
        markers >= 10,
        "expected >= 10 hot-path markers across crates/serve/src, found \
         {markers}; the admission/drain/stats fast paths must stay under \
         the no-alloc rule"
    );
}

/// The continuous-learning crate records errors on the completion path
/// and feeds the deterministic drift detector, so it gets the same
/// treatment as qpp-obs: lint-clean with ZERO rule waivers of any kind.
/// Epoch-driven determinism (`no-wallclock-in-model` now covers
/// `adapt`) and the alloc/ordering rules must hold by construction.
#[test]
fn adapt_crate_is_lint_clean_with_no_waivers() {
    let adapt_dir = format!("{}/../../crates/adapt", env!("CARGO_MANIFEST_DIR"));
    let (diags, errors) = lint_paths(std::slice::from_ref(&adapt_dir));
    assert!(errors.is_empty(), "walk errors: {errors:?}");
    assert!(
        diags.is_empty(),
        "qpp-adapt must be lint-clean:\n{}",
        qpp_lint::render_human(&diags)
    );

    let mut sources = Vec::new();
    let src_dir = std::path::Path::new(&adapt_dir).join("src");
    for entry in std::fs::read_dir(&src_dir).expect("read crates/adapt/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            sources.push(path);
        }
    }
    assert!(!sources.is_empty(), "crates/adapt/src holds Rust sources");
    for path in sources {
        let text = std::fs::read_to_string(&path).expect("read adapt source");
        assert!(
            !text.contains("qpp-lint: allow("),
            "{} carries a lint waiver; qpp-adapt must be clean without \
             opt-outs",
            path.display()
        );
    }
}
