//! The linter's own acceptance test: the real workspace is clean.
//!
//! This is the same check `ci.sh` runs as its first gate; keeping it in
//! the test suite means `cargo test` alone catches a regression in any
//! crate — including edits that bypass ci.sh.

use qpp_lint::lint_paths;

#[test]
fn live_workspace_has_no_violations() {
    let crates_dir = format!("{}/../../crates", env!("CARGO_MANIFEST_DIR"));
    let (diags, errors) = lint_paths(&[crates_dir]);
    assert!(errors.is_empty(), "walk errors: {errors:?}");
    assert!(
        diags.is_empty(),
        "workspace must be lint-clean; run `cargo run -p qpp-lint -- crates`:\n{}",
        qpp_lint::render_human(&diags)
    );
}
