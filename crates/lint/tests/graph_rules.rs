//! Acceptance tests for the workspace-level passes: hot-path
//! propagation through the call graph, the lock-order deadlock
//! detector, and the atomic-ordering audit. The seeded fixtures pin
//! exact spans and witness paths so the analyses stay deterministic.

use qpp_lint::lint_report;

fn fixture(rule: &str, which: &str) -> String {
    format!("tests/fixtures/{rule}/crates/serve/src/{which}.rs")
}

#[test]
fn cross_function_allocation_fires_with_call_chain_witness() {
    let path = fixture("hot-path-propagation", "fires");
    let r = lint_report(std::slice::from_ref(&path));
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.rule, "no-alloc-hot-path");
    // Exact file:line witness at the allocation two calls from the root.
    assert_eq!((d.line, d.col), (16, 22));
    assert_eq!(d.snippet, "let scratch = xs.to_vec();");
    assert!(d.message.contains("`to_vec`"), "{}", d.message);
    assert!(d.message.contains("`reshape`"), "{}", d.message);
    // Root-to-leaf provenance chain, one step per call edge.
    assert_eq!(
        d.provenance,
        vec![
            format!("{path}:8: `admit` (hot-path root) calls `stage`"),
            format!("{path}:12: `stage` calls `reshape`"),
        ]
    );
    // Graph bookkeeping: one root, two functions hot by propagation.
    assert_eq!(r.stats.hot_roots, 1);
    assert_eq!(r.stats.hot_propagated, 2);
    assert_eq!(r.stats.call_edges, 2);
}

#[test]
fn cold_path_marker_stops_propagation() {
    let r = lint_report(&[fixture("hot-path-propagation", "allowed")]);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    // The chain is cut at `reshape`: only `stage` becomes hot.
    assert_eq!(r.stats.hot_roots, 1);
    assert_eq!(r.stats.hot_propagated, 1);
}

#[test]
fn seeded_lock_cycle_reports_deterministic_witness_path() {
    let path = fixture("lock-order", "fires");
    let r = lint_report(std::slice::from_ref(&path));
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.rule, "lock-order");
    // Anchored at the first edge of the cycle (smallest lock first).
    assert_eq!((d.line, d.col), (14, 25));
    assert_eq!(d.snippet, "let gb = self.b.lock();");
    assert!(
        d.message
            .contains("lock-order cycle serve::a -> serve::b -> serve::a"),
        "{}",
        d.message
    );
    // Both edges of the cycle, as file:line witnesses.
    assert_eq!(
        d.provenance,
        vec![
            format!("{path}:14: `Pair::forward` acquires `serve::b` while holding `serve::a`"),
            format!("{path}:20: `Pair::backward` acquires `serve::a` while holding `serve::b`"),
        ]
    );
    assert_eq!(r.stats.lock_sites, 4);
    assert_eq!(r.stats.lock_edges, 2);

    // Determinism: repeated runs produce the identical report.
    let again = lint_report(&[path]);
    assert_eq!(again.diagnostics.len(), 1);
    assert_eq!(again.diagnostics[0].message, d.message);
    assert_eq!(again.diagnostics[0].provenance, d.provenance);
}

#[test]
fn guard_dropped_before_second_lock_is_not_an_edge() {
    let r = lint_report(&[fixture("lock-order", "clean")]);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    // `forward` contributes the one a→b edge; `release_early` drops its
    // `b` guard before taking `a`, so no b→a edge exists.
    assert_eq!(r.stats.lock_edges, 1);
}

#[test]
fn atomic_audit_counts_justified_and_unjustified_sites() {
    let r = lint_report(&[fixture("atomic-ordering-audit", "fires")]);
    assert_eq!(r.stats.atomic_sites, 2);
    assert_eq!(r.stats.atomic_justified, 0);
    let pairing = r
        .diagnostics
        .iter()
        .find(|d| d.message.contains("synchronizes with nothing"))
        .expect("Relaxed-store/Acquire-load pairing fires");
    assert!(
        pairing.provenance[0].contains("Acquire load of `ready`"),
        "{:?}",
        pairing.provenance
    );

    let clean = lint_report(&[fixture("atomic-ordering-audit", "clean")]);
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
    assert_eq!(clean.stats.atomic_sites, 2);
    assert_eq!(clean.stats.atomic_justified, 2);
}

#[test]
fn new_rules_have_explanations() {
    for rule in ["atomic-ordering-audit", "lock-order"] {
        let info = qpp_lint::rule_info(rule).expect("rule is registered");
        assert!(!info.explain.is_empty(), "{rule} has --explain text");
    }
}
