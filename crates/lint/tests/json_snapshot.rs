//! Snapshot of the machine-readable `--json` output format.
//!
//! The JSON shape is consumed by CI tooling; changing it is a breaking
//! change and must be deliberate — update the snapshot alongside the
//! version field.

use qpp_lint::{json, lint_paths};

#[test]
fn json_output_matches_snapshot() {
    let path = "tests/fixtures/no-vecvec/crates/core/src/fires.rs";
    let (diags, errors) = lint_paths(&[path.to_string()]);
    assert!(errors.is_empty(), "{errors:?}");
    let expected = r#"{
  "version": 1,
  "count": 1,
  "diagnostics": [
    {
      "rule": "no-vecvec",
      "file": "tests/fixtures/no-vecvec/crates/core/src/fires.rs",
      "line": 3,
      "col": 18,
      "message": "nested `Vec<Vec<f64>>` in library code — use a contiguous `Matrix`/`MatrixView` instead",
      "snippet": "pub fn rows() -> Vec<Vec<f64>> {"
    }
  ]
}
"#;
    assert_eq!(json::to_json(&diags), expected);
}

#[test]
fn json_escapes_special_characters() {
    let diags = qpp_lint::lint_source(
        "virtual/crates/core/src/lib.rs",
        "pub fn f(v: Option<u64>) -> u64 {\n    v.expect(\"tab\\there\")\n}\n".to_string(),
    );
    assert_eq!(diags.len(), 1);
    let out = json::to_json(&diags);
    // The snippet contains a quoted string: it must arrive escaped.
    assert!(out.contains(r#"v.expect(\"tab\\there\")"#), "{out}");
    let empty = json::to_json(&[]);
    assert!(empty.contains("\"count\": 0"), "{empty}");
}
