//! Snapshot of the machine-readable `--json` output format.
//!
//! The JSON shape is consumed by CI tooling; changing it is a breaking
//! change and must be deliberate — update the snapshot alongside the
//! version field. v2 added the `graph` statistics block and the
//! per-diagnostic `provenance` array.

use qpp_lint::{json, lint_report};

#[test]
fn json_output_matches_snapshot() {
    let path = "tests/fixtures/no-vecvec/crates/core/src/fires.rs";
    let r = lint_report(&[path.to_string()]);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    let expected = r#"{
  "version": 2,
  "count": 1,
  "graph": {
    "files": 1,
    "functions": 1,
    "call_edges": 0,
    "hot_roots": 0,
    "hot_propagated": 0,
    "lock_sites": 0,
    "lock_edges": 0,
    "atomic_sites": 0,
    "atomic_justified": 0
  },
  "diagnostics": [
    {
      "rule": "no-vecvec",
      "file": "tests/fixtures/no-vecvec/crates/core/src/fires.rs",
      "line": 3,
      "col": 18,
      "message": "nested `Vec<Vec<f64>>` in library code — use a contiguous `Matrix`/`MatrixView` instead",
      "snippet": "pub fn rows() -> Vec<Vec<f64>> {",
      "provenance": []
    }
  ]
}
"#;
    assert_eq!(json::to_json(&r.diagnostics, &r.stats), expected);
}

#[test]
fn json_carries_provenance_for_workspace_findings() {
    let path = "tests/fixtures/lock-order/crates/serve/src/fires.rs";
    let r = lint_report(&[path.to_string()]);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    let out = json::to_json(&r.diagnostics, &r.stats);
    assert!(out.contains("\"rule\": \"lock-order\""), "{out}");
    assert!(out.contains("\"lock_sites\": 4"), "{out}");
    assert!(out.contains("\"lock_edges\": 2"), "{out}");
    assert!(
        out.contains("acquires `serve::a` while holding `serve::b`"),
        "{out}"
    );
}

#[test]
fn json_escapes_special_characters() {
    let diags = qpp_lint::lint_source(
        "virtual/crates/core/src/lib.rs",
        "pub fn f(v: Option<u64>) -> u64 {\n    v.expect(\"tab\\there\")\n}\n".to_string(),
    );
    assert_eq!(diags.len(), 1);
    let stats = qpp_lint::GraphStats::default();
    let out = json::to_json(&diags, &stats);
    // The snippet contains a quoted string: it must arrive escaped.
    assert!(out.contains(r#"v.expect(\"tab\\there\")"#), "{out}");
    let empty = json::to_json(&[], &stats);
    assert!(empty.contains("\"count\": 0"), "{empty}");
}
