//! Logical query specification.
//!
//! A [`QuerySpec`] is the hand-off between the workload generator and the
//! database engine. It separates two kinds of information the same way a
//! real system does:
//!
//! * *Syntactic / statistical descriptors* (predicate ops, domain
//!   fractions, column NDVs) — everything the **optimizer** is allowed to
//!   see when estimating cardinalities.
//! * *Ground-truth selectivities and join fan-outs* — properties of the
//!   (simulated) data that only the **executor** consults. The gap
//!   between the two is the cardinality-estimation error the paper names
//!   as a main source of prediction difficulty (§I).

use serde::{Deserialize, Serialize};

/// Predicate operator, carrying what the optimizer can see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredOp {
    /// `col = const`; the optimizer estimates `1 / ndv`.
    Eq,
    /// `col <> const`; estimate `1 - 1/ndv`.
    Neq,
    /// `col BETWEEN a AND b` where the syntactic range covers `fraction`
    /// of the column domain; the optimizer estimates `fraction`
    /// (uniformity assumption).
    Range {
        /// Fraction of the domain covered by the literal range.
        fraction: f64,
    },
    /// `col IN (v1..vk)`; estimate `k / ndv`.
    InList {
        /// Number of list items.
        items: u32,
    },
    /// `col LIKE 'pattern%'`; the optimizer uses a fixed magic fraction,
    /// as real optimizers do.
    Like,
}

impl PredOp {
    /// True for non-equality comparisons (drives the paper's SQL-text
    /// feature "number of non-equality selection predicates").
    pub fn is_equality(&self) -> bool {
        matches!(self, PredOp::Eq | PredOp::InList { .. })
    }
}

/// A selection predicate on one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateSpec {
    /// Index into [`QuerySpec::tables`].
    pub table: usize,
    /// Column name (must exist in the schema table).
    pub column: String,
    /// Operator + syntactic descriptor.
    pub op: PredOp,
    /// Ground-truth selectivity of this predicate on the simulated data.
    /// The executor uses this; the optimizer never sees it.
    pub true_selectivity: f64,
}

/// Join kind as written in the SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Equi-join on key columns.
    Equi,
    /// Non-equi join (range/band join); far more expensive to execute.
    NonEqui,
}

/// A join edge between two tables of the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// Index of the left table in [`QuerySpec::tables`].
    pub left: usize,
    /// Index of the right table.
    pub right: usize,
    /// Join column on the left side (for NDV lookup).
    pub left_column: String,
    /// Join column on the right side.
    pub right_column: String,
    /// Kind of join predicate.
    pub kind: JoinKind,
    /// Ground-truth fan-out multiplier relative to the textbook
    /// `|L||R| / max(ndv_L, ndv_R)` estimate. 1.0 = estimate is exact;
    /// skewed keys push this well above 1.
    pub true_fanout_factor: f64,
}

/// A nested subquery, executed as a semi-join against its table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubquerySpec {
    /// Index of the outer table the subquery correlates with.
    pub outer_table: usize,
    /// Name of the inner table scanned by the subquery.
    pub inner_table: String,
    /// Fraction of outer rows that survive the semi-join (ground truth).
    pub true_pass_fraction: f64,
    /// Number of predicates inside the subquery (SQL-text feature only).
    pub inner_predicates: u32,
}

/// A complete logical query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Template that produced this query (for bookkeeping/debugging).
    pub template: String,
    /// Unique id within its workload.
    pub id: u64,
    /// Referenced base tables; index 0 is the driving (largest) table.
    pub tables: Vec<String>,
    /// Join edges; must connect the tables into one component.
    pub joins: Vec<JoinSpec>,
    /// Selection predicates.
    pub predicates: Vec<PredicateSpec>,
    /// Nested subqueries (semi-joins).
    pub subqueries: Vec<SubquerySpec>,
    /// Number of GROUP BY columns (0 = none).
    pub group_by_cols: u32,
    /// Number of aggregate expressions in the select list.
    pub agg_cols: u32,
    /// Number of ORDER BY columns (0 = none).
    pub order_by_cols: u32,
    /// Whether the query is `SELECT DISTINCT`.
    pub distinct: bool,
    /// Optional LIMIT.
    pub limit: Option<u64>,
}

impl QuerySpec {
    /// Number of join predicates of the given kind.
    pub fn join_count(&self, kind: JoinKind) -> usize {
        self.joins.iter().filter(|j| j.kind == kind).count()
    }

    /// Validates internal consistency (indices in range, selectivities in
    /// `(0, 1]`, join graph connected). Returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.tables.len();
        if n == 0 {
            return Err("query references no tables".into());
        }
        for p in &self.predicates {
            if p.table >= n {
                return Err(format!("predicate table index {} out of range", p.table));
            }
            if !(p.true_selectivity > 0.0 && p.true_selectivity <= 1.0) {
                return Err(format!(
                    "predicate selectivity {} outside (0,1]",
                    p.true_selectivity
                ));
            }
        }
        for j in &self.joins {
            if j.left >= n || j.right >= n || j.left == j.right {
                return Err(format!("bad join edge {} -> {}", j.left, j.right));
            }
            if j.true_fanout_factor <= 0.0 {
                return Err("non-positive join fanout".into());
            }
        }
        for s in &self.subqueries {
            if s.outer_table >= n {
                return Err("subquery outer table out of range".into());
            }
            if !(s.true_pass_fraction > 0.0 && s.true_pass_fraction <= 1.0) {
                return Err("subquery pass fraction outside (0,1]".into());
            }
        }
        // Connectivity: union-find over join edges.
        if n > 1 {
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            for j in &self.joins {
                let (a, b) = (find(&mut parent, j.left), find(&mut parent, j.right));
                parent[a] = b;
            }
            let root = find(&mut parent, 0);
            for i in 1..n {
                if find(&mut parent, i) != root {
                    return Err(format!("table {} ({}) not joined", i, self.tables[i]));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_query() -> QuerySpec {
        QuerySpec {
            template: "t".into(),
            id: 1,
            tables: vec!["store_sales".into(), "date_dim".into()],
            joins: vec![JoinSpec {
                left: 0,
                right: 1,
                left_column: "ss_sold_date_sk".into(),
                right_column: "d_date_sk".into(),
                kind: JoinKind::Equi,
                true_fanout_factor: 1.0,
            }],
            predicates: vec![PredicateSpec {
                table: 1,
                column: "d_year".into(),
                op: PredOp::Eq,
                true_selectivity: 0.005,
            }],
            subqueries: vec![],
            group_by_cols: 1,
            agg_cols: 2,
            order_by_cols: 1,
            distinct: false,
            limit: None,
        }
    }

    #[test]
    fn valid_query_passes() {
        assert_eq!(tiny_query().validate(), Ok(()));
    }

    #[test]
    fn detects_disconnected_join_graph() {
        let mut q = tiny_query();
        q.tables.push("item".into());
        let err = q.validate().unwrap_err();
        assert!(err.contains("not joined"));
    }

    #[test]
    fn detects_bad_selectivity() {
        let mut q = tiny_query();
        q.predicates[0].true_selectivity = 0.0;
        assert!(q.validate().is_err());
        q.predicates[0].true_selectivity = 1.5;
        assert!(q.validate().is_err());
    }

    #[test]
    fn detects_out_of_range_indices() {
        let mut q = tiny_query();
        q.predicates[0].table = 9;
        assert!(q.validate().is_err());
        let mut q2 = tiny_query();
        q2.joins[0].right = 9;
        assert!(q2.validate().is_err());
    }

    #[test]
    fn join_count_by_kind() {
        let q = tiny_query();
        assert_eq!(q.join_count(JoinKind::Equi), 1);
        assert_eq!(q.join_count(JoinKind::NonEqui), 0);
    }

    #[test]
    fn predop_equality_classification() {
        assert!(PredOp::Eq.is_equality());
        assert!(PredOp::InList { items: 3 }.is_equality());
        assert!(!PredOp::Range { fraction: 0.1 }.is_equality());
        assert!(!PredOp::Like.is_equality());
        assert!(!PredOp::Neq.is_equality());
    }
}
