//! SQL text rendering for [`QuerySpec`]s.
//!
//! The rendered text is what a DBA would see in the query log; it is the
//! input to the SQL-text feature extractor (paper Fig. 8) and makes the
//! examples and experiment output human-readable. The renderer is
//! deterministic: the same spec always renders to the same string.

use crate::spec::{JoinKind, PredOp, QuerySpec};
use std::fmt::Write;

/// Renders a query spec as SQL text.
pub fn render(q: &QuerySpec) -> String {
    let mut s = String::with_capacity(256);
    let alias = |i: usize| format!("t{i}");

    // SELECT list.
    s.push_str("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    let mut select_items = Vec::new();
    for g in 0..q.group_by_cols {
        select_items.push(format!("{}.col_g{}", alias(0), g));
    }
    for a in 0..q.agg_cols {
        let f = ["SUM", "AVG", "COUNT", "MIN", "MAX"][a as usize % 5];
        select_items.push(format!("{}({}.col_a{})", f, alias(0), a));
    }
    if select_items.is_empty() {
        select_items.push(format!("{}.*", alias(0)));
    }
    s.push_str(&select_items.join(", "));

    // FROM clause.
    s.push_str("\nFROM ");
    let froms: Vec<String> = q
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{} {}", t, alias(i)))
        .collect();
    s.push_str(&froms.join(", "));

    // WHERE clause: joins then selections then subqueries.
    let mut conds = Vec::new();
    for j in &q.joins {
        match j.kind {
            JoinKind::Equi => conds.push(format!(
                "{}.{} = {}.{}",
                alias(j.left),
                j.left_column,
                alias(j.right),
                j.right_column
            )),
            JoinKind::NonEqui => conds.push(format!(
                "{}.{} BETWEEN {}.{} - 30 AND {}.{} + 30",
                alias(j.left),
                j.left_column,
                alias(j.right),
                j.right_column,
                alias(j.right),
                j.right_column
            )),
        }
    }
    for p in &q.predicates {
        let lhs = format!("{}.{}", alias(p.table), p.column);
        let cond = match p.op {
            PredOp::Eq => format!("{lhs} = :c{}", conds.len()),
            PredOp::Neq => format!("{lhs} <> :c{}", conds.len()),
            PredOp::Range { fraction } => {
                format!(
                    "{lhs} BETWEEN :lo{} AND :hi{} /* ~{:.4}% of domain */",
                    conds.len(),
                    conds.len(),
                    fraction * 100.0
                )
            }
            PredOp::InList { items } => {
                let list: Vec<String> = (0..items).map(|k| format!(":v{k}")).collect();
                format!("{lhs} IN ({})", list.join(", "))
            }
            PredOp::Like => format!("{lhs} LIKE :pat{}%", conds.len()),
        };
        conds.push(cond);
    }
    for (k, sub) in q.subqueries.iter().enumerate() {
        let inner_preds: Vec<String> = (0..sub.inner_predicates)
            .map(|i| format!("x.col_{i} = :s{k}_{i}"))
            .collect();
        let where_inner = if inner_preds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", inner_preds.join(" AND "))
        };
        conds.push(format!(
            "{}.key IN (SELECT x.key FROM {} x{})",
            alias(sub.outer_table),
            sub.inner_table,
            where_inner
        ));
    }
    if !conds.is_empty() {
        s.push_str("\nWHERE ");
        s.push_str(&conds.join("\n  AND "));
    }

    // GROUP BY / ORDER BY / LIMIT.
    if q.group_by_cols > 0 {
        let cols: Vec<String> = (0..q.group_by_cols)
            .map(|g| format!("{}.col_g{}", alias(0), g))
            .collect();
        let _ = write!(s, "\nGROUP BY {}", cols.join(", "));
    }
    if q.order_by_cols > 0 {
        let cols: Vec<String> = (0..q.order_by_cols).map(|o| format!("{}", o + 1)).collect();
        let _ = write!(s, "\nORDER BY {}", cols.join(", "));
    }
    if let Some(limit) = q.limit {
        let _ = write!(s, "\nLIMIT {limit}");
    }
    s.push(';');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::spec::{JoinSpec, PredicateSpec, SubquerySpec};

    fn sample() -> QuerySpec {
        QuerySpec {
            template: "t".into(),
            id: 0,
            tables: vec!["store_sales".into(), "date_dim".into()],
            joins: vec![JoinSpec {
                left: 0,
                right: 1,
                left_column: "ss_sold_date_sk".into(),
                right_column: "d_date_sk".into(),
                kind: JoinKind::Equi,
                true_fanout_factor: 1.0,
            }],
            predicates: vec![PredicateSpec {
                table: 1,
                column: "d_year".into(),
                op: PredOp::Eq,
                true_selectivity: 0.005,
            }],
            subqueries: vec![SubquerySpec {
                outer_table: 0,
                inner_table: "item".into(),
                true_pass_fraction: 0.1,
                inner_predicates: 2,
            }],
            group_by_cols: 2,
            agg_cols: 1,
            order_by_cols: 1,
            distinct: true,
            limit: Some(100),
        }
    }

    #[test]
    fn renders_all_clauses() {
        let sql = render(&sample());
        assert!(sql.contains("SELECT DISTINCT"));
        assert!(sql.contains("FROM store_sales t0, date_dim t1"));
        assert!(sql.contains("t0.ss_sold_date_sk = t1.d_date_sk"));
        assert!(sql.contains("t1.d_year = :c"));
        assert!(sql.contains("IN (SELECT x.key FROM item x"));
        assert!(sql.contains("GROUP BY"));
        assert!(sql.contains("ORDER BY 1"));
        assert!(sql.contains("LIMIT 100"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(&sample()), render(&sample()));
    }

    #[test]
    fn renders_generated_workload_without_panics() {
        let mut g = WorkloadGenerator::tpcds(1.0, 21);
        for q in g.generate(100) {
            let sql = render(&q);
            assert!(sql.starts_with("SELECT"));
            assert!(sql.len() > 20);
        }
    }

    #[test]
    fn nonequi_join_renders_between() {
        let mut q = sample();
        q.joins[0].kind = JoinKind::NonEqui;
        assert!(render(&q).contains("BETWEEN t1.d_date_sk - 30"));
    }
}
