//! The "customer" database of the paper's Experiment 4.
//!
//! The paper evaluated schema transfer: train on TPC-DS, predict on
//! queries against a customer's production database with a different
//! schema. The customer queries available to the authors were "all
//! extremely short-running (mini-feathers)". We model an operational
//! retail-banking-ish schema whose workload consists of very selective
//! point/lookup queries.

use crate::schema::{Column, Schema, Table};
use crate::templates::{Template, TemplateClass};

/// The customer schema: operational, narrower tables, different names
/// and cardinalities than TPC-DS.
pub fn customer_schema(scale_factor: f64) -> Schema {
    let c = Column::new;
    fn t(name: &str, rows: u64, fact: bool, cols: Vec<Column>) -> Table {
        Table {
            name: name.to_string(),
            base_rows: rows,
            fact,
            columns: cols,
        }
    }
    Schema {
        name: "customer".to_string(),
        scale_factor,
        tables: vec![
            t(
                "transactions",
                4_000_000,
                true,
                vec![
                    c("tx_date_sk", 1100, 4, 0.3),
                    c("tx_account_sk", 400_000, 4, 0.5),
                    c("tx_branch_sk", 50, 4, 0.4),
                    c("tx_product_sk", 180, 4, 0.5),
                    c("tx_amount", 250_000, 8, 0.2),
                    c("tx_pad", 1, 32, 0.0),
                ],
            ),
            t(
                "accounts",
                400_000,
                false,
                vec![
                    c("acct_sk", 400_000, 4, 0.0),
                    c("acct_segment", 8, 4, 0.3),
                    c("acct_open_year", 30, 4, 0.2),
                    c("acct_pad", 1, 60, 0.0),
                ],
            ),
            t(
                "branches",
                50,
                false,
                vec![
                    c("br_sk", 50, 4, 0.0),
                    c("br_region", 6, 4, 0.2),
                    c("br_pad", 1, 80, 0.0),
                ],
            ),
            t(
                "products",
                180,
                false,
                vec![
                    c("pr_sk", 180, 4, 0.0),
                    c("pr_family", 12, 4, 0.2),
                    c("pr_pad", 1, 48, 0.0),
                ],
            ),
            t(
                "calendar",
                3_650,
                false,
                vec![
                    c("cal_sk", 3_650, 4, 0.0),
                    c("cal_year", 10, 4, 0.0),
                    c("cal_month", 12, 4, 0.0),
                    c("cal_pad", 1, 20, 0.0),
                ],
            ),
        ],
    }
}

/// Customer templates: very selective operational queries
/// ("mini-feathers") — sub-second to a few seconds.
pub fn customer_suite() -> Vec<Template> {
    fn dims() -> Vec<(String, String, String, String)> {
        [
            ("calendar", "tx_date_sk", "cal_sk", "cal_month"),
            ("accounts", "tx_account_sk", "acct_sk", "acct_segment"),
            ("branches", "tx_branch_sk", "br_sk", "br_region"),
            ("products", "tx_product_sk", "pr_sk", "pr_family"),
        ]
        .iter()
        .map(|(a, b, c, d)| (a.to_string(), b.to_string(), c.to_string(), d.to_string()))
        .collect()
    }
    vec![
        Template {
            name: "cust_account_activity".into(),
            class: TemplateClass::Reporting,
            weight: 3.0,
            fact: "transactions".into(),
            extra_facts: vec![],
            dims: dims(),
            dim_range: (1, 2),
            driving_sel_log10: Some((-6.0, -4.0)),
            extra_preds: (0, 2),
            nonequi_prob: 0.0,
            group_by: (0, 2),
            agg: (1, 3),
            order_by: (0, 1),
            subquery_prob: 0.05,
            est_error_sigma: 0.2,
            fanout_log10: (0.0, 0.0),
        },
        Template {
            name: "cust_branch_daily".into(),
            class: TemplateClass::Reporting,
            weight: 2.0,
            fact: "transactions".into(),
            extra_facts: vec![],
            dims: dims(),
            dim_range: (1, 3),
            driving_sel_log10: Some((-5.5, -3.5)),
            extra_preds: (1, 3),
            nonequi_prob: 0.0,
            group_by: (1, 3),
            agg: (1, 3),
            order_by: (0, 2),
            subquery_prob: 0.05,
            est_error_sigma: 0.25,
            fanout_log10: (0.0, 0.0),
        },
        Template {
            name: "cust_product_lookup".into(),
            class: TemplateClass::AdHoc,
            weight: 2.0,
            fact: "transactions".into(),
            extra_facts: vec![],
            dims: dims(),
            dim_range: (1, 2),
            driving_sel_log10: Some((-6.5, -4.5)),
            extra_preds: (0, 1),
            nonequi_prob: 0.0,
            group_by: (0, 1),
            agg: (0, 2),
            order_by: (0, 1),
            subquery_prob: 0.0,
            est_error_sigma: 0.2,
            fanout_log10: (0.0, 0.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;

    #[test]
    fn schema_differs_from_tpcds() {
        let cust = customer_schema(1.0);
        let tpcds = Schema::tpcds(1.0);
        assert_eq!(cust.tables.len(), 5);
        for t in &cust.tables {
            assert!(tpcds.table(&t.name).is_none(), "{} collides", t.name);
        }
    }

    #[test]
    fn customer_queries_are_highly_selective() {
        let mut g = WorkloadGenerator::new(customer_schema(1.0), customer_suite(), 4);
        for q in g.generate(100) {
            assert_eq!(q.validate(), Ok(()));
            // Driving predicate selectivity stays tiny (mini-feathers).
            let driving = q
                .predicates
                .iter()
                .find(|p| p.table == 0)
                .expect("driving predicate");
            assert!(
                driving.true_selectivity < 0.05,
                "selectivity {} too high",
                driving.true_selectivity
            );
        }
    }
}
