//! SQL-text feature extraction (the paper's first, unsuccessful feature
//! vector — §VI-D.1 and Fig. 8).
//!
//! Nine statistics computed from the SQL statement alone: the paper
//! found these insufficient because "two textually similar queries may
//! have dramatically different performance due simply to different
//! selection predicate constants". We keep the extractor precisely so
//! the experiments can demonstrate that failure.

use crate::spec::{JoinKind, QuerySpec};
use serde::{Deserialize, Serialize};

/// The paper's 9-element SQL-text feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SqlTextFeatures {
    /// Number of nested subqueries.
    pub nested_subqueries: u32,
    /// Total number of selection predicates (outer + subquery bodies).
    pub selection_predicates: u32,
    /// Number of equality selection predicates.
    pub equality_predicates: u32,
    /// Number of non-equality selection predicates.
    pub non_equality_predicates: u32,
    /// Total number of join predicates.
    pub join_predicates: u32,
    /// Number of equi-join predicates.
    pub equijoin_predicates: u32,
    /// Number of non-equi-join predicates.
    pub non_equijoin_predicates: u32,
    /// Number of sort (ORDER BY) columns.
    pub sort_columns: u32,
    /// Number of aggregation columns.
    pub aggregation_columns: u32,
}

impl SqlTextFeatures {
    /// Extracts the features from a query spec.
    pub fn from_spec(q: &QuerySpec) -> Self {
        let equality = q.predicates.iter().filter(|p| p.op.is_equality()).count() as u32;
        let total_sel = q.predicates.len() as u32
            + q.subqueries.iter().map(|s| s.inner_predicates).sum::<u32>();
        let equijoins = q.join_count(JoinKind::Equi) as u32;
        let nonequijoins = q.join_count(JoinKind::NonEqui) as u32;
        SqlTextFeatures {
            nested_subqueries: q.subqueries.len() as u32,
            selection_predicates: total_sel,
            equality_predicates: equality,
            non_equality_predicates: q.predicates.len() as u32 - equality,
            join_predicates: equijoins + nonequijoins,
            equijoin_predicates: equijoins,
            non_equijoin_predicates: nonequijoins,
            sort_columns: q.order_by_cols,
            aggregation_columns: q.agg_cols,
        }
    }

    /// The feature vector as `f64`s, in the order listed by the paper.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.nested_subqueries as f64,
            self.selection_predicates as f64,
            self.equality_predicates as f64,
            self.non_equality_predicates as f64,
            self.join_predicates as f64,
            self.equijoin_predicates as f64,
            self.non_equijoin_predicates as f64,
            self.sort_columns as f64,
            self.aggregation_columns as f64,
        ]
    }

    /// Dimensionality of the vector (always 9, the paper's count).
    pub const DIM: usize = 9;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::spec::{JoinSpec, PredOp, PredicateSpec, SubquerySpec};

    #[test]
    fn counts_match_spec() {
        let q = QuerySpec {
            template: "t".into(),
            id: 0,
            tables: vec!["a".into(), "b".into(), "c".into()],
            joins: vec![
                JoinSpec {
                    left: 0,
                    right: 1,
                    left_column: "x".into(),
                    right_column: "y".into(),
                    kind: JoinKind::Equi,
                    true_fanout_factor: 1.0,
                },
                JoinSpec {
                    left: 0,
                    right: 2,
                    left_column: "x".into(),
                    right_column: "z".into(),
                    kind: JoinKind::NonEqui,
                    true_fanout_factor: 1.0,
                },
            ],
            predicates: vec![
                PredicateSpec {
                    table: 0,
                    column: "c1".into(),
                    op: PredOp::Eq,
                    true_selectivity: 0.1,
                },
                PredicateSpec {
                    table: 1,
                    column: "c2".into(),
                    op: PredOp::Range { fraction: 0.2 },
                    true_selectivity: 0.2,
                },
                PredicateSpec {
                    table: 2,
                    column: "c3".into(),
                    op: PredOp::InList { items: 3 },
                    true_selectivity: 0.05,
                },
            ],
            subqueries: vec![SubquerySpec {
                outer_table: 0,
                inner_table: "item".into(),
                true_pass_fraction: 0.5,
                inner_predicates: 2,
            }],
            group_by_cols: 1,
            agg_cols: 4,
            order_by_cols: 2,
            distinct: false,
            limit: None,
        };
        let f = SqlTextFeatures::from_spec(&q);
        assert_eq!(f.nested_subqueries, 1);
        assert_eq!(f.selection_predicates, 5); // 3 outer + 2 inner
        assert_eq!(f.equality_predicates, 2); // Eq + InList
        assert_eq!(f.non_equality_predicates, 1); // Range
        assert_eq!(f.join_predicates, 2);
        assert_eq!(f.equijoin_predicates, 1);
        assert_eq!(f.non_equijoin_predicates, 1);
        assert_eq!(f.sort_columns, 2);
        assert_eq!(f.aggregation_columns, 4);
    }

    #[test]
    fn vector_has_nine_dims() {
        let mut g = WorkloadGenerator::tpcds(1.0, 17);
        let q = g.generate_one();
        let v = SqlTextFeatures::from_spec(&q).to_vec();
        assert_eq!(v.len(), SqlTextFeatures::DIM);
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn identical_shapes_yield_identical_features() {
        // The Fig. 8 failure mode: same template shape, different
        // constants → same SQL features. Construct two specs differing
        // only in selectivity.
        let mut g = WorkloadGenerator::tpcds(1.0, 31);
        let q1 = g.generate_one();
        let mut q2 = q1.clone();
        for p in &mut q2.predicates {
            p.true_selectivity = (p.true_selectivity * 0.001).max(1e-8);
        }
        assert_eq!(
            SqlTextFeatures::from_spec(&q1),
            SqlTextFeatures::from_spec(&q2)
        );
    }
}
