//! Parameterized query templates.
//!
//! The paper generated thousands of queries from (a) the official TPC-DS
//! templates, which at scale factor 1 produced almost exclusively
//! sub-3-minute "feathers", and (b) new templates written against the
//! TPC-DS schema to mimic real customer problem queries — the source of
//! the "golf balls" (3–30 min) and "bowling balls" (30 min – 2 h).
//!
//! A template fixes the SQL *shape*: which fact table drives the query,
//! which dimensions may join in, how many predicates/aggregates/sort
//! columns appear. Instantiation draws the *constants* — predicate
//! selectivities (log-uniform across orders of magnitude), join
//! fan-outs, group-by arity. As the paper stresses (§IV-B), the same
//! template can yield a three-minute query or an hours-long one
//! depending on the constants chosen.

use crate::schema::Schema;
use crate::spec::{JoinKind, JoinSpec, PredOp, PredicateSpec, QuerySpec, SubquerySpec};
use crate::world;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Broad class of a template; used to weight workload mixes and to
/// label experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateClass {
    /// Standard TPC-DS-style reporting query (star join + aggregate).
    Reporting,
    /// Ad-hoc analytical query with wider parameter ranges.
    AdHoc,
    /// Fact-to-fact join (sales vs. returns, cross-channel).
    CrossFact,
    /// "Problem" template modeled on the customer queries that ran 4+
    /// hours on production systems: huge intermediates, misestimated
    /// selectivities, occasional non-equi joins.
    Problem,
}

/// A candidate dimension join for a fact table:
/// `(dim table, fact join column, dim join column, dim predicate column)`.
type DimJoin = (&'static str, &'static str, &'static str, &'static str);

/// A parameterized query template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Template {
    /// Template name, e.g. `tpcds_store_monthly`.
    pub name: String,
    /// Class (drives workload mixes).
    pub class: TemplateClass,
    /// Relative sampling weight inside a workload.
    pub weight: f64,
    /// Driving fact table.
    pub fact: String,
    /// Additional fact tables joined to the driver:
    /// `(table, driver column, other column)`.
    pub extra_facts: Vec<(String, String, String)>,
    /// Candidate dimension joins.
    pub dims: Vec<(String, String, String, String)>,
    /// Min/max number of dimension joins to draw.
    pub dim_range: (usize, usize),
    /// log10 range of the driving range-predicate selectivity on the
    /// fact table (e.g. `(-4.0, -0.5)` spans 0.01% to ~32%). `None`
    /// means full fact scan.
    pub driving_sel_log10: Option<(f64, f64)>,
    /// Min/max extra predicates on joined dimensions.
    pub extra_preds: (u32, u32),
    /// Probability that a fact-fact join is written as a non-equi
    /// (band) join.
    pub nonequi_prob: f64,
    /// Min/max GROUP BY columns.
    pub group_by: (u32, u32),
    /// Min/max aggregate expressions.
    pub agg: (u32, u32),
    /// Min/max ORDER BY columns.
    pub order_by: (u32, u32),
    /// Probability of a nested (semi-join) subquery.
    pub subquery_prob: f64,
    /// log10 standard deviation of true-vs-estimated selectivity error.
    /// Standard templates ≈ 0.25; problem templates up to ≈ 0.8, which
    /// is what defeats uniformity-based cardinality estimation.
    pub est_error_sigma: f64,
    /// log10 range of the extra-fact join fan-out factor (1.0 = textbook
    /// estimate is exact).
    pub fanout_log10: (f64, f64),
}

impl Template {
    /// Instantiates the template into a concrete [`QuerySpec`].
    ///
    /// A query is a **structural variant** of its template plus a set of
    /// **constants**. Like real benchmark templates, a template's SQL
    /// shape barely varies: the variant id (a small integer) picks one
    /// of a handful of fixed shapes — which dimensions join in, how
    /// many predicates/aggregates appear — via a variant-seeded RNG, so
    /// the same (template, variant) always produces the same structure.
    /// Only the constants (range widths, literal ids) vary freely,
    /// which is what creates the near-duplicate queries the paper's
    /// nearest-neighbor prediction thrives on.
    pub fn instantiate(&self, schema: &Schema, id: u64, rng: &mut impl Rng) -> QuerySpec {
        // Structural RNG: deterministic per (template, variant).
        let variant = rng.random_range(0..Self::VARIANTS);
        let mut srng = StdRng::seed_from_u64(
            (world::hashed_unit(&[&self.name, "variant"], variant) * u32::MAX as f64) as u64,
        );

        let mut tables = vec![self.fact.clone()];
        let mut joins = Vec::new();
        let mut predicates = Vec::new();

        // Extra fact tables.
        for (tbl, lcol, rcol) in &self.extra_facts {
            let idx = tables.len();
            tables.push(tbl.clone());
            let kind = if srng.random_bool(self.nonequi_prob) {
                JoinKind::NonEqui
            } else {
                JoinKind::Equi
            };
            // Fan-out is a property of the data: pinned to the join
            // columns plus a small phase (which filtered subset of the
            // key domain the query touches).
            let phase = rng.random_range(0..4u64);
            joins.push(JoinSpec {
                left: 0,
                right: idx,
                left_column: lcol.clone(),
                right_column: rcol.clone(),
                kind,
                true_fanout_factor: world::join_fanout(lcol, rcol, phase, self.fanout_log10),
            });
        }

        // Dimension joins: the subset is part of the variant's structure.
        let n_dims = if self.dims.is_empty() {
            0
        } else {
            let hi = self.dim_range.1.min(self.dims.len());
            let lo = self.dim_range.0.min(hi);
            srng.random_range(lo..=hi)
        };
        let mut dim_pool: Vec<usize> = (0..self.dims.len()).collect();
        for _ in 0..n_dims {
            let pick = srng.random_range(0..dim_pool.len());
            let (dim, fcol, dcol, pcol) = &self.dims[dim_pool.swap_remove(pick)];
            let idx = tables.len();
            tables.push(dim.clone());
            joins.push(JoinSpec {
                left: 0,
                right: idx,
                left_column: fcol.clone(),
                right_column: dcol.clone(),
                kind: JoinKind::Equi,
                // Dimension joins are key joins: fan-out is near-exact,
                // and fixed by the data.
                true_fanout_factor: world::join_fanout(fcol, dcol, 0, (-0.04, 0.04)),
            });
            // Whether the dimension carries a predicate is structure;
            // the predicate's constant comes from the free RNG.
            if srng.random_bool(0.7) {
                predicates.push(self.draw_predicate(schema, idx, dim, pcol, &mut srng, rng));
            }
        }

        // Driving range predicate on the fact table (typically the date
        // surrogate key — TPC-DS queries restrict the sold-date range).
        if let Some((lo, hi)) = self.driving_sel_log10 {
            let date_col = schema
                .table(&self.fact)
                .and_then(|t| t.columns.first())
                .map(|c| c.name.clone())
                .unwrap_or_else(|| "date_sk".to_string());
            // Constants come from a discrete grid of range widths x
            // positions — real template instantiation draws dates from a
            // limited calendar, so repeats occur, and repeated constants
            // see the same data (same truth).
            const WIDTHS: u64 = 10;
            const PHASES: u64 = 3;
            let w = rng.random_range(0..WIDTHS);
            let phase = rng.random_range(0..PHASES);
            let u = lo + (hi - lo) * (w as f64 + 0.5) / WIDTHS as f64;
            let fraction = 10f64.powf(u).clamp(1e-8, 1.0);
            let true_sel = world::true_selectivity(
                &self.fact,
                &date_col,
                "range",
                w * PHASES + phase,
                fraction,
                self.est_error_sigma,
            );
            predicates.push(PredicateSpec {
                table: 0,
                column: date_col,
                op: PredOp::Range { fraction },
                true_selectivity: true_sel,
            });
        }

        // Extra predicates on fixed (per-variant) fact measure columns.
        let n_extra = srng.random_range(self.extra_preds.0..=self.extra_preds.1);
        if let Some(fact_table) = schema.table(&self.fact) {
            for _ in 0..n_extra {
                let col = &fact_table.columns[srng.random_range(0..fact_table.columns.len())];
                predicates.push(self.draw_measure_predicate(0, &col.name, col.ndv, &mut srng, rng));
            }
        }

        // Optional nested subquery (semi-join) — presence is structure.
        let mut subqueries = Vec::new();
        if srng.random_bool(self.subquery_prob) {
            let inner = if srng.random_bool(0.5) {
                "item"
            } else {
                "customer"
            };
            let constant_id = rng.random_range(0..4u64);
            subqueries.push(SubquerySpec {
                outer_table: 0,
                inner_table: inner.to_string(),
                true_pass_fraction: world::subquery_pass_fraction(inner, constant_id),
                inner_predicates: srng.random_range(1..=3),
            });
        }

        let group_by_cols = srng.random_range(self.group_by.0..=self.group_by.1);
        let agg_cols = srng.random_range(self.agg.0..=self.agg.1);
        let order_by_cols = srng.random_range(self.order_by.0..=self.order_by.1);

        QuerySpec {
            template: self.name.clone(),
            id,
            tables,
            joins,
            predicates,
            subqueries,
            group_by_cols,
            agg_cols,
            order_by_cols,
            distinct: srng.random_bool(0.1),
            limit: if srng.random_bool(0.15) {
                Some(srng.random_range(10..1000))
            } else {
                None
            },
        }
    }

    /// Structural variants per template.
    pub const VARIANTS: u64 = 4;

    fn draw_predicate(
        &self,
        schema: &Schema,
        table_idx: usize,
        table: &str,
        column: &str,
        srng: &mut impl Rng,
        rng: &mut impl Rng,
    ) -> PredicateSpec {
        let (ndv, skew) = schema
            .table(table)
            .and_then(|t| t.column(column))
            .map(|c| (c.ndv.max(1), c.skew))
            .unwrap_or((100, 0.0));
        // The operator is part of the variant's structure; the constant
        // id is drawn freely. Templates pick literals from small
        // domains, so constants repeat across queries — and repeated
        // constants share their ground truth.
        let roll: f64 = srng.random();
        let (op, op_tag, constant_id, est) = if roll < 0.5 {
            let c = rng.random_range(0..ndv.min(10));
            (PredOp::Eq, "eq", c, 1.0 / ndv as f64)
        } else if roll < 0.75 {
            let items = srng.random_range(2..=8u32).min(ndv as u32);
            let c = rng.random_range(0..4u64);
            (
                PredOp::InList { items },
                "in",
                c * 16 + items as u64,
                items as f64 / ndv as f64,
            )
        } else if roll < 0.9 {
            let w = rng.random_range(0..6u64);
            let fraction = 10f64.powf(-2.0 + 1.8 * (w as f64 + 0.5) / 6.0);
            (PredOp::Range { fraction }, "range", w, fraction)
        } else {
            let c = rng.random_range(0..4u64);
            (PredOp::Like, "like", c, 0.05)
        };
        // Ground truth deviates more on skewed columns — an equality
        // predicate on a Zipf-heavy value can match far more rows than
        // 1/ndv suggests.
        let sigma = self.est_error_sigma * (1.0 + 2.0 * skew);
        let true_selectivity =
            world::true_selectivity(table, column, op_tag, constant_id, est, sigma);
        PredicateSpec {
            table: table_idx,
            column: column.to_string(),
            op,
            true_selectivity,
        }
    }

    fn draw_measure_predicate(
        &self,
        table_idx: usize,
        column: &str,
        ndv: u64,
        srng: &mut impl Rng,
        rng: &mut impl Rng,
    ) -> PredicateSpec {
        let roll: f64 = srng.random();
        let (op, op_tag, constant_id, est) = if roll < 0.4 {
            let w = rng.random_range(0..6u64);
            let fraction = 10f64.powf(-1.5 + 1.4 * (w as f64 + 0.5) / 6.0);
            (PredOp::Range { fraction }, "range", w, fraction)
        } else if roll < 0.7 {
            let c = rng.random_range(0..ndv.clamp(1, 10));
            (PredOp::Eq, "eq", c, 1.0 / ndv.max(1) as f64)
        } else {
            let c = rng.random_range(0..ndv.clamp(1, 10));
            (PredOp::Neq, "neq", c, 1.0 - 1.0 / ndv.max(2) as f64)
        };
        let true_selectivity = world::true_selectivity(
            "fact_measure",
            column,
            op_tag,
            constant_id,
            est,
            self.est_error_sigma,
        );
        PredicateSpec {
            table: table_idx,
            column: column.to_string(),
            op,
            true_selectivity,
        }
    }
}

/// Draws `10^u` with `u` uniform in the given log10 range.
#[cfg_attr(not(test), allow(dead_code))]
fn log10_uniform(rng: &mut impl Rng, (lo, hi): (f64, f64)) -> f64 {
    let u = if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    };
    10f64.powf(u)
}

/// Standard normal via Box–Muller (rand_distr is not in the offline set).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Dimension-join candidates for each TPC-DS fact table.
fn dims_for(fact: &str) -> Vec<DimJoin> {
    match fact {
        "store_sales" => vec![
            ("date_dim", "ss_sold_date_sk", "d_date_sk", "d_year"),
            ("item", "ss_item_sk", "i_item_sk", "i_category"),
            (
                "customer",
                "ss_customer_sk",
                "c_customer_sk",
                "c_birth_year",
            ),
            ("store", "ss_store_sk", "s_store_sk", "s_state"),
            ("promotion", "ss_promo_sk", "p_promo_sk", "p_channel_email"),
        ],
        "catalog_sales" => vec![
            ("date_dim", "cs_sold_date_sk", "d_date_sk", "d_year"),
            ("item", "cs_item_sk", "i_item_sk", "i_category"),
            (
                "customer",
                "cs_bill_customer_sk",
                "c_customer_sk",
                "c_birth_year",
            ),
            (
                "call_center",
                "cs_call_center_sk",
                "cc_call_center_sk",
                "cc_call_center_sk",
            ),
            (
                "ship_mode",
                "cs_ship_mode_sk",
                "sm_ship_mode_sk",
                "sm_ship_mode_sk",
            ),
        ],
        "web_sales" => vec![
            ("date_dim", "ws_sold_date_sk", "d_date_sk", "d_year"),
            ("item", "ws_item_sk", "i_item_sk", "i_category"),
            (
                "customer",
                "ws_bill_customer_sk",
                "c_customer_sk",
                "c_birth_year",
            ),
            ("web_site", "ws_web_site_sk", "web_site_sk", "web_site_sk"),
        ],
        "inventory" => vec![
            ("date_dim", "inv_date_sk", "d_date_sk", "d_moy"),
            ("item", "inv_item_sk", "i_item_sk", "i_class"),
            (
                "warehouse",
                "inv_warehouse_sk",
                "w_warehouse_sk",
                "w_warehouse_sq_ft",
            ),
        ],
        "store_returns" => vec![
            ("date_dim", "sr_returned_date_sk", "d_date_sk", "d_year"),
            ("item", "sr_item_sk", "i_item_sk", "i_brand"),
            (
                "customer",
                "sr_customer_sk",
                "c_customer_sk",
                "c_preferred_cust_flag",
            ),
        ],
        _ => vec![("date_dim", "sold_date_sk", "d_date_sk", "d_year")],
    }
}

fn owned_dims(fact: &str) -> Vec<(String, String, String, String)> {
    dims_for(fact)
        .into_iter()
        .map(|(a, b, c, d)| (a.to_string(), b.to_string(), c.to_string(), d.to_string()))
        .collect()
}

/// The standard TPC-DS-style template suite plus the problem templates
/// (paper §IV-B). Thirty-two templates across the four classes.
pub fn tpcds_suite() -> Vec<Template> {
    let mut out = Vec::new();

    // ---- Reporting templates: one per fact table and reporting flavor.
    // Tight date ranges, star joins, aggregation → feathers.
    for (i, fact) in ["store_sales", "catalog_sales", "web_sales", "store_returns"]
        .iter()
        .enumerate()
    {
        for (j, (lo, hi)) in [(-3.5, -1.5), (-3.0, -1.0), (-2.5, -0.7)]
            .iter()
            .enumerate()
        {
            out.push(Template {
                name: format!("tpcds_report_{fact}_{j}"),
                class: TemplateClass::Reporting,
                weight: 3.0,
                fact: fact.to_string(),
                extra_facts: vec![],
                dims: owned_dims(fact),
                dim_range: (1, 3),
                driving_sel_log10: Some((*lo, *hi)),
                extra_preds: (0, 2),
                nonequi_prob: 0.0,
                group_by: (1, 4),
                agg: (1, 4),
                order_by: (0, 2),
                subquery_prob: if i == 0 && j == 0 { 0.2 } else { 0.05 },
                est_error_sigma: 0.2,
                fanout_log10: (0.0, 0.0),
            });
        }
    }

    // ---- Ad-hoc templates: wider selectivity ranges, more predicates.
    for (j, fact) in ["store_sales", "catalog_sales", "web_sales", "inventory"]
        .iter()
        .enumerate()
    {
        out.push(Template {
            name: format!("tpcds_adhoc_{fact}"),
            class: TemplateClass::AdHoc,
            weight: 2.0,
            fact: fact.to_string(),
            extra_facts: vec![],
            dims: owned_dims(fact),
            dim_range: (2, 4),
            driving_sel_log10: Some((-3.0, -0.1)),
            extra_preds: (1, 4),
            nonequi_prob: 0.0,
            group_by: (0, 6),
            agg: (1, 6),
            order_by: (0, 3),
            subquery_prob: 0.15,
            est_error_sigma: 0.3,
            fanout_log10: (0.0, 0.0),
        });
        // Full-scan variant (no driving predicate).
        if j < 2 {
            out.push(Template {
                name: format!("tpcds_adhoc_full_{fact}"),
                class: TemplateClass::AdHoc,
                weight: 1.0,
                fact: fact.to_string(),
                extra_facts: vec![],
                dims: owned_dims(fact),
                dim_range: (1, 3),
                driving_sel_log10: None,
                extra_preds: (1, 3),
                nonequi_prob: 0.0,
                group_by: (1, 5),
                agg: (1, 5),
                order_by: (0, 2),
                subquery_prob: 0.1,
                est_error_sigma: 0.3,
                fanout_log10: (0.0, 0.0),
            });
        }
    }

    // ---- Cross-fact templates: sales ⋈ returns / cross-channel.
    let crossfacts: Vec<(&str, &str, (&str, &str, &str))> = vec![
        (
            "sales_vs_returns_store",
            "store_sales",
            ("store_returns", "ss_item_sk", "sr_item_sk"),
        ),
        (
            "sales_vs_returns_catalog",
            "catalog_sales",
            ("catalog_returns", "cs_item_sk", "cr_item_sk"),
        ),
        (
            "cross_channel_sc",
            "store_sales",
            ("catalog_sales", "ss_customer_sk", "cs_bill_customer_sk"),
        ),
        (
            "cross_channel_sw",
            "store_sales",
            ("web_sales", "ss_item_sk", "ws_item_sk"),
        ),
        (
            "cross_channel_cw",
            "catalog_sales",
            ("web_sales", "cs_item_sk", "ws_item_sk"),
        ),
    ];
    for (name, fact, (xt, lc, rc)) in crossfacts {
        out.push(Template {
            name: format!("tpcds_{name}"),
            class: TemplateClass::CrossFact,
            weight: 1.5,
            fact: fact.to_string(),
            extra_facts: vec![(xt.to_string(), lc.to_string(), rc.to_string())],
            dims: owned_dims(fact),
            dim_range: (1, 3),
            driving_sel_log10: Some((-2.0, -0.1)),
            extra_preds: (0, 2),
            nonequi_prob: 0.0,
            group_by: (1, 4),
            agg: (1, 4),
            order_by: (0, 2),
            subquery_prob: 0.1,
            est_error_sigma: 0.35,
            // Item/customer-key fact-fact joins fan out heavily on skewed
            // keys: up to ~30x the textbook estimate.
            fanout_log10: (0.3, 1.5),
        });
    }

    // ---- Problem templates: modeled on the customer queries that ran
    // for 4+ hours (paper §IV-B). Loose or missing date restrictions,
    // multi-fact joins, occasional band joins, heavy estimation error.
    out.push(Template {
        name: "problem_runaway_crossjoin".into(),
        class: TemplateClass::Problem,
        weight: 0.8,
        fact: "store_sales".into(),
        extra_facts: vec![
            (
                "catalog_sales".into(),
                "ss_item_sk".into(),
                "cs_item_sk".into(),
            ),
            ("web_sales".into(), "ss_item_sk".into(), "ws_item_sk".into()),
        ],
        dims: owned_dims("store_sales"),
        dim_range: (0, 2),
        driving_sel_log10: Some((-2.2, -0.7)),
        extra_preds: (0, 1),
        nonequi_prob: 0.15,
        group_by: (1, 3),
        agg: (1, 3),
        order_by: (0, 2),
        subquery_prob: 0.2,
        est_error_sigma: 0.6,
        fanout_log10: (0.1, 0.7),
    });
    out.push(Template {
        name: "problem_band_join".into(),
        class: TemplateClass::Problem,
        weight: 0.7,
        fact: "catalog_sales".into(),
        extra_facts: vec![(
            "catalog_returns".into(),
            "cs_order_number".into(),
            "cr_order_number".into(),
        )],
        dims: owned_dims("catalog_sales"),
        dim_range: (0, 2),
        driving_sel_log10: Some((-1.5, -0.1)),
        extra_preds: (0, 2),
        nonequi_prob: 0.6,
        group_by: (0, 3),
        agg: (1, 4),
        order_by: (1, 3),
        subquery_prob: 0.15,
        est_error_sigma: 0.7,
        fanout_log10: (0.5, 1.2),
    });
    out.push(Template {
        name: "problem_inventory_blowup".into(),
        class: TemplateClass::Problem,
        weight: 1.2,
        fact: "inventory".into(),
        extra_facts: vec![(
            "store_sales".into(),
            "inv_item_sk".into(),
            "ss_item_sk".into(),
        )],
        dims: owned_dims("inventory"),
        dim_range: (1, 3),
        driving_sel_log10: Some((-1.5, -0.1)),
        extra_preds: (0, 1),
        nonequi_prob: 0.1,
        group_by: (1, 4),
        agg: (1, 4),
        order_by: (0, 2),
        subquery_prob: 0.1,
        est_error_sigma: 0.6,
        fanout_log10: (0.3, 0.9),
    });
    out.push(Template {
        name: "problem_skew_misestimate".into(),
        class: TemplateClass::Problem,
        weight: 0.8,
        fact: "store_sales".into(),
        extra_facts: vec![(
            "store_returns".into(),
            "ss_ticket_number".into(),
            "sr_ticket_number".into(),
        )],
        dims: owned_dims("store_sales"),
        dim_range: (1, 4),
        driving_sel_log10: Some((-4.0, -0.2)),
        extra_preds: (2, 5),
        nonequi_prob: 0.0,
        group_by: (1, 5),
        agg: (2, 6),
        order_by: (1, 3),
        subquery_prob: 0.3,
        est_error_sigma: 0.9,
        fanout_log10: (-0.2, 0.8),
    });
    out.push(Template {
        name: "problem_full_history".into(),
        class: TemplateClass::Problem,
        weight: 0.6,
        fact: "catalog_sales".into(),
        extra_facts: vec![(
            "web_sales".into(),
            "cs_bill_customer_sk".into(),
            "ws_bill_customer_sk".into(),
        )],
        dims: owned_dims("catalog_sales"),
        dim_range: (1, 3),
        driving_sel_log10: None, // full history scan, no date restriction
        extra_preds: (0, 1),
        nonequi_prob: 0.1,
        group_by: (2, 5),
        agg: (2, 5),
        order_by: (1, 2),
        subquery_prob: 0.25,
        est_error_sigma: 0.6,
        // Customer-key joins between channels: the handful of very
        // active customers dominate, inflating output 15-250x.
        fanout_log10: (1.2, 2.4),
    });
    // Dedicated long-running report templates, modeled on the nightly
    // rollups the paper's system administrators supplied: their typical
    // (not extreme) instantiation runs for tens of minutes to hours, so
    // the golf/bowling pools contain dense clusters of similar queries.
    out.push(Template {
        name: "problem_nightly_rollup".into(),
        class: TemplateClass::Problem,
        weight: 1.0,
        fact: "inventory".into(),
        extra_facts: vec![(
            "store_sales".into(),
            "inv_item_sk".into(),
            "ss_item_sk".into(),
        )],
        dims: owned_dims("inventory"),
        dim_range: (1, 2),
        driving_sel_log10: Some((-0.55, -0.1)),
        extra_preds: (0, 1),
        nonequi_prob: 0.0,
        group_by: (1, 3),
        agg: (1, 3),
        order_by: (0, 1),
        subquery_prob: 0.05,
        est_error_sigma: 0.3,
        fanout_log10: (0.5, 0.72),
    });
    out.push(Template {
        name: "problem_weekly_reconcile".into(),
        class: TemplateClass::Problem,
        weight: 1.0,
        fact: "store_sales".into(),
        extra_facts: vec![(
            "catalog_sales".into(),
            "ss_item_sk".into(),
            "cs_item_sk".into(),
        )],
        dims: owned_dims("store_sales"),
        dim_range: (1, 2),
        driving_sel_log10: Some((-0.8, -0.2)),
        extra_preds: (0, 1),
        nonequi_prob: 0.0,
        group_by: (1, 3),
        agg: (1, 3),
        order_by: (0, 1),
        subquery_prob: 0.05,
        est_error_sigma: 0.3,
        fanout_log10: (0.25, 0.5),
    });
    out.push(Template {
        name: "problem_wide_sort".into(),
        class: TemplateClass::Problem,
        weight: 0.6,
        fact: "store_sales".into(),
        extra_facts: vec![],
        dims: owned_dims("store_sales"),
        dim_range: (2, 5),
        driving_sel_log10: Some((-1.2, -0.01)),
        extra_preds: (0, 2),
        nonequi_prob: 0.0,
        group_by: (0, 1),
        agg: (0, 2),
        order_by: (3, 6),
        subquery_prob: 0.1,
        est_error_sigma: 0.5,
        fanout_log10: (0.0, 0.0),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn suite_has_all_classes() {
        let suite = tpcds_suite();
        assert!(suite.len() >= 25, "got {}", suite.len());
        for class in [
            TemplateClass::Reporting,
            TemplateClass::AdHoc,
            TemplateClass::CrossFact,
            TemplateClass::Problem,
        ] {
            assert!(suite.iter().any(|t| t.class == class), "{class:?} missing");
        }
    }

    #[test]
    fn every_template_instantiates_validly() {
        let schema = Schema::tpcds(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for t in tpcds_suite() {
            for k in 0..20 {
                let q = t.instantiate(&schema, k, &mut rng);
                assert_eq!(q.validate(), Ok(()), "template {}", t.name);
                // All referenced tables exist in the schema.
                for tbl in &q.tables {
                    assert!(schema.table(tbl).is_some(), "missing table {tbl}");
                }
            }
        }
    }

    #[test]
    fn instantiation_is_deterministic_under_seed() {
        let schema = Schema::tpcds(1.0);
        let t = &tpcds_suite()[0];
        let a = t.instantiate(&schema, 1, &mut StdRng::seed_from_u64(42));
        let b = t.instantiate(&schema, 1, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn same_template_varies_constants_not_shape() {
        // The Fig. 8 premise: shape (SQL-text features) can coincide while
        // selectivities differ by orders of magnitude.
        let schema = Schema::tpcds(1.0);
        let t = tpcds_suite()
            .into_iter()
            .find(|t| t.class == TemplateClass::AdHoc)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sels: Vec<f64> = (0..200)
            .map(|k| {
                let q = t.instantiate(&schema, k, &mut rng);
                q.predicates
                    .iter()
                    .map(|p| p.true_selectivity)
                    .product::<f64>()
            })
            .collect();
        let min = sels.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sels.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 100.0,
            "selectivity products span {min:e}..{max:e}"
        );
    }

    #[test]
    fn box_muller_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log10_uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = log10_uniform(&mut rng, (-3.0, -1.0));
            assert!((1e-3 * 0.999..=1e-1 * 1.001).contains(&v));
        }
        // Degenerate range returns the endpoint.
        assert_eq!(log10_uniform(&mut rng, (0.0, 0.0)), 1.0);
    }
}
