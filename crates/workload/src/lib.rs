//! TPC-DS-shaped workload generation for the ICDE 2009 reproduction.
//!
//! The paper trains on queries generated from TPC-DS templates at scale
//! factor 1 plus hand-written "problem" templates modeled on customer
//! queries that ran four-plus hours. We reproduce the *shape* of that
//! workload: a star-schema catalog with TPC-DS table names and row
//! counts, ~30 parameterized templates whose instantiations span
//! milliseconds to hours of simulated runtime, and a second, differently
//! shaped "customer" schema used by the paper's Experiment 4.
//!
//! Key property preserved from the paper (§IV-B and Fig. 8): *the same
//! template with different constants yields wildly different runtimes*.
//! Templates fix the SQL shape — join structure, predicate counts —
//! while the drawn constants fix selectivities, which are what actually
//! drive cost. SQL-text features are therefore nearly useless for
//! prediction, exactly as the paper found.

// Library code must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod customer;
pub mod features;
pub mod generator;
pub mod schema;
pub mod spec;
pub mod sql;
pub mod templates;
pub mod world;

pub use features::SqlTextFeatures;
pub use generator::WorkloadGenerator;
pub use schema::{Column, Schema, Table};
pub use spec::{JoinSpec, PredOp, PredicateSpec, QuerySpec, SubquerySpec};
pub use templates::{Template, TemplateClass};
