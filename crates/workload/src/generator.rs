//! Seeded workload generation.

use crate::schema::Schema;
use crate::spec::QuerySpec;
use crate::templates::{tpcds_suite, Template, TemplateClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates query workloads from a template suite against one schema.
///
/// Fully deterministic given the seed, so experiments are reproducible
/// bit for bit.
#[derive(Debug)]
pub struct WorkloadGenerator {
    schema: Schema,
    templates: Vec<Template>,
    cumulative_weights: Vec<f64>,
    rng: StdRng,
    next_id: u64,
}

impl WorkloadGenerator {
    /// Generator over the TPC-DS suite (standard + problem templates).
    pub fn tpcds(scale_factor: f64, seed: u64) -> Self {
        Self::new(Schema::tpcds(scale_factor), tpcds_suite(), seed)
    }

    /// Generator over an explicit template suite.
    pub fn new(schema: Schema, templates: Vec<Template>, seed: u64) -> Self {
        assert!(!templates.is_empty(), "template suite must be non-empty");
        let mut acc = 0.0;
        let cumulative_weights = templates
            .iter()
            .map(|t| {
                acc += t.weight.max(0.0);
                acc
            })
            .collect();
        WorkloadGenerator {
            schema,
            templates,
            cumulative_weights,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// The schema queries are generated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generates one query from a weighted-random template.
    pub fn generate_one(&mut self) -> QuerySpec {
        // The constructor rejects empty template lists, so the weight
        // table is never empty; the fallback keeps this path panic-free.
        let total = self.cumulative_weights.last().copied().unwrap_or(1.0);
        let roll: f64 = self.rng.random_range(0.0..total);
        let idx = self
            .cumulative_weights
            .partition_point(|&w| w <= roll)
            .min(self.templates.len() - 1);
        self.generate_from(idx)
    }

    /// Generates a batch of `n` queries.
    pub fn generate(&mut self, n: usize) -> Vec<QuerySpec> {
        (0..n).map(|_| self.generate_one()).collect()
    }

    /// Generates one query from the template at `idx`.
    pub fn generate_from(&mut self, idx: usize) -> QuerySpec {
        let id = self.next_id;
        self.next_id += 1;
        self.templates[idx].instantiate(&self.schema, id, &mut self.rng)
    }

    /// Generates `n` queries restricted to templates of `class`.
    pub fn generate_class(&mut self, class: TemplateClass, n: usize) -> Vec<QuerySpec> {
        let idxs: Vec<usize> = self
            .templates
            .iter()
            .enumerate()
            .filter(|(_, t)| t.class == class)
            .map(|(i, _)| i)
            .collect();
        assert!(!idxs.is_empty(), "no templates of class {class:?}");
        (0..n)
            .map(|_| {
                let i = idxs[self.rng.random_range(0..idxs.len())];
                self.generate_from(i)
            })
            .collect()
    }

    /// Template suite in use.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGenerator::tpcds(1.0, 99);
        let mut b = WorkloadGenerator::tpcds(1.0, 99);
        assert_eq!(a.generate(25), b.generate(25));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGenerator::tpcds(1.0, 1);
        let mut b = WorkloadGenerator::tpcds(1.0, 2);
        assert_ne!(a.generate(25), b.generate(25));
    }

    #[test]
    fn ids_unique_and_increasing() {
        let mut g = WorkloadGenerator::tpcds(1.0, 7);
        let qs = g.generate(50);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, i as u64);
        }
    }

    #[test]
    fn all_generated_queries_valid() {
        let mut g = WorkloadGenerator::tpcds(1.0, 5);
        for q in g.generate(300) {
            assert_eq!(q.validate(), Ok(()), "query {} ({})", q.id, q.template);
        }
    }

    #[test]
    fn class_restricted_generation() {
        let mut g = WorkloadGenerator::tpcds(1.0, 3);
        for q in g.generate_class(TemplateClass::Problem, 20) {
            assert!(q.template.starts_with("problem_"), "{}", q.template);
        }
    }

    #[test]
    fn weighted_sampling_covers_many_templates() {
        let mut g = WorkloadGenerator::tpcds(1.0, 13);
        let qs = g.generate(500);
        let mut names: Vec<&str> = qs.iter().map(|q| q.template.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() > 15, "only {} templates sampled", names.len());
    }
}
