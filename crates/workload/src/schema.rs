//! Star-schema catalog: tables, columns and base statistics.
//!
//! Row counts follow the TPC-DS specification at scale factor 1 (the
//! scale the paper used); fact tables scale linearly with the scale
//! factor while dimensions scale sublinearly (we approximate the TPC-DS
//! dimension scaling with a square-root law, which is close enough for
//! the cost relationships that matter here).

use serde::{Deserialize, Serialize};

/// A column with the statistics the optimizer and the data-generation
/// model need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (TPC-DS style, e.g. `ss_sold_date_sk`).
    pub name: String,
    /// Number of distinct values at scale factor 1.
    pub ndv: u64,
    /// Storage width in bytes.
    pub width: u32,
    /// Zipf-like skew exponent of the value distribution. 0 = uniform;
    /// larger values concentrate mass on few values, which is what makes
    /// uniformity-based cardinality estimates go wrong.
    pub skew: f64,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: &str, ndv: u64, width: u32, skew: f64) -> Self {
        Column {
            name: name.to_string(),
            ndv,
            width,
            skew,
        }
    }
}

/// A base table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Row count at scale factor 1.
    pub base_rows: u64,
    /// True when this is a fact table (scales linearly with SF, joined
    /// through surrogate keys by the dimensions).
    pub fact: bool,
    /// Columns.
    pub columns: Vec<Column>,
}

impl Table {
    /// Row count at the given scale factor.
    pub fn rows(&self, scale_factor: f64) -> u64 {
        let f = if self.fact {
            scale_factor
        } else {
            scale_factor.sqrt()
        };
        ((self.base_rows as f64) * f).round().max(1.0) as u64
    }

    /// Full row width in bytes.
    pub fn row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.width as u64).sum::<u64>()
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A schema: a named set of tables plus the scale factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema name (`tpcds` or `customer`).
    pub name: String,
    /// Scale factor; 1.0 matches the paper's setup.
    pub scale_factor: f64,
    /// Tables.
    pub tables: Vec<Table>,
}

impl Schema {
    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Row count of `table` at this schema's scale factor.
    pub fn rows(&self, table: &str) -> u64 {
        self.table(table)
            .map(|t| t.rows(self.scale_factor))
            .unwrap_or(0)
    }

    /// Total data volume in bytes at this scale factor.
    pub fn total_bytes(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| t.rows(self.scale_factor) * t.row_width())
            .sum::<u64>()
    }

    /// The TPC-DS-shaped schema at the given scale factor.
    ///
    /// Row counts are the TPC-DS SF-1 sizes; column NDVs/widths are
    /// representative, with deliberate skew on the columns real TPC-DS
    /// data skews on (sold-date, item, customer activity).
    pub fn tpcds(scale_factor: f64) -> Schema {
        fn t(name: &str, rows: u64, fact: bool, cols: Vec<Column>) -> Table {
            Table {
                name: name.to_string(),
                base_rows: rows,
                fact,
                columns: cols,
            }
        }
        let c = Column::new;
        let tables = vec![
            t(
                "store_sales",
                2_880_404,
                true,
                vec![
                    c("ss_sold_date_sk", 1823, 4, 0.4),
                    c("ss_item_sk", 18000, 4, 0.8),
                    c("ss_customer_sk", 100_000, 4, 0.6),
                    c("ss_store_sk", 12, 4, 0.3),
                    c("ss_promo_sk", 300, 4, 0.5),
                    c("ss_quantity", 100, 4, 0.0),
                    c("ss_sales_price", 20_000, 8, 0.2),
                    c("ss_ext_discount_amt", 100_000, 8, 0.2),
                    c("ss_net_profit", 150_000, 8, 0.2),
                    c("ss_ticket_number", 240_000, 8, 0.0),
                    c("ss_pad", 1, 48, 0.0),
                ],
            ),
            t(
                "catalog_sales",
                1_441_548,
                true,
                vec![
                    c("cs_sold_date_sk", 1823, 4, 0.4),
                    c("cs_item_sk", 18000, 4, 0.8),
                    c("cs_bill_customer_sk", 100_000, 4, 0.6),
                    c("cs_call_center_sk", 6, 4, 0.2),
                    c("cs_ship_mode_sk", 20, 4, 0.1),
                    c("cs_quantity", 100, 4, 0.0),
                    c("cs_sales_price", 20_000, 8, 0.2),
                    c("cs_net_profit", 150_000, 8, 0.2),
                    c("cs_order_number", 160_000, 8, 0.0),
                    c("cs_pad", 1, 64, 0.0),
                ],
            ),
            t(
                "web_sales",
                719_384,
                true,
                vec![
                    c("ws_sold_date_sk", 1823, 4, 0.4),
                    c("ws_item_sk", 18000, 4, 0.8),
                    c("ws_bill_customer_sk", 100_000, 4, 0.6),
                    c("ws_web_site_sk", 30, 4, 0.2),
                    c("ws_quantity", 100, 4, 0.0),
                    c("ws_sales_price", 20_000, 8, 0.2),
                    c("ws_net_profit", 120_000, 8, 0.2),
                    c("ws_order_number", 80_000, 8, 0.0),
                    c("ws_pad", 1, 60, 0.0),
                ],
            ),
            t(
                "store_returns",
                287_514,
                true,
                vec![
                    c("sr_returned_date_sk", 1823, 4, 0.4),
                    c("sr_item_sk", 18000, 4, 0.8),
                    c("sr_customer_sk", 100_000, 4, 0.6),
                    c("sr_ticket_number", 240_000, 8, 0.0),
                    c("sr_return_amt", 60_000, 8, 0.2),
                    c("sr_pad", 1, 40, 0.0),
                ],
            ),
            t(
                "catalog_returns",
                144_067,
                true,
                vec![
                    c("cr_returned_date_sk", 1823, 4, 0.4),
                    c("cr_item_sk", 18000, 4, 0.8),
                    c("cr_order_number", 160_000, 8, 0.0),
                    c("cr_return_amount", 40_000, 8, 0.2),
                    c("cr_pad", 1, 40, 0.0),
                ],
            ),
            t(
                "web_returns",
                71_763,
                true,
                vec![
                    c("wr_returned_date_sk", 1823, 4, 0.4),
                    c("wr_item_sk", 18000, 4, 0.8),
                    c("wr_order_number", 80_000, 8, 0.0),
                    c("wr_return_amt", 25_000, 8, 0.2),
                    c("wr_pad", 1, 36, 0.0),
                ],
            ),
            t(
                "inventory",
                11_745_000,
                true,
                vec![
                    c("inv_date_sk", 261, 4, 0.0),
                    c("inv_item_sk", 18000, 4, 0.0),
                    c("inv_warehouse_sk", 5, 4, 0.0),
                    c("inv_quantity_on_hand", 1000, 4, 0.1),
                ],
            ),
            t(
                "customer",
                100_000,
                false,
                vec![
                    c("c_customer_sk", 100_000, 4, 0.0),
                    c("c_current_addr_sk", 50_000, 4, 0.1),
                    c("c_birth_year", 70, 4, 0.1),
                    c("c_preferred_cust_flag", 2, 1, 0.0),
                    c("c_pad", 1, 120, 0.0),
                ],
            ),
            t(
                "customer_address",
                50_000,
                false,
                vec![
                    c("ca_address_sk", 50_000, 4, 0.0),
                    c("ca_state", 51, 2, 0.6),
                    c("ca_city", 700, 16, 0.5),
                    c("ca_gmt_offset", 8, 4, 0.4),
                    c("ca_pad", 1, 80, 0.0),
                ],
            ),
            t(
                "customer_demographics",
                1_920_800,
                false,
                vec![
                    c("cd_demo_sk", 1_920_800, 4, 0.0),
                    c("cd_gender", 2, 1, 0.0),
                    c("cd_marital_status", 5, 1, 0.1),
                    c("cd_education_status", 7, 12, 0.1),
                    c("cd_pad", 1, 24, 0.0),
                ],
            ),
            t(
                "date_dim",
                73_049,
                false,
                vec![
                    c("d_date_sk", 73_049, 4, 0.0),
                    c("d_year", 200, 4, 0.2),
                    c("d_moy", 12, 4, 0.0),
                    c("d_dow", 7, 4, 0.0),
                    c("d_qoy", 4, 4, 0.0),
                    c("d_pad", 1, 60, 0.0),
                ],
            ),
            t(
                "household_demographics",
                7_200,
                false,
                vec![
                    c("hd_demo_sk", 7_200, 4, 0.0),
                    c("hd_income_band_sk", 20, 4, 0.2),
                    c("hd_buy_potential", 6, 12, 0.2),
                    c("hd_dep_count", 10, 4, 0.0),
                ],
            ),
            t(
                "item",
                18_000,
                false,
                vec![
                    c("i_item_sk", 18_000, 4, 0.0),
                    c("i_category", 10, 16, 0.3),
                    c("i_class", 100, 16, 0.3),
                    c("i_brand", 700, 24, 0.4),
                    c("i_current_price", 1000, 8, 0.2),
                    c("i_pad", 1, 120, 0.0),
                ],
            ),
            t(
                "promotion",
                300,
                false,
                vec![
                    c("p_promo_sk", 300, 4, 0.0),
                    c("p_channel_email", 2, 1, 0.0),
                    c("p_channel_tv", 2, 1, 0.0),
                    c("p_pad", 1, 80, 0.0),
                ],
            ),
            t(
                "store",
                12,
                false,
                vec![
                    c("s_store_sk", 12, 4, 0.0),
                    c("s_state", 7, 2, 0.3),
                    c("s_number_employees", 12, 4, 0.0),
                    c("s_pad", 1, 160, 0.0),
                ],
            ),
            t(
                "time_dim",
                86_400,
                false,
                vec![
                    c("t_time_sk", 86_400, 4, 0.0),
                    c("t_hour", 24, 4, 0.0),
                    c("t_am_pm", 2, 2, 0.0),
                ],
            ),
            t(
                "warehouse",
                5,
                false,
                vec![
                    c("w_warehouse_sk", 5, 4, 0.0),
                    c("w_warehouse_sq_ft", 5, 4, 0.0),
                    c("w_pad", 1, 100, 0.0),
                ],
            ),
            t(
                "web_site",
                30,
                false,
                vec![c("web_site_sk", 30, 4, 0.0), c("web_pad", 1, 120, 0.0)],
            ),
            t(
                "web_page",
                60,
                false,
                vec![c("wp_web_page_sk", 60, 4, 0.0), c("wp_pad", 1, 60, 0.0)],
            ),
            t(
                "call_center",
                6,
                false,
                vec![c("cc_call_center_sk", 6, 4, 0.0), c("cc_pad", 1, 160, 0.0)],
            ),
            t(
                "catalog_page",
                11_718,
                false,
                vec![
                    c("cp_catalog_page_sk", 11_718, 4, 0.0),
                    c("cp_pad", 1, 80, 0.0),
                ],
            ),
            t(
                "ship_mode",
                20,
                false,
                vec![c("sm_ship_mode_sk", 20, 4, 0.0), c("sm_pad", 1, 40, 0.0)],
            ),
            t(
                "reason",
                35,
                false,
                vec![c("r_reason_sk", 35, 4, 0.0), c("r_pad", 1, 40, 0.0)],
            ),
            t(
                "income_band",
                20,
                false,
                vec![
                    c("ib_income_band_sk", 20, 4, 0.0),
                    c("ib_lower_bound", 20, 4, 0.0),
                ],
            ),
        ];
        Schema {
            name: "tpcds".to_string(),
            scale_factor,
            tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcds_has_expected_tables() {
        let s = Schema::tpcds(1.0);
        assert_eq!(s.tables.len(), 24);
        assert_eq!(s.rows("store_sales"), 2_880_404);
        assert_eq!(s.rows("store"), 12);
        assert!(s.table("store_sales").unwrap().fact);
        assert!(!s.table("item").unwrap().fact);
    }

    #[test]
    fn scale_factor_scales_facts_linearly_dims_sublinearly() {
        let s1 = Schema::tpcds(1.0);
        let s4 = Schema::tpcds(4.0);
        assert_eq!(s4.rows("store_sales"), 4 * s1.rows("store_sales"));
        // Dimensions: sqrt scaling → x2 at SF 4.
        assert_eq!(s4.rows("customer"), 2 * s1.rows("customer"));
    }

    #[test]
    fn row_width_sums_columns() {
        let s = Schema::tpcds(1.0);
        let t = s.table("inventory").unwrap();
        assert_eq!(t.row_width(), 16);
    }

    #[test]
    fn column_lookup() {
        let s = Schema::tpcds(1.0);
        let t = s.table("item").unwrap();
        assert_eq!(t.column("i_category").unwrap().ndv, 10);
        assert!(t.column("nope").is_none());
    }

    #[test]
    fn total_bytes_positive_and_scales() {
        let s = Schema::tpcds(1.0);
        let b1 = s.total_bytes();
        assert!(b1 > 100_000_000); // ~half a GB at SF1
        assert!(Schema::tpcds(2.0).total_bytes() > b1);
    }

    #[test]
    fn unknown_table_rows_zero() {
        assert_eq!(Schema::tpcds(1.0).rows("missing"), 0);
    }
}
