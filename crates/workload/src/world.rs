//! The simulated data distribution ("the world").
//!
//! On a real system the ground-truth selectivity of `d_year = 1998` is
//! a fixed property of the stored data: every query that writes that
//! predicate observes the *same* truth, however wrong the optimizer's
//! uniformity estimate is. Early versions of this generator drew the
//! truth independently per query, which destroys the property the
//! paper's predictor exploits — textually identical queries performing
//! identically — and with it the "within 20% for 85% of queries"
//! result.
//!
//! This module derives ground truth *deterministically* from the
//! identity of the data object being asked about (schema, table,
//! column, operator, constant), via hashing: the simulated analogue of
//! a fixed dataset. The magnitude of the deviation from the optimizer's
//! estimate is controlled by the caller (`sigma`, per-template and
//! per-column-skew), but its *direction and value* are pinned to the
//! constants, never to the query instance.

use std::hash::{DefaultHasher, Hash, Hasher};

/// A uniform draw in `[0, 1)` determined entirely by the key parts.
pub fn hashed_unit(parts: &[&str], salt: u64) -> f64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    salt.hash(&mut h);
    // 53 mantissa bits → uniform in [0, 1).
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard-normal draw determined entirely by the key parts
/// (Box–Muller over two hashed uniforms).
pub fn hashed_normal(parts: &[&str], salt: u64) -> f64 {
    let u1 = hashed_unit(parts, salt.wrapping_mul(2).wrapping_add(1)).max(1e-12);
    let u2 = hashed_unit(parts, salt.wrapping_mul(2).wrapping_add(2));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Ground-truth selectivity for a predicate: the optimizer's estimate
/// `est` perturbed by a log-normal factor `10^(σ·z)` whose `z` is
/// pinned to `(table, column, op_tag, constant_id)`.
pub fn true_selectivity(
    table: &str,
    column: &str,
    op_tag: &str,
    constant_id: u64,
    est: f64,
    sigma: f64,
) -> f64 {
    let z = hashed_normal(&[table, column, op_tag], constant_id);
    (est * 10f64.powf(sigma * z)).clamp(1e-8, 1.0)
}

/// Ground-truth join fan-out factor relative to the textbook estimate:
/// log10-uniform over `[lo, hi]`, pinned to the join columns plus a
/// small per-query phase (different filtered subsets of the same join
/// hit differently skewed key ranges).
pub fn join_fanout(left_column: &str, right_column: &str, phase: u64, (lo, hi): (f64, f64)) -> f64 {
    let u = hashed_unit(&[left_column, right_column, "fanout"], phase);
    10f64.powf(lo + (hi - lo) * u)
}

/// Ground-truth pass fraction of an IN-subquery semi-join, pinned to
/// the inner table and the subquery's constant id. Log-uniform over
/// roughly 3%–90%.
pub fn subquery_pass_fraction(inner_table: &str, constant_id: u64) -> f64 {
    let u = hashed_unit(&[inner_table, "semijoin"], constant_id);
    10f64.powf(-1.5 + 1.45 * u).clamp(1e-6, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_draws_are_deterministic() {
        assert_eq!(hashed_unit(&["a", "b"], 3), hashed_unit(&["a", "b"], 3));
        assert_eq!(hashed_normal(&["x"], 7), hashed_normal(&["x"], 7));
    }

    #[test]
    fn hashed_draws_differ_across_keys() {
        assert_ne!(hashed_unit(&["a"], 1), hashed_unit(&["a"], 2));
        assert_ne!(hashed_unit(&["a"], 1), hashed_unit(&["b"], 1));
    }

    #[test]
    fn hashed_unit_in_range_and_spread() {
        let draws: Vec<f64> = (0..500).map(|i| hashed_unit(&["t"], i)).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn hashed_normal_moments() {
        let draws: Vec<f64> = (0..4000).map(|i| hashed_normal(&["n"], i)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.06, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn same_constant_same_truth() {
        let a = true_selectivity("item", "i_category", "eq", 5, 0.1, 0.5);
        let b = true_selectivity("item", "i_category", "eq", 5, 0.1, 0.5);
        assert_eq!(a, b);
        let c = true_selectivity("item", "i_category", "eq", 6, 0.1, 0.5);
        assert_ne!(a, c);
    }

    #[test]
    fn truth_clamped_to_unit_interval() {
        for id in 0..50 {
            let s = true_selectivity("t", "c", "range", id, 0.9, 2.0);
            assert!((1e-8..=1.0).contains(&s));
        }
    }

    #[test]
    fn zero_sigma_returns_estimate() {
        let s = true_selectivity("t", "c", "eq", 1, 0.25, 0.0);
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fanout_spans_requested_decades() {
        let range = (0.0, 1.0);
        let draws: Vec<f64> = (0..100).map(|p| join_fanout("a", "b", p, range)).collect();
        assert!(draws.iter().all(|&f| (1.0..=10.0).contains(&f)));
        let min = draws.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = draws.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 3.0, "span {min}..{max}");
    }

    #[test]
    fn subquery_pass_in_range() {
        for id in 0..50 {
            let p = subquery_pass_fraction("item", id);
            assert!((0.03..=0.9).contains(&p), "{p}");
        }
    }
}
