//! Deterministic single-threaded walks through the whole adaptation
//! loop: drift → retrain → shadow-score → canary swap → post-swap
//! watch, plus the kill-switch path when the canary regresses.
//!
//! Predictions flow from the *real* registry entry and candidates are
//! *really* trained/swapped; only the serving transport (queue, worker
//! pool) is bypassed so every step happens at a chosen moment.

use qpp_adapt::{AdaptEvent, AdaptOptions, AdaptOutcome, AdaptiveController, DriftConfig, Phase};
use qpp_core::baselines::OptimizerCostModel;
use qpp_core::predictor::PredictorOptions;
use qpp_core::retrain::SlidingWindowPredictor;
use qpp_core::workload_mgmt::AdmissionDecision;
use qpp_core::{Dataset, FeatureKind, KccaPredictor, Prediction, QueryRecord};
use qpp_engine::{PerfMetrics, SystemConfig};
use qpp_serve::{AnswerSource, ModelKey, ModelRegistry, ServeResponse};
use qpp_workload::{Schema, WorkloadGenerator};
use std::sync::Arc;
use std::time::Duration;

fn collect(n: usize, seed: u64, config: &SystemConfig) -> Dataset {
    let schema = Schema::tpcds(1.0);
    let mut generator = WorkloadGenerator::tpcds(1.0, seed);
    Dataset::collect(&schema, generator.generate(n), config, 2)
}

fn response(prediction: Prediction, version: u64) -> ServeResponse {
    ServeResponse {
        prediction,
        decision: AdmissionDecision::Admit {
            kill_timeout_seconds: 60.0,
        },
        source: AnswerSource::Kcca,
        model_version: version,
        latency: Duration::ZERO,
        tenant: qpp_serve::DEFAULT_TENANT,
        trace_id: 0,
    }
}

/// Predicts `record` with the current registry entry and feeds the
/// completed pair to the controller. Returns the event, if any.
fn serve_and_observe(
    registry: &ModelRegistry,
    key: &ModelKey,
    controller: &AdaptiveController,
    record: &QueryRecord,
) -> Option<AdaptEvent> {
    let entry = registry.get(key).expect("model installed");
    let prediction = entry
        .predictor
        .predict(&record.spec, &record.optimized.plan)
        .expect("predict");
    controller.observe(record, &response(prediction, entry.version))
}

struct Loop {
    registry: Arc<ModelRegistry>,
    key: ModelKey,
    controller: AdaptiveController,
}

/// Test-sized drift config: short warmup, small recent window.
fn test_options() -> AdaptOptions {
    AdaptOptions {
        drift: DriftConfig {
            warmup: 24,
            window: 8,
            ..DriftConfig::default()
        },
        kill_window: 16,
        ..AdaptOptions::default()
    }
}

/// Trains an incumbent on stable traffic, installs it, and wires a
/// controller with the given options.
fn start_loop_with(train_n: usize, seed: u64, adapt: AdaptOptions) -> (Loop, Dataset) {
    let stable = SystemConfig::neoview_4();
    let train = collect(train_n, seed, &stable);
    let options = PredictorOptions::default();
    let predictor = KccaPredictor::train(&train, options).expect("train incumbent");
    let fallback = OptimizerCostModel::train(&train).expect("train fallback");
    let registry = Arc::new(ModelRegistry::new());
    let key = ModelKey::new("neoview_4", FeatureKind::QueryPlan);
    registry.install(key.clone(), predictor, fallback);
    let window = SlidingWindowPredictor::new(train.clone(), train_n, usize::MAX, options);
    let controller = AdaptiveController::new(Arc::clone(&registry), key.clone(), window, adapt);
    (
        Loop {
            registry,
            key,
            controller,
        },
        train,
    )
}

fn start_loop(train_n: usize, seed: u64) -> (Loop, Dataset) {
    start_loop_with(train_n, seed, test_options())
}

#[test]
fn drift_triggers_retrain_and_canary_swap_then_recovers() {
    let (lp, _train) = start_loop(96, 301);
    let stable = SystemConfig::neoview_4();
    let drifted_cfg = stable.clone().with_drift(3.0);

    // Phase 1: stable traffic calibrates the detector quietly.
    let calm = collect(30, 302, &stable);
    for record in &calm.records {
        let event = serve_and_observe(&lp.registry, &lp.key, &lp.controller, record);
        assert!(event.is_none(), "stable traffic fired {event:?}");
    }
    assert_eq!(lp.controller.phase(), Phase::Stable);
    let calibration_err = lp.controller.stats().calibration_mean_err.get();
    assert!(calibration_err > 0.0, "detector must be calibrated");

    // Phase 2: the system drifts (elapsed 3x). Per-template error on
    // elapsed time rises and drift must be declared.
    let drifted = collect(160, 303, &drifted_cfg);
    let mut drift_signal = None;
    for record in &drifted.records {
        if let Some(AdaptEvent::DriftDetected(sig)) =
            serve_and_observe(&lp.registry, &lp.key, &lp.controller, record)
        {
            drift_signal = Some(sig);
        }
    }
    let signal = drift_signal.expect("drift must be detected under 3x elapsed drift");
    assert!(
        signal.metric == 0 || signal.metric == qpp_adapt::OVERALL,
        "drift attributed to elapsed_time or overall, got {}",
        signal.metric_name
    );
    assert!(signal.recent_mean > signal.calibration_mean);
    assert_eq!(lp.controller.phase(), Phase::RetrainQueued);
    let version_before = lp.registry.current_version(&lp.key).expect("installed");

    // The tracker's per-template view saw the error rise too.
    let rows = lp.controller.tracker().template_snapshot();
    assert!(!rows.is_empty());
    let elapsed_mean = lp.controller.tracker().global_mean(0);
    assert!(
        elapsed_mean > calibration_err,
        "global elapsed error {elapsed_mean} should exceed calibration {calibration_err}"
    );

    // Background step, run synchronously: retrain + shadow-score +
    // guarded swap.
    let outcomes = lp.controller.drain_pending();
    assert_eq!(outcomes.len(), 1);
    match &outcomes[0] {
        AdaptOutcome::Swapped {
            generation,
            candidate_err,
            incumbent_err,
        } => {
            assert!(*generation > version_before);
            assert!(
                candidate_err < incumbent_err,
                "candidate {candidate_err} must beat incumbent {incumbent_err}"
            );
        }
        other => panic!("expected a canary swap, got {other:?}"),
    }
    assert_eq!(lp.controller.stats().canary_swaps.get(), 1);
    assert_eq!(
        lp.registry.current_version(&lp.key),
        Some(match outcomes[0] {
            AdaptOutcome::Swapped { generation, .. } => generation,
            _ => unreachable!(),
        })
    );

    // Phase 3: the swapped-in model predicts drifted traffic well; the
    // post-swap watch passes and nothing is demoted.
    let recovery = collect(40, 304, &drifted_cfg);
    let mut passed = None;
    for record in &recovery.records {
        if let Some(AdaptEvent::CanaryPassed { post_err, .. }) =
            serve_and_observe(&lp.registry, &lp.key, &lp.controller, record)
        {
            passed = Some(post_err);
        }
    }
    let post_err = passed.expect("post-swap watch must complete");
    assert!(
        post_err < signal.recent_mean,
        "post-swap error {post_err} must be below the drifted error {}",
        signal.recent_mean
    );
    assert_eq!(lp.controller.phase(), Phase::Stable);
    assert_eq!(lp.registry.demote_count(), 0);
    assert!(!lp.registry.get(&lp.key).expect("entry").degraded);
}

#[test]
fn kill_switch_demotes_a_regressing_canary() {
    let (lp, _train) = start_loop(96, 311);
    let stable = SystemConfig::neoview_4();
    let drifted_cfg = stable.clone().with_drift(3.0);

    // Reach PostSwap exactly as production would: calibrate, drift,
    // retrain, swap.
    for record in &collect(30, 312, &stable).records {
        serve_and_observe(&lp.registry, &lp.key, &lp.controller, record);
    }
    for record in &collect(160, 313, &drifted_cfg).records {
        serve_and_observe(&lp.registry, &lp.key, &lp.controller, record);
    }
    let outcomes = lp.controller.drain_pending();
    let generation = match outcomes.first() {
        Some(AdaptOutcome::Swapped { generation, .. }) => *generation,
        other => panic!("expected a swap, got {other:?}"),
    };

    // Post-swap traffic regresses badly: simulate a canary that looks
    // great on the holdout but falls apart live, by feeding completed
    // pairs whose predictions are an order of magnitude off.
    let live = collect(20, 314, &drifted_cfg);
    let mut fired = None;
    for record in &live.records {
        let garbage = Prediction {
            metrics: PerfMetrics {
                elapsed_seconds: record.metrics.elapsed_seconds * 30.0,
                disk_ios: record.metrics.disk_ios * 30.0,
                message_count: record.metrics.message_count * 30.0,
                message_bytes: record.metrics.message_bytes * 30.0,
                records_accessed: record.metrics.records_accessed * 30.0,
                records_used: record.metrics.records_used * 30.0,
            },
            neighbor_indices: [0usize; 0].into_iter().collect(),
            confidence_distance: 0.0,
            max_kernel_similarity: 1.0,
        };
        if let Some(event) = lp
            .controller
            .observe(record, &response(garbage, generation))
        {
            fired = Some(event);
            break;
        }
    }
    match fired.expect("kill-switch must fire on a regressing canary") {
        AdaptEvent::KillSwitch {
            generation: demoted,
            pre_err,
            post_err,
        } => {
            assert_eq!(lp.controller.phase(), Phase::Demoted);
            assert!(post_err > pre_err * 1.5, "post {post_err} pre {pre_err}");
            assert!(demoted > generation, "demotion mints a fresh version");
        }
        other => panic!("expected KillSwitch, got {other:?}"),
    }
    // The registry entry is degraded: workers will answer from the
    // optimizer-cost baseline until a healthy install.
    let entry = lp.registry.get(&lp.key).expect("entry");
    assert!(entry.degraded);
    assert_eq!(lp.registry.demote_count(), 1);
    assert_eq!(lp.controller.stats().demotions.get(), 1);

    // A fresh healthy install clears the demotion and re-arms the loop.
    let retrain = collect(32, 315, &drifted_cfg);
    let predictor = KccaPredictor::train(&retrain, PredictorOptions::default()).expect("train");
    let fallback = OptimizerCostModel::train(&retrain).expect("fallback");
    lp.registry.install(lp.key.clone(), predictor, fallback);
    assert!(!lp.registry.get(&lp.key).expect("entry").degraded);
}

#[test]
fn candidate_that_cannot_clear_the_margin_is_rejected() {
    // Same drift scenario as the happy path, but with an extreme swap
    // margin (the candidate would have to cut the incumbent's error
    // twentyfold): the shadow score must reject the candidate, the
    // incumbent must stay installed, and the loop must re-arm rather
    // than alarm forever.
    let (lp, _train) = start_loop_with(
        96,
        321,
        AdaptOptions {
            shadow_margin: 0.95,
            ..test_options()
        },
    );
    let stable = SystemConfig::neoview_4();
    let drifted_cfg = stable.clone().with_drift(3.0);
    for record in &collect(30, 322, &stable).records {
        serve_and_observe(&lp.registry, &lp.key, &lp.controller, record);
    }
    for record in &collect(160, 323, &drifted_cfg).records {
        serve_and_observe(&lp.registry, &lp.key, &lp.controller, record);
    }
    assert_eq!(lp.controller.phase(), Phase::RetrainQueued);
    let version_before = lp.registry.current_version(&lp.key).expect("installed");

    let outcomes = lp.controller.drain_pending();
    match outcomes.first() {
        Some(AdaptOutcome::Rejected {
            candidate_err,
            incumbent_err,
        }) => {
            assert!(
                candidate_err > &(incumbent_err * 0.05),
                "candidate {candidate_err} vs incumbent {incumbent_err}"
            );
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(
        lp.registry.current_version(&lp.key),
        Some(version_before),
        "a rejected candidate must never reach the registry"
    );
    assert_eq!(lp.controller.stats().canary_rejections.get(), 1);
    assert_eq!(lp.controller.stats().canary_swaps.get(), 0);
    assert_eq!(lp.controller.phase(), Phase::Stable);

    // Re-armed, not silenced: continued drifted traffic recalibrates
    // on the new normal and stays quiet (the detector was reset).
    for record in &collect(30, 324, &drifted_cfg).records {
        let event = serve_and_observe(&lp.registry, &lp.key, &lp.controller, record);
        assert!(event.is_none(), "re-baselined loop fired {event:?}");
    }
}
