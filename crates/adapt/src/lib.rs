//! qpp-adapt: the continuous-learning control plane.
//!
//! The paper trains KCCA models offline (§VI) and acknowledges the
//! obvious production gap: workloads shift, statistics go stale, and a
//! model trained last month quietly degrades. This crate closes the
//! loop around the serving layer:
//!
//! - [`ErrorTracker`]: lock-free, allocation-free streaming error
//!   distributions over `(prediction, observed)` pairs — per query
//!   template and global, for all six paper metrics — built on
//!   `qpp_obs` counter/histogram primitives.
//! - [`DriftDetector`]: a Page–Hinkley test per metric stream gated by
//!   a windowed mean-ratio check. Deterministic: decisions depend only
//!   on the error values and caller-supplied epochs, never a clock.
//! - [`AdaptiveController`]: the phase machine wiring it together. It
//!   plugs into `qpp_serve` as a [`qpp_serve::CompletionObserver`]; on
//!   drift it queues a [`RetrainTask`] that trains a candidate on the
//!   live [`qpp_core::retrain::SlidingWindowPredictor`] window,
//!   shadow-scores it against the incumbent on held-out live traffic,
//!   and hot-swaps through the registry's generation-guarded
//!   [`qpp_serve::ModelRegistry::swap_if_current`] only when the
//!   candidate wins by a margin. After a swap it watches live error
//!   and fires the kill-switch
//!   ([`qpp_serve::ModelRegistry::demote_if_current`]) if the canary
//!   made things worse — serving falls back to the optimizer-cost
//!   baseline rather than a bad model.
//! - [`AdaptWorker`]: the background thread that runs retrain tasks
//!   off the serving threads.
//!
//! Every decision point emits `qpp_obs` events (`drift`, `retrain`,
//! `shadow_score`, `canary_swap`, `kill_switch`), so the whole
//! adaptation episode is reconstructible from the trace ring.

// The control plane must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod controller;
pub mod drift;
pub mod tracker;
pub mod worker;

pub use controller::{
    AdaptEvent, AdaptOptions, AdaptOutcome, AdaptStats, AdaptiveController, Phase, RetrainTask,
};
pub use drift::{stream_name, DriftConfig, DriftDetector, DriftSignal, OVERALL, STREAMS};
pub use tracker::{log_ratio_errors, mean_error, ErrorTracker, TemplateErrors, TEMPLATE_SLOTS};
pub use worker::AdaptWorker;
