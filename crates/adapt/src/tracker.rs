//! Online prediction-error tracking, per query template and global.
//!
//! Every completed query whose answer came from the KCCA model yields a
//! `(prediction, observed)` pair. The tracker folds each pair into
//! streaming error distributions for all six paper metrics — globally
//! (log₂ histograms + fixed-point mean accumulators) and per query
//! template (a fixed-slot, lock-free table keyed by template name).
//!
//! The record path is lock-free and allocation-free: slots are claimed
//! with a single `compare_exchange` on the template hash, and all
//! accumulation goes through `qpp_obs` atomic counters/histograms. The
//! only allocation ever performed is a one-time template-name copy at
//! slot-claim time, kept out of the marked hot path in a `#[cold]`
//! helper.

use qpp_engine::PerfMetrics;
use qpp_obs::{Counter, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed number of per-template slots. Templates beyond this are
/// counted in [`ErrorTracker::dropped`] rather than blocking or
/// allocating; TPC-DS has far fewer distinct templates.
pub const TEMPLATE_SLOTS: usize = 64;

/// Fixed number of per-tenant attribution slots. Tenants beyond this
/// still count globally and per template; only their per-tenant
/// breakdown is dropped (tracked in [`ErrorTracker::tenant_dropped`]).
pub const TENANT_SLOTS: usize = 32;

/// Fixed-point scale for error-sum accumulators: errors are summed as
/// integer micro-units so concurrent accumulation is exact and
/// order-independent (no float rounding races).
const ERR_SCALE: f64 = 1e6;

/// Errors are clamped to this before accumulation so one absurd pair
/// cannot saturate a mean. ln-ratio 64 is astronomically wrong already.
const ERR_CLAMP: f64 = 64.0;

/// Additive shift inside the log-ratio so zero-valued metrics (common
/// for disk I/O on cached runs) stay well-defined.
const EPS: f64 = 1e-3;

/// Per-metric absolute log-ratio errors of one `(predicted, observed)`
/// pair: `|ln((pred + ε) / (obs + ε))|`, canonical metric order.
///
/// Scale-free (a 2× miss scores the same on 1 s as on 100 s) and
/// symmetric (over- and under-prediction score alike), matching the
/// paper's relative-accuracy framing.
pub fn log_ratio_errors(
    predicted: &PerfMetrics,
    observed: &PerfMetrics,
) -> [f64; PerfMetrics::DIM] {
    [
        one_error(predicted.elapsed_seconds, observed.elapsed_seconds),
        one_error(predicted.disk_ios, observed.disk_ios),
        one_error(predicted.message_count, observed.message_count),
        one_error(predicted.message_bytes, observed.message_bytes),
        one_error(predicted.records_accessed, observed.records_accessed),
        one_error(predicted.records_used, observed.records_used),
    ]
}

fn one_error(predicted: f64, observed: f64) -> f64 {
    let p = if predicted.is_finite() && predicted > 0.0 {
        predicted
    } else {
        0.0
    };
    let o = if observed.is_finite() && observed > 0.0 {
        observed
    } else {
        0.0
    };
    ((p + EPS) / (o + EPS)).ln().abs().min(ERR_CLAMP)
}

/// Mean of the six per-metric errors (explicit loop: ordered, exact
/// iteration order regardless of thread count).
pub fn mean_error(errors: &[f64; PerfMetrics::DIM]) -> f64 {
    let mut sum = 0.0;
    for e in errors {
        sum += e;
    }
    sum / PerfMetrics::DIM as f64
}

/// One per-template accumulator slot.
#[derive(Debug)]
struct Slot {
    /// FNV-1a hash of the template name; 0 = unclaimed. Claimed once
    /// with `compare_exchange` and never changed after.
    hash: AtomicU64,
    /// Set once the claimant has published the template name.
    named: AtomicU64,
    /// Pairs recorded into this slot.
    count: Counter,
    /// Fixed-point (micro-unit) per-metric error sums.
    err_sum: [Counter; PerfMetrics::DIM],
    /// Template name, written exactly once by the claiming thread.
    name: parking_lot::RwLock<String>,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            hash: AtomicU64::new(0),
            named: AtomicU64::new(0),
            count: Counter::new(),
            err_sum: [
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
            ],
            name: parking_lot::RwLock::new(String::new()),
        }
    }
}

/// One per-tenant accumulator slot: like a template [`Slot`] but keyed
/// by the numeric tenant ID (no name to publish, so claiming is a
/// single `compare_exchange` and nothing allocates, ever).
#[derive(Debug)]
struct TenantSlot {
    /// `tenant_id + 1`; 0 = unclaimed.
    id: AtomicU64,
    /// Pairs recorded for this tenant.
    count: Counter,
    /// Fixed-point (micro-unit) per-metric error sums.
    err_sum: [Counter; PerfMetrics::DIM],
}

impl TenantSlot {
    fn empty() -> TenantSlot {
        TenantSlot {
            id: AtomicU64::new(0),
            count: Counter::new(),
            err_sum: [
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
            ],
        }
    }
}

/// Streaming error distributions over completed queries.
#[derive(Debug)]
pub struct ErrorTracker {
    slots: Box<[Slot]>,
    tenant_slots: Box<[TenantSlot]>,
    /// Pairs recorded (all templates, including dropped ones).
    total: Counter,
    /// Pairs whose template found no free slot (table full).
    dropped: Counter,
    /// Pairs whose tenant found no free attribution slot.
    tenant_dropped: Counter,
    /// Global fixed-point per-metric error sums.
    global_sum: [Counter; PerfMetrics::DIM],
    /// Global per-metric error histograms over milli-units of
    /// log-ratio error (log₂ buckets; e.g. error 0.7 → sample 700).
    hist: [Histogram; PerfMetrics::DIM],
}

/// Per-template snapshot row.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateErrors {
    /// Template name as recorded.
    pub template: String,
    /// Pairs recorded for this template.
    pub count: u64,
    /// Mean per-metric absolute log-ratio errors.
    pub mean: [f64; PerfMetrics::DIM],
    /// Mean of the six per-metric means.
    pub overall: f64,
}

impl Default for ErrorTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ErrorTracker {
    /// Creates an empty tracker with [`TEMPLATE_SLOTS`] slots.
    pub fn new() -> ErrorTracker {
        ErrorTracker {
            slots: (0..TEMPLATE_SLOTS).map(|_| Slot::empty()).collect(),
            tenant_slots: (0..TENANT_SLOTS).map(|_| TenantSlot::empty()).collect(),
            total: Counter::new(),
            dropped: Counter::new(),
            tenant_dropped: Counter::new(),
            global_sum: [
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
                Counter::new(),
            ],
            hist: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
        }
    }

    /// Folds one `(prediction, observed)` pair into the distributions
    /// and returns the per-metric errors (so callers feed the same
    /// numbers to the drift detector without recomputing).
    ///
    /// Lock-free and allocation-free: called from serving threads on
    /// every completed query.
    // qpp-lint: hot-path
    pub fn record(
        &self,
        template: &str,
        predicted: &PerfMetrics,
        observed: &PerfMetrics,
    ) -> [f64; PerfMetrics::DIM] {
        let errors = log_ratio_errors(predicted, observed);
        self.total.incr();
        for (i, e) in errors.iter().enumerate() {
            self.global_sum[i].add(to_fixed(*e));
            self.hist[i].record((*e * 1e3) as u64);
        }
        match self.claim(template) {
            Some(slot) => {
                slot.count.incr();
                for (i, e) in errors.iter().enumerate() {
                    slot.err_sum[i].add(to_fixed(*e));
                }
            }
            None => self.dropped.incr(),
        }
        errors
    }

    /// Like [`ErrorTracker::record`], additionally attributing the pair
    /// to `tenant` (the numeric tenant ID the serve layer resolved the
    /// request to). The serve pipeline is multi-tenant; attributing
    /// prediction error per tenant lets operators see *whose* workload
    /// the model drifted on, not just that it drifted.
    ///
    /// Lock-free and allocation-free like `record`.
    // qpp-lint: hot-path
    pub fn record_attributed(
        &self,
        template: &str,
        tenant: u32,
        predicted: &PerfMetrics,
        observed: &PerfMetrics,
    ) -> [f64; PerfMetrics::DIM] {
        let errors = self.record(template, predicted, observed);
        match self.claim_tenant(tenant) {
            Some(slot) => {
                slot.count.incr();
                for (i, e) in errors.iter().enumerate() {
                    slot.err_sum[i].add(to_fixed(*e));
                }
            }
            None => self.tenant_dropped.incr(),
        }
        errors
    }

    /// Finds or claims the attribution slot for `tenant`. Open
    /// addressing with linear probing, keyed by `tenant_id + 1`.
    fn claim_tenant(&self, tenant: u32) -> Option<&TenantSlot> {
        let key = tenant as u64 + 1;
        let start = (key % TENANT_SLOTS as u64) as usize;
        for probe in 0..TENANT_SLOTS {
            let slot = &self.tenant_slots[(start + probe) % TENANT_SLOTS];
            // ordering: Acquire pairs with the AcqRel claim below so a
            // reader that sees the key also sees the claimed slot.
            let current = slot.id.load(Ordering::Acquire);
            if current == key {
                return Some(slot);
            }
            if current == 0 {
                // ordering: AcqRel publishes the claim and synchronizes
                // with racing claimants; failure Acquire observes the
                // winner's key for the `existing == key` check.
                match slot
                    .id
                    .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return Some(slot),
                    Err(existing) if existing == key => return Some(slot),
                    Err(_) => continue, // raced by another tenant; keep probing
                }
            }
        }
        None
    }

    /// Finds or claims the slot for `template`. Open addressing with
    /// linear probing; claim is one `compare_exchange` on the hash.
    fn claim(&self, template: &str) -> Option<&Slot> {
        let hash = fnv1a(template.as_bytes());
        let start = (hash % TEMPLATE_SLOTS as u64) as usize;
        for probe in 0..TEMPLATE_SLOTS {
            let slot = &self.slots[(start + probe) % TEMPLATE_SLOTS];
            // ordering: Acquire pairs with the AcqRel claim below so a
            // reader that sees the hash also sees the claimed slot.
            let current = slot.hash.load(Ordering::Acquire);
            if current == hash {
                return Some(slot);
            }
            if current == 0 {
                // ordering: AcqRel publishes the claim and synchronizes
                // with racing claimants; failure Acquire observes the
                // winner's hash for the `existing == hash` check.
                match slot
                    .hash
                    .compare_exchange(0, hash, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        publish_name(slot, template);
                        return Some(slot);
                    }
                    Err(existing) if existing == hash => return Some(slot),
                    Err(_) => continue, // raced by another template; keep probing
                }
            }
        }
        None
    }

    /// Pairs recorded in total.
    pub fn observations(&self) -> u64 {
        self.total.get()
    }

    /// Pairs dropped because the template table was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Pairs whose per-tenant attribution was dropped (tenant table
    /// full). The pair itself still counted globally and per template.
    pub fn tenant_dropped(&self) -> u64 {
        self.tenant_dropped.get()
    }

    /// Pairs attributed to `tenant`, 0 for an unseen tenant.
    pub fn tenant_observations(&self, tenant: u32) -> u64 {
        self.tenant_slot(tenant).map(|s| s.count.get()).unwrap_or(0)
    }

    /// Mean absolute log-ratio error of one metric for `tenant`'s
    /// completed queries, 0.0 before any observation.
    pub fn tenant_mean(&self, tenant: u32, metric: usize) -> f64 {
        match self.tenant_slot(tenant) {
            Some(slot) => {
                let n = slot.count.get();
                if n == 0 {
                    0.0
                } else {
                    from_fixed(slot.err_sum[metric].get()) / n as f64
                }
            }
            None => 0.0,
        }
    }

    /// Tenant IDs with at least one attributed pair, ascending
    /// (deterministic output regardless of claim order).
    pub fn tenant_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .tenant_slots
            .iter()
            .filter_map(|s| {
                // ordering: Acquire pairs with the AcqRel claim in
                // `claim_tenant`; a visible key means a settled slot.
                let key = s.id.load(Ordering::Acquire);
                if key == 0 {
                    None
                } else {
                    Some((key - 1) as u32)
                }
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Read-only lookup of a claimed tenant slot (no claiming).
    fn tenant_slot(&self, tenant: u32) -> Option<&TenantSlot> {
        let key = tenant as u64 + 1;
        let start = (key % TENANT_SLOTS as u64) as usize;
        for probe in 0..TENANT_SLOTS {
            let slot = &self.tenant_slots[(start + probe) % TENANT_SLOTS];
            // ordering: Acquire pairs with the AcqRel claim in
            // `claim_tenant`; a visible key means a settled slot.
            let current = slot.id.load(Ordering::Acquire);
            if current == key {
                return Some(slot);
            }
            if current == 0 {
                return None;
            }
        }
        None
    }

    /// Global mean absolute log-ratio error for one metric (canonical
    /// index), 0.0 before any observation.
    pub fn global_mean(&self, metric: usize) -> f64 {
        let n = self.total.get();
        if n == 0 {
            return 0.0;
        }
        from_fixed(self.global_sum[metric].get()) / n as f64
    }

    /// Global mean errors for all six metrics.
    pub fn global_means(&self) -> [f64; PerfMetrics::DIM] {
        let mut out = [0.0; PerfMetrics::DIM];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.global_mean(i);
        }
        out
    }

    /// Upper bound of the bucket holding quantile `q` of one metric's
    /// error distribution, in milli-units of log-ratio error.
    pub fn error_quantile(&self, metric: usize, q: f64) -> u64 {
        self.hist[metric].quantile(q).bound_us
    }

    /// Per-template rows, sorted by template name (deterministic
    /// output regardless of claim order).
    pub fn template_snapshot(&self) -> Vec<TemplateErrors> {
        let mut rows: Vec<TemplateErrors> = self
            .slots
            .iter()
            // ordering: both Acquires pair with their Release writers
            // (`claim`'s AcqRel for the hash, `publish_name`'s Release
            // for `named`), so a slot passing both gates has a settled
            // name behind the RwLock below.
            .filter(|s| s.hash.load(Ordering::Acquire) != 0 && s.named.load(Ordering::Acquire) != 0)
            .map(|s| {
                let count = s.count.get();
                let mut mean = [0.0; PerfMetrics::DIM];
                if count > 0 {
                    for (i, m) in mean.iter_mut().enumerate() {
                        *m = from_fixed(s.err_sum[i].get()) / count as f64;
                    }
                }
                TemplateErrors {
                    template: s.name.read().clone(),
                    count,
                    overall: mean_error(&mean),
                    mean,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.template.cmp(&b.template));
        rows
    }
}

/// One-time name publication for a freshly claimed slot; deliberately
/// outside the hot path (allocates the name copy, takes the slot's
/// write lock — both happen at most once per template per process).
#[cold]
fn publish_name(slot: &Slot, template: &str) {
    *slot.name.write() = template.to_string();
    // ordering: Release publishes the name write above; pairs with the
    // Acquire gate in `template_snapshot`.
    slot.named.store(1, Ordering::Release);
}

fn to_fixed(error: f64) -> u64 {
    (error * ERR_SCALE) as u64
}

fn from_fixed(sum: u64) -> f64 {
    sum as f64 / ERR_SCALE
}

/// FNV-1a, nudged away from 0 (0 marks an unclaimed slot).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if hash == 0 {
        1
    } else {
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(scale: f64) -> PerfMetrics {
        PerfMetrics {
            elapsed_seconds: 2.0 * scale,
            disk_ios: 100.0 * scale,
            message_count: 10.0 * scale,
            message_bytes: 4096.0 * scale,
            records_accessed: 1000.0 * scale,
            records_used: 50.0 * scale,
        }
    }

    #[test]
    fn perfect_predictions_have_zero_error() {
        let t = ErrorTracker::new();
        let errs = t.record("q1", &metrics(1.0), &metrics(1.0));
        assert!(errs.iter().all(|e| e.abs() < 1e-3), "{errs:?}");
        assert_eq!(t.observations(), 1);
        assert!(t.global_mean(0) < 1e-3);
    }

    #[test]
    fn log_ratio_error_is_symmetric_and_scale_free() {
        let over = log_ratio_errors(&metrics(2.0), &metrics(1.0));
        let under = log_ratio_errors(&metrics(1.0), &metrics(2.0));
        for i in 0..PerfMetrics::DIM {
            assert!(
                (over[i] - under[i]).abs() < 1e-6,
                "metric {i}: over {} under {}",
                over[i],
                under[i]
            );
        }
        // A 2x miss scores ~ln 2 on every metric (± the ε shift).
        assert!((over[0] - 2f64.ln()).abs() < 0.01, "{}", over[0]);
    }

    #[test]
    fn zero_valued_metrics_are_well_defined() {
        let errs = log_ratio_errors(&PerfMetrics::zero(), &PerfMetrics::zero());
        assert!(errs.iter().all(|e| *e == 0.0));
        let errs = log_ratio_errors(&metrics(1.0), &PerfMetrics::zero());
        assert!(errs.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn per_template_means_are_tracked_separately() {
        let t = ErrorTracker::new();
        for _ in 0..4 {
            t.record("good", &metrics(1.0), &metrics(1.0));
            t.record("bad", &metrics(3.0), &metrics(1.0));
        }
        let rows = t.template_snapshot();
        assert_eq!(rows.len(), 2);
        // Sorted by name: "bad" first.
        assert_eq!(rows[0].template, "bad");
        assert_eq!(rows[0].count, 4);
        assert!(rows[0].overall > 0.5, "{}", rows[0].overall);
        assert_eq!(rows[1].template, "good");
        assert!(rows[1].overall < 1e-3, "{}", rows[1].overall);
    }

    #[test]
    fn table_overflow_drops_instead_of_blocking() {
        let t = ErrorTracker::new();
        for i in 0..(TEMPLATE_SLOTS + 10) {
            let name = format!("template_{i}");
            t.record(&name, &metrics(1.0), &metrics(1.0));
        }
        assert_eq!(t.dropped(), 10);
        assert_eq!(t.observations() as usize, TEMPLATE_SLOTS + 10);
        assert_eq!(t.template_snapshot().len(), TEMPLATE_SLOTS);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let t = std::sync::Arc::new(ErrorTracker::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let name = format!("t{}", (k * 250 + i) % 8);
                        t.record(&name, &metrics(2.0), &metrics(1.0));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("recorder thread");
        }
        assert_eq!(t.observations(), 1000);
        assert_eq!(t.dropped(), 0);
        let rows = t.template_snapshot();
        assert_eq!(rows.len(), 8);
        let mut n = 0;
        for r in &rows {
            n += r.count;
        }
        assert_eq!(n, 1000, "per-template counts must sum to the total");
    }

    #[test]
    fn tenant_attribution_tracks_separately_from_templates() {
        let t = ErrorTracker::new();
        // Tenant 7 runs a well-predicted workload; tenant 3's drifted.
        for _ in 0..4 {
            t.record_attributed("q1", 7, &metrics(1.0), &metrics(1.0));
            t.record_attributed("q1", 3, &metrics(3.0), &metrics(1.0));
        }
        assert_eq!(t.observations(), 8);
        assert_eq!(t.tenant_observations(7), 4);
        assert_eq!(t.tenant_observations(3), 4);
        assert_eq!(t.tenant_observations(99), 0, "unseen tenant is zero");
        assert!(t.tenant_mean(7, 0) < 1e-3, "{}", t.tenant_mean(7, 0));
        assert!(t.tenant_mean(3, 0) > 0.5, "{}", t.tenant_mean(3, 0));
        assert_eq!(t.tenant_ids(), vec![3, 7], "ascending, deterministic");
        // The shared template still pooled both tenants' pairs.
        let rows = t.template_snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 8);
        assert_eq!(t.tenant_dropped(), 0);
    }

    #[test]
    fn tenant_table_overflow_drops_attribution_only() {
        let t = ErrorTracker::new();
        for id in 0..(TENANT_SLOTS as u32 + 5) {
            t.record_attributed("q", id, &metrics(2.0), &metrics(1.0));
        }
        assert_eq!(t.tenant_dropped(), 5);
        // The pairs themselves were never lost.
        assert_eq!(t.observations(), TENANT_SLOTS as u64 + 5);
        assert_eq!(t.tenant_ids().len(), TENANT_SLOTS);
    }

    #[test]
    fn error_quantiles_reflect_the_distribution() {
        let t = ErrorTracker::new();
        for _ in 0..100 {
            t.record("q", &metrics(1.0), &metrics(1.0)); // ~0 error
        }
        for _ in 0..10 {
            t.record("q", &metrics(8.0), &metrics(1.0)); // ~ln 8 ≈ 2.08
        }
        // p50 near zero, p99 above 2000 milli-units.
        assert!(t.error_quantile(0, 0.50) < 64);
        assert!(t.error_quantile(0, 0.99) >= 2048);
    }
}
