//! Deterministic drift detection over prediction-error streams.
//!
//! One Page–Hinkley test per metric stream (the six paper metrics plus
//! a seventh "overall" stream, the mean of the six), gated by a
//! windowed mean-ratio check so slow noise accumulation alone cannot
//! fire. Both tests are driven purely by the error values and the
//! caller-supplied epoch (observation count) — no wall clock anywhere,
//! so a replay of the same error sequence drifts at the same epoch on
//! any machine.
//!
//! Page–Hinkley: a calibration mean `μ₀` and standard deviation `σ₀`
//! are frozen over the first `warmup` samples; each later sample `x`
//! accumulates the *normalized* deviation
//! `mₜ = mₜ₋₁ + ((x − μ₀)/σ₀ − δ)`; the test statistic is
//! `mₜ − min(m)`, which stays bounded (the `−δ` drift pulls a
//! stationary walk down faster than its `±1σ` steps push it up) and
//! grows linearly once the mean shifts up by more than `δ·σ₀`.
//! Normalizing by `σ₀` matters: per-query log-ratio errors are *noisy*
//! (σ near the mean itself for KCCA predictions), and a fixed absolute
//! slack is either deaf on quiet streams or alarm-happy on loud ones.
//! Drift is declared when the statistic exceeds `λ` *and* the mean of
//! the last `window` samples exceeds `μ₀ · min_ratio`.

use qpp_engine::PerfMetrics;
use std::collections::VecDeque;

/// Index of the synthetic "overall" stream (mean of the six metric
/// errors) in [`DriftDetector`]; metric streams are `0..6`.
pub const OVERALL: usize = PerfMetrics::DIM;

/// Streams tracked: six metrics + overall.
pub const STREAMS: usize = PerfMetrics::DIM + 1;

/// Drift-detection tunables.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Samples used to freeze the calibration mean `μ₀` and std `σ₀`.
    pub warmup: usize,
    /// Recent-window length for the mean-ratio gate.
    pub window: usize,
    /// Page–Hinkley slack `δ` in calibration-σ units: mean shifts
    /// smaller than `δ·σ₀` never accumulate.
    pub delta: f64,
    /// Page–Hinkley threshold `λ` on the normalized test statistic. A
    /// mean shift of `Δ·σ₀` fires after about `λ/(Δ−δ)` samples.
    pub lambda: f64,
    /// Recent mean must exceed `μ₀ ·` this for drift to be declared.
    pub min_ratio: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            warmup: 40,
            window: 16,
            delta: 0.25,
            lambda: 8.0,
            min_ratio: 1.4,
        }
    }
}

/// Page–Hinkley + mean-ratio state for one stream.
#[derive(Debug, Clone)]
struct StreamState {
    n: u64,
    calib_sum: f64,
    calib_sumsq: f64,
    mean0: f64,
    sigma0: f64,
    calibrated: bool,
    recent: VecDeque<f64>,
    recent_sum: f64,
    mh: f64,
    min_mh: f64,
}

impl StreamState {
    fn new(window: usize) -> StreamState {
        StreamState {
            n: 0,
            calib_sum: 0.0,
            calib_sumsq: 0.0,
            mean0: 0.0,
            sigma0: 1.0,
            calibrated: false,
            recent: VecDeque::with_capacity(window),
            recent_sum: 0.0,
            mh: 0.0,
            min_mh: 0.0,
        }
    }

    fn push_recent(&mut self, x: f64, window: usize) {
        self.recent.push_back(x);
        self.recent_sum += x;
        while self.recent.len() > window {
            if let Some(old) = self.recent.pop_front() {
                self.recent_sum -= old;
            }
        }
    }

    fn recent_mean(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.recent_sum / self.recent.len() as f64
        }
    }

    fn score(&self) -> f64 {
        self.mh - self.min_mh
    }

    /// Feeds one sample; returns `Some(score)` when past warmup and
    /// both tests agree the mean has shifted up.
    fn observe(&mut self, x: f64, cfg: &DriftConfig) -> Option<f64> {
        self.n += 1;
        self.push_recent(x, cfg.window);
        if !self.calibrated {
            self.calib_sum += x;
            self.calib_sumsq += x * x;
            if self.n as usize >= cfg.warmup {
                self.mean0 = self.calib_sum / self.n as f64;
                let variance =
                    (self.calib_sumsq / self.n as f64 - self.mean0 * self.mean0).max(0.0);
                // Floors: a near-constant calibration stream must not
                // divide deviations by ~zero (5% of the mean, with an
                // absolute backstop for a near-zero mean).
                self.sigma0 = variance.sqrt().max(0.05 * self.mean0).max(1e-6);
                self.calibrated = true;
            }
            return None;
        }
        self.mh += (x - self.mean0) / self.sigma0 - cfg.delta;
        if self.mh < self.min_mh {
            self.min_mh = self.mh;
        }
        let score = self.score();
        if score > cfg.lambda && self.recent_mean() > self.ratio_floor(cfg) {
            Some(score)
        } else {
            None
        }
    }

    fn ratio_floor(&self, cfg: &DriftConfig) -> f64 {
        // A tiny absolute floor keeps near-zero calibration means (a
        // near-perfect model) from declaring drift on harmless noise.
        (self.mean0 * cfg.min_ratio).max(0.01)
    }
}

/// A declared drift on one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSignal {
    /// Caller-supplied epoch (observation count) at declaration.
    pub epoch: u64,
    /// Stream index: `0..6` = canonical metric, [`OVERALL`] = mean.
    pub metric: usize,
    /// Human-readable stream name.
    pub metric_name: &'static str,
    /// Page–Hinkley statistic at declaration.
    pub score: f64,
    /// Recent-window mean error at declaration.
    pub recent_mean: f64,
    /// Frozen calibration mean error.
    pub calibration_mean: f64,
}

/// Per-metric drift detectors over the error streams produced by
/// [`crate::ErrorTracker::record`].
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    streams: [StreamState; STREAMS],
}

impl DriftDetector {
    /// Creates calibrating detectors for all streams.
    pub fn new(cfg: DriftConfig) -> DriftDetector {
        DriftDetector {
            cfg,
            streams: std::array::from_fn(|_| StreamState::new(cfg.window)),
        }
    }

    /// Feeds the per-metric errors of one completed query. Returns the
    /// first stream (lowest index) declaring drift this epoch, if any —
    /// deterministic for a deterministic error sequence.
    pub fn observe(&mut self, epoch: u64, errors: &[f64; PerfMetrics::DIM]) -> Option<DriftSignal> {
        let overall = crate::tracker::mean_error(errors);
        let mut fired: Option<DriftSignal> = None;
        for (i, stream) in self.streams.iter_mut().enumerate() {
            let x = if i == OVERALL { overall } else { errors[i] };
            if let Some(score) = stream.observe(x, &self.cfg) {
                if fired.is_none() {
                    fired = Some(DriftSignal {
                        epoch,
                        metric: i,
                        metric_name: stream_name(i),
                        score,
                        recent_mean: stream.recent_mean(),
                        calibration_mean: stream.mean0,
                    });
                }
            }
        }
        fired
    }

    /// Recent-window mean of a stream (index `0..6` or [`OVERALL`]).
    pub fn recent_mean(&self, stream: usize) -> f64 {
        self.streams[stream].recent_mean()
    }

    /// Frozen calibration mean of a stream (0.0 while calibrating).
    pub fn calibration_mean(&self, stream: usize) -> f64 {
        self.streams[stream].mean0
    }

    /// Frozen calibration std of a stream (1.0 while calibrating).
    pub fn calibration_sigma(&self, stream: usize) -> f64 {
        self.streams[stream].sigma0
    }

    /// Current Page–Hinkley statistic of a stream.
    pub fn score(&self, stream: usize) -> f64 {
        self.streams[stream].score()
    }

    /// True once every stream has frozen its calibration mean.
    pub fn calibrated(&self) -> bool {
        self.streams.iter().all(|s| s.calibrated)
    }

    /// Discards all state and recalibrates from scratch — called after
    /// a model swap (the error distribution changed by design) and
    /// after a rejected candidate (re-baseline on the new normal
    /// instead of alarming forever).
    pub fn reset(&mut self) {
        self.streams = std::array::from_fn(|_| StreamState::new(self.cfg.window));
    }

    /// The configuration this detector runs with.
    pub fn config(&self) -> DriftConfig {
        self.cfg
    }
}

/// Stream display name: the canonical metric names plus "overall".
pub fn stream_name(stream: usize) -> &'static str {
    if stream == OVERALL {
        "overall"
    } else {
        PerfMetrics::NAMES[stream]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn errs(v: f64) -> [f64; PerfMetrics::DIM] {
        [v; PerfMetrics::DIM]
    }

    #[test]
    fn no_drift_before_warmup() {
        let mut d = DriftDetector::new(DriftConfig::default());
        for epoch in 0..40 {
            assert!(d.observe(epoch, &errs(5.0)).is_none(), "epoch {epoch}");
        }
        assert!(d.calibrated());
    }

    #[test]
    fn stationary_stream_stays_quiet() {
        let cfg = DriftConfig::default();
        let mut d = DriftDetector::new(cfg);
        let mut rng = StdRng::seed_from_u64(9);
        for epoch in 0..2000 {
            let e = 0.4 + rng.random_range(-0.1..0.1);
            assert!(
                d.observe(epoch, &errs(e)).is_none(),
                "false positive at {epoch}"
            );
        }
    }

    #[test]
    fn mean_shift_is_detected_and_attributed() {
        let cfg = DriftConfig::default();
        let mut d = DriftDetector::new(cfg);
        let mut rng = StdRng::seed_from_u64(10);
        for epoch in 0..cfg.warmup as u64 {
            let e = 0.3 + rng.random_range(-0.05..0.05);
            // Shift only metric 0: attribution must name it.
            let mut v = errs(e);
            v[0] = e;
            assert!(d.observe(epoch, &v).is_none());
        }
        let mut fired = None;
        for epoch in 0..200u64 {
            let e = 0.3 + rng.random_range(-0.05..0.05);
            let mut v = errs(e);
            v[0] = e + 0.9; // metric 0 drifts 4x
            if let Some(sig) = d.observe(cfg.warmup as u64 + epoch, &v) {
                fired = Some(sig);
                break;
            }
        }
        let sig = fired.expect("drift must be detected");
        assert_eq!(sig.metric, 0, "first drifted stream is metric 0");
        assert_eq!(sig.metric_name, "elapsed_time");
        assert!(sig.score > cfg.lambda);
        assert!(sig.recent_mean > sig.calibration_mean * cfg.min_ratio);
    }

    #[test]
    fn detection_is_deterministic_in_the_epoch() {
        let run = || {
            let cfg = DriftConfig::default();
            let mut d = DriftDetector::new(cfg);
            for epoch in 0..300u64 {
                let e = if epoch < 60 { 0.3 } else { 1.2 };
                if let Some(sig) = d.observe(epoch, &errs(e)) {
                    return Some(sig.epoch);
                }
            }
            None
        };
        let a = run().expect("detects");
        let b = run().expect("detects");
        assert_eq!(a, b, "same sequence must drift at the same epoch");
    }

    #[test]
    fn reset_recalibrates_from_scratch() {
        let cfg = DriftConfig::default();
        let mut d = DriftDetector::new(cfg);
        for epoch in 0..60u64 {
            d.observe(epoch, &errs(0.3));
        }
        // Force drift.
        let mut fired = false;
        for epoch in 60..160u64 {
            if d.observe(epoch, &errs(1.5)).is_some() {
                fired = true;
                break;
            }
        }
        assert!(fired);
        d.reset();
        assert!(!d.calibrated());
        // The high errors are the new normal after reset: quiet.
        for epoch in 0..500u64 {
            assert!(d.observe(epoch, &errs(1.5)).is_none(), "epoch {epoch}");
        }
    }

    /// Satellite property test: across 500 seeded stationary runs the
    /// detector produces at most a bounded handful of false positives.
    #[test]
    fn property_stationary_false_positive_rate_is_bounded() {
        let cfg = DriftConfig::default();
        let mut false_positives = 0;
        for seed in 0..500u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = DriftDetector::new(cfg);
            let base: f64 = 0.2 + rng.random_range(0.0..0.4);
            let noise: f64 = 0.05 + rng.random_range(0.0..0.1);
            let mut run_fired = false;
            for epoch in 0..400u64 {
                let mut v = [0.0; PerfMetrics::DIM];
                for slot in v.iter_mut() {
                    *slot = (base + rng.random_range(-noise..noise)).max(0.0);
                }
                if d.observe(epoch, &v).is_some() {
                    run_fired = true;
                    break;
                }
            }
            if run_fired {
                false_positives += 1;
            }
        }
        assert!(
            false_positives <= 5,
            "{false_positives}/500 stationary runs declared drift"
        );
    }
}
