//! The adaptive control plane: observe → detect → retrain →
//! shadow-score → swap → watch → (maybe) kill-switch.
//!
//! [`AdaptiveController`] plugs into the serving layer as a
//! [`CompletionObserver`]: every executed query's `(prediction,
//! observed)` pair flows through [`AdaptiveController::observe`], which
//! is cheap (tracker fold + one short mutex for the bookkeeping state)
//! and never trains, scores, or swaps inline. Heavy work is packaged
//! into a [`RetrainTask`] and executed by [`AdaptiveController::run_task`]
//! — on the background [`crate::AdaptWorker`] thread in production, or
//! synchronously via [`AdaptiveController::drain_pending`] in
//! deterministic tests.
//!
//! The per-model phase machine (see DESIGN.md §13):
//!
//! ```text
//! Stable --drift--> RetrainQueued --swap--> PostSwap --ok--> Stable
//!    ^                  | reject/race          | regression
//!    +------------------+                      v
//!    ^                                      Demoted --install--> Stable
//! ```

use crate::drift::{DriftConfig, DriftDetector, DriftSignal, OVERALL};
use crate::tracker::{log_ratio_errors, mean_error, ErrorTracker};
use parking_lot::{Condvar, Mutex};
use qpp_core::baselines::OptimizerCostModel;
use qpp_core::dataset::QueryRecord;
use qpp_core::predictor::KccaPredictor;
use qpp_core::retrain::SlidingWindowPredictor;
use qpp_core::QppError;
use qpp_obs::{record_mark, span, Counter, Gauge, Stage};
use qpp_serve::{
    AnswerSource, CompletionObserver, ModelKey, ModelRegistry, ServeResponse, SwapRace,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Control-plane tunables.
#[derive(Debug, Clone, Copy)]
pub struct AdaptOptions {
    /// Drift-detection configuration.
    pub drift: DriftConfig,
    /// Every Nth completed query is diverted to the shadow-scoring
    /// holdout instead of the training window (so the canary is judged
    /// on queries the candidate never trained on).
    pub holdout_every: usize,
    /// Most recent holdout records kept.
    pub holdout_capacity: usize,
    /// Fewest holdout records required to shadow-score; below this the
    /// retrain is abandoned (better no swap than an unjudged swap).
    pub min_holdout: usize,
    /// Newest holdout records actually replayed per shadow score.
    pub shadow_slice: usize,
    /// The candidate must beat the incumbent's holdout error by this
    /// relative margin to be swapped in (0.05 = 5% better).
    pub shadow_margin: f64,
    /// Completed queries observed *after* drift is declared before the
    /// retrain task is released to the worker. Retraining at the drift
    /// instant would train on a window still dominated by pre-drift
    /// records; this delay lets the sliding window turn over to the
    /// new regime first. 0 releases immediately.
    pub retrain_delay: usize,
    /// Completed queries watched after a swap before the kill-switch
    /// verdict.
    pub kill_window: usize,
    /// Demote when post-swap mean error exceeds the pre-swap (drifted)
    /// mean error by this factor — the canary made things *worse* than
    /// the model it replaced.
    pub kill_ratio: f64,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            drift: DriftConfig::default(),
            holdout_every: 4,
            holdout_capacity: 64,
            min_holdout: 8,
            shadow_slice: 24,
            shadow_margin: 0.05,
            retrain_delay: 64,
            kill_window: 32,
            kill_ratio: 1.5,
        }
    }
}

/// Current position in the adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Watching the error streams; no adaptation in flight.
    Stable,
    /// Drift declared; accumulating post-drift observations so the
    /// training window turns over before the retrain is released.
    Accumulating {
        /// Observations still to go before release.
        remaining: usize,
        /// The task to release.
        task: RetrainTask,
    },
    /// Drift declared; a retrain task is queued or running.
    RetrainQueued,
    /// A candidate was swapped in; watching its live error.
    PostSwap {
        /// Registry version minted by the swap.
        generation: u64,
        /// Error stream being watched: the one that drifted
        /// (`0..6` or [`OVERALL`]).
        stream: usize,
        /// Recent mean error of that stream on the *drifted incumbent*
        /// at drift time — the bar the canary must not be worse than.
        pre_err: f64,
        /// Completed queries watched so far.
        observed: usize,
        /// Sum of their errors on the watched stream.
        err_sum: f64,
    },
    /// The kill-switch fired; serving from the cost-model baseline
    /// until a healthy model is installed.
    Demoted,
}

/// A queued request to retrain and canary a candidate model. Carries
/// only the decision context; training data and holdout are
/// snapshotted from live state when the task actually *runs*, so a
/// task that waited in the queue trains on the freshest window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainTask {
    /// The drift that caused this task.
    pub signal: DriftSignal,
    /// Registry version of the incumbent at drift time (the guarded
    /// swap's expectation).
    pub incumbent: u64,
    /// Recent mean error of the drifted stream at drift time.
    pub pre_err: f64,
}

/// What [`AdaptiveController::run_task`] did.
#[derive(Debug)]
pub enum AdaptOutcome {
    /// Candidate won the shadow score and was swapped in.
    Swapped {
        /// Registry version minted for the candidate.
        generation: u64,
        /// Candidate mean holdout error.
        candidate_err: f64,
        /// Incumbent mean holdout error.
        incumbent_err: f64,
    },
    /// Candidate lost (or tied within the margin); incumbent kept.
    Rejected {
        /// Candidate mean holdout error.
        candidate_err: f64,
        /// Incumbent mean holdout error.
        incumbent_err: f64,
    },
    /// The guarded swap lost its race (someone installed meanwhile).
    Raced(SwapRace),
    /// Training the candidate failed; incumbent kept.
    TrainFailed(QppError),
    /// Too little data to train or judge a candidate; incumbent kept.
    InsufficientData {
        /// Training-window records available.
        window: usize,
        /// Holdout records available.
        holdout: usize,
    },
}

/// Notable events surfaced by [`AdaptiveController::observe`].
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptEvent {
    /// Drift declared; a retrain task was queued.
    DriftDetected(DriftSignal),
    /// Post-swap watch completed without regression.
    CanaryPassed {
        /// Registry version being watched.
        generation: u64,
        /// Mean error over the watch window.
        post_err: f64,
    },
    /// Post-swap regression: the entry was demoted to the baseline.
    KillSwitch {
        /// Demoted-entry registry version.
        generation: u64,
        /// Pre-swap (drifted) mean error.
        pre_err: f64,
        /// Post-swap mean error that tripped the switch.
        post_err: f64,
    },
    /// The kill-switch decision raced a newer install; nothing demoted.
    KillSwitchRaced(SwapRace),
}

/// Lock-free adaptation counters and gauges (JSONL-exportable).
#[derive(Debug, Default)]
pub struct AdaptStats {
    /// Completed KCCA-answered queries folded into the tracker.
    pub observations: Counter,
    /// Drift signals that queued a retrain.
    pub drift_signals: Counter,
    /// Retrain tasks executed.
    pub retrains: Counter,
    /// Shadow-score evaluations performed.
    pub shadow_evaluations: Counter,
    /// Candidates swapped in.
    pub canary_swaps: Counter,
    /// Candidates rejected by the shadow score.
    pub canary_rejections: Counter,
    /// Guarded swaps lost to a concurrent install.
    pub swap_races: Counter,
    /// Kill-switch demotions.
    pub demotions: Counter,
    /// Recent-window mean overall error.
    pub recent_mean_err: Gauge,
    /// Frozen calibration mean overall error.
    pub calibration_mean_err: Gauge,
    /// Current Page–Hinkley statistic of the overall stream.
    pub drift_score: Gauge,
}

impl AdaptStats {
    /// Counters and gauges as JSON lines, one object per line, in
    /// fixed field order (mirrors `qpp_obs::Recorder::counters_jsonl`).
    pub fn counters_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("observations", self.observations.get()),
            ("drift_signals", self.drift_signals.get()),
            ("retrains", self.retrains.get()),
            ("shadow_evaluations", self.shadow_evaluations.get()),
            ("canary_swaps", self.canary_swaps.get()),
            ("canary_rejections", self.canary_rejections.get()),
            ("swap_races", self.swap_races.get()),
            ("demotions", self.demotions.get()),
        ] {
            out.push_str(&format!("{{\"counter\":\"{name}\",\"value\":{value}}}\n"));
        }
        for (name, value) in [
            ("recent_mean_err", self.recent_mean_err.get()),
            ("calibration_mean_err", self.calibration_mean_err.get()),
            ("drift_score", self.drift_score.get()),
        ] {
            out.push_str(&format!("{{\"gauge\":\"{name}\",\"value\":{value:.6}}}\n"));
        }
        out
    }
}

/// Mutable bookkeeping behind one short-lived mutex.
#[derive(Debug)]
struct ControlState {
    detector: DriftDetector,
    window: SlidingWindowPredictor,
    holdout: VecDeque<QueryRecord>,
    epoch: u64,
    since_holdout: usize,
    phase: Phase,
}

/// The continuous-learning control plane for one registry entry.
#[derive(Debug)]
pub struct AdaptiveController {
    registry: Arc<ModelRegistry>,
    key: ModelKey,
    options: AdaptOptions,
    tracker: ErrorTracker,
    stats: AdaptStats,
    state: Mutex<ControlState>,
    tasks: Mutex<VecDeque<RetrainTask>>,
    task_ready: Condvar,
    shutdown: AtomicBool,
}

impl AdaptiveController {
    /// Creates a controller adapting the model under `key` in
    /// `registry`. `window` supplies both the sliding training set
    /// (seed it with the initial training data) and the predictor
    /// options candidates train with.
    pub fn new(
        registry: Arc<ModelRegistry>,
        key: ModelKey,
        window: SlidingWindowPredictor,
        options: AdaptOptions,
    ) -> AdaptiveController {
        AdaptiveController {
            registry,
            key,
            options,
            tracker: ErrorTracker::new(),
            stats: AdaptStats::default(),
            state: Mutex::new(ControlState {
                detector: DriftDetector::new(options.drift),
                window,
                holdout: VecDeque::with_capacity(options.holdout_capacity),
                epoch: 0,
                since_holdout: 0,
                phase: Phase::Stable,
            }),
            tasks: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The online error tracker (per-template and global error views).
    pub fn tracker(&self) -> &ErrorTracker {
        &self.tracker
    }

    /// Adaptation counters and gauges.
    pub fn stats(&self) -> &AdaptStats {
        &self.stats
    }

    /// Current phase of the adaptation loop.
    pub fn phase(&self) -> Phase {
        self.state.lock().phase
    }

    /// Feeds one completed query. KCCA-answered queries update the
    /// error tracker and drift detector; every executed query (any
    /// answer source) refreshes the training window / holdout. Returns
    /// a notable event when one occurred at this observation.
    pub fn observe(&self, record: &QueryRecord, response: &ServeResponse) -> Option<AdaptEvent> {
        if response.source != AnswerSource::Kcca {
            // Fallback answers carry no multi-metric prediction to
            // score, but the executed query is still fresh training
            // data.
            let mut st = self.state.lock();
            Self::stash(&mut st, record, &self.options);
            return None;
        }
        // Tenant-attributed: the serve layer resolved the request's
        // tenant, so drift can be localized to the workload owner that
        // produced it.
        let errors = self.tracker.record_attributed(
            &record.spec.template,
            response.tenant.0,
            &response.prediction.metrics,
            &record.metrics,
        );
        self.stats.observations.incr();
        let overall = mean_error(&errors);

        let mut st = self.state.lock();
        st.epoch += 1;
        let epoch = st.epoch;
        Self::stash(&mut st, record, &self.options);
        let signal = st.detector.observe(epoch, &errors);
        self.stats
            .recent_mean_err
            .set(st.detector.recent_mean(OVERALL));
        self.stats
            .calibration_mean_err
            .set(st.detector.calibration_mean(OVERALL));
        self.stats.drift_score.set(st.detector.score(OVERALL));

        match st.phase {
            Phase::Stable => {
                let signal = signal?;
                let incumbent = self.registry.current_version(&self.key)?;
                let pre_err = st.detector.recent_mean(signal.metric);
                let task = RetrainTask {
                    signal,
                    incumbent,
                    pre_err,
                };
                if self.options.retrain_delay == 0 {
                    st.phase = Phase::RetrainQueued;
                    drop(st);
                    self.enqueue(task);
                } else {
                    st.phase = Phase::Accumulating {
                        remaining: self.options.retrain_delay,
                        task,
                    };
                    drop(st);
                }
                self.stats.drift_signals.incr();
                record_mark(Stage::Drift, signal.metric as u64);
                Some(AdaptEvent::DriftDetected(signal))
            }
            Phase::Accumulating { remaining, task } => {
                if remaining > 1 {
                    st.phase = Phase::Accumulating {
                        remaining: remaining - 1,
                        task,
                    };
                } else {
                    st.phase = Phase::RetrainQueued;
                    drop(st);
                    self.enqueue(task);
                }
                None
            }
            Phase::RetrainQueued | Phase::Demoted => None,
            Phase::PostSwap {
                generation,
                stream,
                pre_err,
                observed,
                err_sum,
            } => {
                let observed = observed + 1;
                let err_sum = err_sum
                    + if stream == OVERALL {
                        overall
                    } else {
                        errors[stream]
                    };
                if observed < self.options.kill_window {
                    st.phase = Phase::PostSwap {
                        generation,
                        stream,
                        pre_err,
                        observed,
                        err_sum,
                    };
                    return None;
                }
                let post_err = err_sum / observed as f64;
                if post_err > pre_err * self.options.kill_ratio {
                    st.phase = Phase::Demoted;
                    drop(st);
                    match self
                        .registry
                        .demote_if_current(self.key.clone(), generation)
                    {
                        Ok(gen) => {
                            self.stats.demotions.incr();
                            Some(AdaptEvent::KillSwitch {
                                generation: gen,
                                pre_err,
                                post_err,
                            })
                        }
                        Err(race) => {
                            // A newer model landed mid-watch; its
                            // health is not ours to judge.
                            self.state.lock().phase = Phase::Stable;
                            Some(AdaptEvent::KillSwitchRaced(race))
                        }
                    }
                } else {
                    st.phase = Phase::Stable;
                    Some(AdaptEvent::CanaryPassed {
                        generation,
                        post_err,
                    })
                }
            }
        }
    }

    /// Appends the record to the window, diverting every
    /// `holdout_every`-th to the shadow holdout instead.
    fn stash(st: &mut ControlState, record: &QueryRecord, options: &AdaptOptions) {
        st.since_holdout += 1;
        if st.since_holdout >= options.holdout_every {
            st.since_holdout = 0;
            st.holdout.push_back(record.clone());
            while st.holdout.len() > options.holdout_capacity {
                st.holdout.pop_front();
            }
        } else {
            st.window.push(record.clone());
        }
    }

    /// Executes one retrain task: train a candidate on the current
    /// window, shadow-score it against the incumbent on the newest
    /// holdout slice, and hot-swap only if it wins by the margin.
    pub fn run_task(&self, task: RetrainTask) -> AdaptOutcome {
        self.stats.retrains.incr();
        // Snapshot the freshest data (the window kept filling while
        // this task waited in the queue).
        let (dataset, holdout, predictor_options, min_train) = {
            let st = self.state.lock();
            let skip = st.holdout.len().saturating_sub(self.options.shadow_slice);
            let holdout: Vec<QueryRecord> = st.holdout.iter().skip(skip).cloned().collect();
            (
                st.window.window_dataset(),
                holdout,
                st.window.options(),
                st.window.min_train(),
            )
        };
        if dataset.len() < min_train || holdout.len() < self.options.min_holdout {
            self.back_to_stable(false);
            return AdaptOutcome::InsufficientData {
                window: dataset.len(),
                holdout: holdout.len(),
            };
        }

        let trained = {
            let mut retrain_span = span(Stage::Retrain);
            retrain_span.set_value(dataset.len() as u64);
            KccaPredictor::train(&dataset, predictor_options)
                .and_then(|p| OptimizerCostModel::train(&dataset).map(|f| (p, f)))
        };
        let (candidate, candidate_fallback) = match trained {
            Ok(pair) => pair,
            Err(e) => {
                self.back_to_stable(false);
                return AdaptOutcome::TrainFailed(e);
            }
        };

        let incumbent_entry = match self.registry.get(&self.key) {
            Some(entry) if entry.version == task.incumbent => entry,
            other => {
                self.back_to_stable(false);
                self.stats.swap_races.incr();
                return AdaptOutcome::Raced(SwapRace {
                    expected: task.incumbent,
                    found: other.map(|e| e.version),
                });
            }
        };

        // Judge on the stream that actually drifted: the overall mean
        // dilutes a one-metric regression sixfold, and the margin test
        // would drown in the other metrics' noise.
        let stream = task.signal.metric;
        let (candidate_err, incumbent_err) = {
            let mut score_span = span(Stage::ShadowScore);
            score_span.set_value(holdout.len() as u64);
            (
                shadow_score(&candidate, &holdout, stream),
                shadow_score(&incumbent_entry.predictor, &holdout, stream),
            )
        };
        self.stats.shadow_evaluations.incr();

        if candidate_err <= incumbent_err * (1.0 - self.options.shadow_margin) {
            match self.registry.swap_if_current(
                self.key.clone(),
                task.incumbent,
                candidate,
                candidate_fallback,
            ) {
                Ok(generation) => {
                    self.stats.canary_swaps.incr();
                    record_mark(Stage::CanarySwap, generation);
                    let mut st = self.state.lock();
                    st.detector.reset();
                    st.phase = Phase::PostSwap {
                        generation,
                        stream,
                        pre_err: task.pre_err,
                        observed: 0,
                        err_sum: 0.0,
                    };
                    AdaptOutcome::Swapped {
                        generation,
                        candidate_err,
                        incumbent_err,
                    }
                }
                Err(race) => {
                    self.stats.swap_races.incr();
                    self.back_to_stable(false);
                    AdaptOutcome::Raced(race)
                }
            }
        } else {
            self.stats.canary_rejections.incr();
            // The incumbent is as good as it gets on current traffic;
            // re-baseline the detector on the new normal instead of
            // re-alarming every observation.
            self.back_to_stable(true);
            AdaptOutcome::Rejected {
                candidate_err,
                incumbent_err,
            }
        }
    }

    fn back_to_stable(&self, reset_detector: bool) {
        let mut st = self.state.lock();
        if reset_detector {
            st.detector.reset();
        }
        st.phase = Phase::Stable;
    }

    fn enqueue(&self, task: RetrainTask) {
        self.tasks.lock().push_back(task);
        self.task_ready.notify_one();
    }

    /// Blocks until a task is queued or [`shutdown_tasks`] is called.
    /// The background worker's main loop.
    ///
    /// [`shutdown_tasks`]: AdaptiveController::shutdown_tasks
    pub fn wait_task(&self) -> Option<RetrainTask> {
        let mut queue = self.tasks.lock();
        loop {
            if let Some(task) = queue.pop_front() {
                return Some(task);
            }
            // ordering: Acquire pairs with the Release store in
            // `shutdown_tasks`, so a waiter woken by `notify_all` sees
            // the flag and exits instead of re-blocking forever.
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            self.task_ready.wait(&mut queue);
        }
    }

    /// Pops one queued task without blocking.
    pub fn try_take_task(&self) -> Option<RetrainTask> {
        self.tasks.lock().pop_front()
    }

    /// Runs every queued task synchronously on the calling thread —
    /// deterministic single-threaded adaptation for tests and the
    /// example's no-worker mode.
    pub fn drain_pending(&self) -> Vec<AdaptOutcome> {
        let mut outcomes = Vec::new();
        while let Some(task) = self.try_take_task() {
            outcomes.push(self.run_task(task));
        }
        outcomes
    }

    /// Wakes and terminates [`wait_task`] loops.
    ///
    /// [`wait_task`]: AdaptiveController::wait_task
    pub fn shutdown_tasks(&self) {
        // ordering: Release publishes the flag before `notify_all`;
        // pairs with the Acquire load in `wait_task`.
        self.shutdown.store(true, Ordering::Release);
        self.task_ready.notify_all();
    }
}

impl CompletionObserver for AdaptiveController {
    fn on_completion(&self, record: &QueryRecord, response: &ServeResponse) {
        self.observe(record, response);
    }
}

/// Mean log-ratio error of `predictor` replayed over the holdout
/// records, on one error stream (a metric index, or [`OVERALL`] for
/// the mean of all six). Records the model cannot predict (feature
/// outside its support) score the clamp maximum — a model that fails
/// on live traffic must not win by abstaining. Returns infinity for an
/// empty holdout so the caller's margin comparison rejects the swap.
fn shadow_score(predictor: &KccaPredictor, holdout: &[QueryRecord], stream: usize) -> f64 {
    if holdout.is_empty() {
        return f64::INFINITY;
    }
    let mut sum = 0.0;
    for record in holdout {
        match predictor.predict(&record.spec, &record.optimized.plan) {
            Ok(p) => {
                let errors = log_ratio_errors(&p.metrics, &record.metrics);
                sum += if stream == OVERALL {
                    mean_error(&errors)
                } else {
                    errors[stream]
                };
            }
            Err(_) => sum += 64.0,
        }
    }
    sum / holdout.len() as f64
}
