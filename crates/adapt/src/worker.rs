//! Background retrain worker.
//!
//! One dedicated thread blocks on the controller's task queue and runs
//! each [`crate::RetrainTask`] off the serving threads — KCCA training
//! is cubic in the window size and must never stall a prediction.
//! Dropping the worker shuts the queue down and joins the thread.

use crate::controller::AdaptiveController;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Owns the background thread executing retrain tasks.
#[derive(Debug)]
pub struct AdaptWorker {
    controller: Arc<AdaptiveController>,
    handle: Option<JoinHandle<()>>,
}

impl AdaptWorker {
    /// Spawns the worker loop over `controller`'s task queue.
    pub fn spawn(controller: Arc<AdaptiveController>) -> AdaptWorker {
        let looped = Arc::clone(&controller);
        let handle = std::thread::spawn(move || {
            while let Some(task) = looped.wait_task() {
                // Outcomes are reflected in the controller's stats and
                // phase; the worker itself has nothing to report.
                let _ = looped.run_task(task);
            }
        });
        AdaptWorker {
            controller,
            handle: Some(handle),
        }
    }

    /// Stops the worker after it finishes any in-flight task.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.controller.shutdown_tasks();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AdaptWorker {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdaptOptions;
    use qpp_core::predictor::PredictorOptions;
    use qpp_core::retrain::SlidingWindowPredictor;
    use qpp_core::Dataset;
    use qpp_core::FeatureKind;
    use qpp_engine::SystemConfig;
    use qpp_serve::{ModelKey, ModelRegistry};
    use qpp_workload::{Schema, WorkloadGenerator};

    #[test]
    fn worker_drains_and_shuts_down_cleanly() {
        let schema = Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, 91);
        let data = Dataset::collect(&schema, g.generate(12), &SystemConfig::neoview_4(), 2);
        let window = SlidingWindowPredictor::new(data, 32, usize::MAX, PredictorOptions::default());
        let controller = Arc::new(AdaptiveController::new(
            Arc::new(ModelRegistry::new()),
            ModelKey::new("neoview_4", FeatureKind::QueryPlan),
            window,
            AdaptOptions::default(),
        ));
        let worker = AdaptWorker::spawn(Arc::clone(&controller));
        // No tasks queued: shutdown must not hang on the empty queue.
        worker.shutdown();
    }
}
