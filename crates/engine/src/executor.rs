//! Execution model: turns a physical plan into measured metrics.
//!
//! The executor is the part of the simulator that knows the *ground
//! truth*: it propagates the workload's true selectivities and join
//! fan-outs through the plan (where the optimizer used catalog
//! estimates) and charges each operator for CPU work, disk I/O, and
//! interconnect traffic on the given [`SystemConfig`].
//!
//! Behaviours preserved from the paper's testbed:
//!
//! * **memory cliffs** — tables that fit in the buffer pool are read
//!   without disk I/O (most TPC-DS SF-1 queries did zero I/O on the
//!   4-node system); hash joins and sorts whose working set exceeds
//!   memory spill and pay 2x read+write passes;
//! * **parallel speedup with skew** — operators run on all CPUs, with a
//!   multiplicative skew penalty, except final result composition which
//!   is single-node;
//! * **message traffic** — every exchange charges per-message and
//!   per-byte costs, nested-loop joins broadcast their inner;
//! * **run-to-run noise** — deterministic per (query, configuration),
//!   log-normal on elapsed time.

use crate::config::SystemConfig;
use crate::metrics::PerfMetrics;
use crate::optimizer::{Annotation, OptimizedQuery, BAND_WIDTH};
use crate::plan::OpKind;
use qpp_workload::spec::{JoinKind, PredOp, QuerySpec};
use qpp_workload::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hash::{DefaultHasher, Hash, Hasher};

/// Result of simulating one query execution.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// The six measured metrics.
    pub metrics: PerfMetrics,
    /// True output cardinality per plan node (node-aligned).
    pub true_rows: Vec<f64>,
}

/// Fraction of total memory usable as a buffer pool for base tables.
const CACHE_FRACTION: f64 = 0.4;
/// Fraction of total memory usable as operator working memory.
const WORK_MEM_FRACTION: f64 = 0.3;

/// Simulates executing `opt` (a plan for `q`) on `config`.
///
/// Deterministic: the same `(query, schema, config)` triple always
/// produces the same metrics. Rerunning on a different configuration
/// draws fresh noise but keeps the query's data-dependent truth fixed,
/// mirroring reruns of a workload on resized hardware.
pub fn execute(
    q: &QuerySpec,
    opt: &OptimizedQuery,
    schema: &Schema,
    config: &SystemConfig,
) -> ExecutionOutcome {
    let mut rng = noise_rng(q, config);
    let plan = &opt.plan;
    let n = plan.nodes.len();
    let mut true_rows = vec![0.0f64; n];

    let cpus = config.cpus as f64;
    let cpu_rate = config.cpu_tuple_rate * cpus;
    let work_mem = config.total_memory() as f64 * WORK_MEM_FRACTION;
    let cache_budget = config.total_memory() as f64 * CACHE_FRACTION;
    let disk_rate = config.disk_bandwidth * config.data_partitions as f64;
    let net_rate = config.net_bandwidth * cpus;

    let mut elapsed = config.startup_seconds;
    let mut disk_bytes = 0.0f64;
    let mut msg_count = 0.0f64;
    let mut msg_bytes = 0.0f64;
    let mut records_accessed = 0.0f64;
    let mut records_used = 0.0f64;

    for i in 0..n {
        let node = &plan.nodes[i];
        let child_rows: Vec<f64> = node.children.iter().map(|&c| true_rows[c]).collect();
        let child_widths: Vec<f64> = node
            .children
            .iter()
            .map(|&c| plan.nodes[c].row_width)
            .collect();

        let mut cpu_ops = 0.0f64;
        let mut io_bytes = 0.0f64;
        let mut net_bytes_here = 0.0f64;

        let out_rows = match node.kind {
            OpKind::FileScan => {
                let table_name = node.table.as_deref().unwrap_or("");
                let table_rows = schema.rows(table_name) as f64;
                let (accessed, used) = match opt.annotations[i] {
                    Some(Annotation::Scan { spec_table }) => scan_truth(q, spec_table, table_rows),
                    // Subquery inner scans carry no pushed predicates.
                    _ => (table_rows, table_rows),
                };
                records_accessed += accessed;
                records_used += used;
                cpu_ops += accessed * 1.0 + used * 0.5;
                let table_bytes = table_rows * node.row_width;
                if table_bytes > cache_budget {
                    io_bytes += accessed * node.row_width;
                }
                used
            }
            OpKind::NestedLoopJoin => {
                let (outer, inner) = (child_rows[0], child_rows[1]);
                let out = join_truth(q, &opt.annotations[i], outer, inner, schema);
                // Broadcast the inner to every CPU.
                let inner_bytes = inner * child_widths[1];
                net_bytes_here += inner_bytes * cpus;
                cpu_ops += outer * inner * 0.1 + out * 0.5;
                out
            }
            OpKind::HashJoin => {
                let (outer, inner) = (child_rows[0], child_rows[1]);
                let out = join_truth(q, &opt.annotations[i], outer, inner, schema);
                cpu_ops += inner * 3.0 + outer * 1.5 + out * 0.5;
                let build_bytes = inner * child_widths[1];
                if build_bytes > work_mem {
                    // Grace hash join: write + re-read both sides.
                    io_bytes += 2.0 * (build_bytes + outer * child_widths[0]);
                }
                out
            }
            OpKind::MergeJoin => {
                let (outer, inner) = (child_rows[0], child_rows[1]);
                let out = join_truth(q, &opt.annotations[i], outer, inner, schema);
                let total = outer + inner;
                cpu_ops += total * total.max(2.0).log2() * 0.5 + out * 0.5;
                let bytes = outer * child_widths[0] + inner * child_widths[1];
                if bytes > work_mem {
                    io_bytes += 2.0 * bytes;
                }
                out
            }
            OpKind::SemiJoin => {
                let (outer, inner) = (child_rows[0], child_rows[1]);
                let pass = match opt.annotations[i] {
                    Some(Annotation::Semi { subquery }) => {
                        q.subqueries[subquery].true_pass_fraction
                    }
                    _ => 0.3,
                };
                cpu_ops += outer * 1.5 + inner * 3.0;
                (outer * pass).max(1.0)
            }
            OpKind::Sort => {
                let input = child_rows[0];
                cpu_ops += input * input.max(2.0).log2() * 0.4;
                let bytes = input * child_widths[0];
                if bytes > work_mem {
                    io_bytes += 2.0 * bytes;
                }
                input
            }
            OpKind::HashGroupBy => {
                let input = child_rows[0];
                // True group count wobbles around the estimate.
                let factor = 10f64.powf(standard_normal(&mut rng) * 0.12);
                let groups = (node.est_rows * factor).clamp(1.0, input.max(1.0));
                cpu_ops += input * 2.0 + groups * 0.5;
                let bytes = groups * node.row_width;
                if bytes > work_mem {
                    io_bytes += 2.0 * bytes;
                }
                groups
            }
            OpKind::Exchange => {
                let input = child_rows[0];
                let bytes = input * child_widths[0];
                net_bytes_here += bytes;
                cpu_ops += input * 0.6;
                input
            }
            OpKind::Split => {
                cpu_ops += child_rows[0] * 0.1;
                child_rows[0]
            }
            OpKind::Top => {
                let input = child_rows[0];
                cpu_ops += input * 0.2;
                input.min(node.est_rows.max(1.0))
            }
            OpKind::Filter => {
                cpu_ops += child_rows[0] * 0.3;
                child_rows[0]
            }
            OpKind::Root => {
                // Final composition is single-node (paper §IV-A).
                let input = child_rows[0];
                elapsed += input * 0.5 / config.cpu_tuple_rate;
                input
            }
        };
        true_rows[i] = out_rows;

        if net_bytes_here > 0.0 {
            msg_bytes += net_bytes_here;
            msg_count += cpus * cpus + (net_bytes_here / config.message_unit as f64).ceil();
        }
        disk_bytes += io_bytes;

        let cpu_time = cpu_ops / cpu_rate;
        let io_time = io_bytes / disk_rate;
        let net_time = net_bytes_here / net_rate;
        elapsed += cpu_time.max(io_time).max(net_time);
    }

    // Partition skew, systematic drift, and run-to-run noise.
    let skew = 1.0 + standard_normal(&mut rng).abs() * 0.045;
    let noise = (standard_normal(&mut rng) * config.elapsed_noise_sigma).exp();
    elapsed *= skew * config.drift * noise;

    let metrics = PerfMetrics {
        elapsed_seconds: elapsed,
        disk_ios: (disk_bytes / config.io_unit as f64).round(),
        message_count: msg_count.round(),
        message_bytes: msg_bytes.round(),
        records_accessed: records_accessed.round(),
        records_used: records_used.round(),
    };
    debug_assert!(metrics.is_valid());
    ExecutionOutcome { metrics, true_rows }
}

/// True (accessed, used) cardinalities of a scan: partition pruning on
/// the leading column reduces what is read; remaining predicates only
/// reduce what is used.
fn scan_truth(q: &QuerySpec, spec_table: usize, table_rows: f64) -> (f64, f64) {
    let leading = leading_column(q, spec_table);
    let mut accessed_frac = 1.0;
    let mut used_frac = 1.0;
    for p in q.predicates.iter().filter(|p| p.table == spec_table) {
        used_frac *= p.true_selectivity;
        let prunes =
            matches!(p.op, PredOp::Range { .. }) && Some(p.column.as_str()) == leading.as_deref();
        if prunes {
            accessed_frac *= p.true_selectivity;
        }
    }
    let accessed = (table_rows * accessed_frac).max(1.0);
    let used = (table_rows * used_frac).max(1.0).min(accessed);
    (accessed, used)
}

fn leading_column(q: &QuerySpec, spec_table: usize) -> Option<String> {
    // The generator places driving Range predicates on the table's first
    // column; the executor treats that column as the clustering key.
    q.predicates
        .iter()
        .filter(|p| p.table == spec_table)
        .filter(|p| matches!(p.op, PredOp::Range { .. }))
        .map(|p| p.column.clone())
        .next()
}

/// True join output cardinality: the textbook formula applied to *true*
/// input sizes, times the data's fan-out factor.
fn join_truth(
    q: &QuerySpec,
    annotation: &Option<Annotation>,
    outer: f64,
    inner: f64,
    schema: &Schema,
) -> f64 {
    let Some(Annotation::Join { edge }) = annotation else {
        return outer.max(inner);
    };
    let e = &q.joins[*edge];
    let ndv = |t: &str, c: &str| -> f64 {
        schema
            .table(t)
            .and_then(|tb| tb.column(c))
            .map(|col| col.ndv.max(1) as f64)
            .unwrap_or(100.0)
    };
    let base = match e.kind {
        JoinKind::Equi => {
            let d = ndv(&q.tables[e.left], &e.left_column)
                .max(ndv(&q.tables[e.right], &e.right_column));
            outer * inner / d
        }
        JoinKind::NonEqui => {
            let frac = (BAND_WIDTH / ndv(&q.tables[e.right], &e.right_column)).min(1.0);
            outer * inner * frac
        }
    };
    (base * e.true_fanout_factor).max(1.0)
}

/// Deterministic noise stream per (query, configuration).
fn noise_rng(q: &QuerySpec, config: &SystemConfig) -> StdRng {
    let mut h = DefaultHasher::new();
    q.id.hash(&mut h);
    q.template.hash(&mut h);
    config.name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::optimizer::optimize;
    use qpp_workload::WorkloadGenerator;

    fn run_one(seed: u64) -> (QuerySpec, PerfMetrics) {
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let cfg = SystemConfig::neoview_4();
        let mut g = WorkloadGenerator::tpcds(1.0, seed);
        let q = g.generate_one();
        let opt = optimize(&q, &cat, &cfg);
        let out = execute(&q, &opt, &schema, &cfg);
        (q, out.metrics)
    }

    #[test]
    fn execution_is_deterministic() {
        let (_, a) = run_one(5);
        let (_, b) = run_one(5);
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_valid_for_many_queries() {
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let cfg = SystemConfig::neoview_4();
        let mut g = WorkloadGenerator::tpcds(1.0, 77);
        for q in g.generate(200) {
            let opt = optimize(&q, &cat, &cfg);
            let out = execute(&q, &opt, &schema, &cfg);
            assert!(out.metrics.is_valid(), "query {}", q.id);
            assert!(out.metrics.elapsed_seconds > 0.0);
            assert!(out.metrics.records_accessed >= out.metrics.records_used);
        }
    }

    #[test]
    fn small_queries_do_no_disk_io_on_research_system() {
        // The paper: "we had thousands of small queries whose data fit
        // in memory" → disk I/Os 0 for most queries on the 4-node box.
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let cfg = SystemConfig::neoview_4();
        let mut g = WorkloadGenerator::tpcds(1.0, 13);
        let mut zero_io = 0;
        let mut total = 0;
        for q in g.generate(100) {
            let opt = optimize(&q, &cat, &cfg);
            let out = execute(&q, &opt, &schema, &cfg);
            total += 1;
            if out.metrics.disk_ios == 0.0 {
                zero_io += 1;
            }
        }
        assert!(
            zero_io * 2 > total,
            "only {zero_io}/{total} queries avoided disk I/O"
        );
    }

    #[test]
    fn four_cpu_32node_config_does_disk_io() {
        // Fig. 16: only the 4-CPU configuration of the 32-node system
        // had too little memory to cache the fact tables.
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let mut g = WorkloadGenerator::tpcds(1.0, 29);
        let qs = g.generate(60);
        let io_for = |cpus: u32| -> f64 {
            let cfg = SystemConfig::neoview_32(cpus);
            qs.iter()
                .map(|q| {
                    let opt = optimize(q, &cat, &cfg);
                    execute(q, &opt, &schema, &cfg).metrics.disk_ios
                })
                .sum()
        };
        let io4 = io_for(4);
        let io32 = io_for(32);
        assert!(io4 > 0.0, "4-cpu config should incur disk I/O");
        assert!(
            io32 < io4 * 0.2,
            "32-cpu config should cache nearly everything (io4={io4}, io32={io32})"
        );
    }

    #[test]
    fn more_cpus_run_faster() {
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let mut g = WorkloadGenerator::tpcds(1.0, 31);
        let qs = g.generate(40);
        let total_for = |cpus: u32| -> f64 {
            let cfg = SystemConfig::neoview_32(cpus);
            qs.iter()
                .map(|q| {
                    let opt = optimize(q, &cat, &cfg);
                    execute(q, &opt, &schema, &cfg).metrics.elapsed_seconds
                })
                .sum()
        };
        let t4 = total_for(4);
        let t32 = total_for(32);
        assert!(
            t32 < t4,
            "32 cpus ({t32:.1}s) should beat 4 cpus ({t4:.1}s)"
        );
    }

    #[test]
    fn drift_scales_elapsed_only() {
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let mut g = WorkloadGenerator::tpcds(1.0, 41);
        let q = g.generate_one();
        let base_cfg = SystemConfig::neoview_4();
        let drift_cfg = SystemConfig::neoview_4().with_drift(2.0);
        let a = execute(&q, &optimize(&q, &cat, &base_cfg), &schema, &base_cfg).metrics;
        let b = execute(&q, &optimize(&q, &cat, &drift_cfg), &schema, &drift_cfg).metrics;
        assert!((b.elapsed_seconds / a.elapsed_seconds - 2.0).abs() < 1e-9);
        assert_eq!(a.records_used, b.records_used);
    }

    #[test]
    fn records_used_reflects_selectivity() {
        // Tightening every predicate must not increase records used.
        let schema = qpp_workload::Schema::tpcds(1.0);
        let cat = Catalog::new(schema.clone());
        let cfg = SystemConfig::neoview_4();
        let mut g = WorkloadGenerator::tpcds(1.0, 53);
        let q1 = g.generate_one();
        let mut q2 = q1.clone();
        for p in &mut q2.predicates {
            p.true_selectivity = (p.true_selectivity * 0.01).max(1e-8);
        }
        let m1 = execute(&q1, &optimize(&q1, &cat, &cfg), &schema, &cfg).metrics;
        let m2 = execute(&q2, &optimize(&q2, &cat, &cfg), &schema, &cfg).metrics;
        assert!(m2.records_used <= m1.records_used);
    }
}
