//! Physical query plans.
//!
//! A [`Plan`] is an arena of [`PlanNode`]s (children stored by index,
//! root last). Every node carries the optimizer's *estimated* output
//! cardinality — the information the paper's query-plan feature vector
//! condenses (Fig. 9: per-operator instance counts and cardinality
//! sums).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical operator kinds — the operator vocabulary of the simulated
/// engine (and the dimensions of the plan feature vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Partitioned base-table scan (with pushed-down predicates).
    FileScan,
    /// Nested-loop join with broadcast inner.
    NestedLoopJoin,
    /// Partitioned hash join.
    HashJoin,
    /// Sort-merge join (used for band joins on large inputs).
    MergeJoin,
    /// Hash semi-join (nested subqueries).
    SemiJoin,
    /// Full sort.
    Sort,
    /// Hash aggregation.
    HashGroupBy,
    /// Repartitioning / gathering data movement.
    Exchange,
    /// Partition-parallel split point.
    Split,
    /// Top-N (LIMIT).
    Top,
    /// Final result composition on the coordinating node.
    Root,
    /// Residual predicate evaluation not pushed into a scan.
    Filter,
}

impl OpKind {
    /// All operator kinds, in the canonical feature-vector order.
    pub const ALL: [OpKind; 12] = [
        OpKind::FileScan,
        OpKind::NestedLoopJoin,
        OpKind::HashJoin,
        OpKind::MergeJoin,
        OpKind::SemiJoin,
        OpKind::Sort,
        OpKind::HashGroupBy,
        OpKind::Exchange,
        OpKind::Split,
        OpKind::Top,
        OpKind::Root,
        OpKind::Filter,
    ];

    /// Index of this kind within [`OpKind::ALL`].
    ///
    /// Kept as an exhaustive match (checked against `ALL` by the
    /// roundtrip test below) so the lookup cannot panic.
    pub fn index(self) -> usize {
        match self {
            OpKind::FileScan => 0,
            OpKind::NestedLoopJoin => 1,
            OpKind::HashJoin => 2,
            OpKind::MergeJoin => 3,
            OpKind::SemiJoin => 4,
            OpKind::Sort => 5,
            OpKind::HashGroupBy => 6,
            OpKind::Exchange => 7,
            OpKind::Split => 8,
            OpKind::Top => 9,
            OpKind::Root => 10,
            OpKind::Filter => 11,
        }
    }

    /// Short lowercase name (matches the paper's plan listings, e.g.
    /// `file_scan`, `nested_join`).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::FileScan => "file_scan",
            OpKind::NestedLoopJoin => "nested_join",
            OpKind::HashJoin => "hash_join",
            OpKind::MergeJoin => "merge_join",
            OpKind::SemiJoin => "semi_join",
            OpKind::Sort => "sort",
            OpKind::HashGroupBy => "hashgroupby",
            OpKind::Exchange => "exchange",
            OpKind::Split => "split",
            OpKind::Top => "top",
            OpKind::Root => "root",
            OpKind::Filter => "filter",
        }
    }
}

/// One node of a physical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// Operator kind.
    pub kind: OpKind,
    /// Child node indices (0, 1 or 2 children).
    pub children: Vec<usize>,
    /// Optimizer-estimated output cardinality (rows).
    pub est_rows: f64,
    /// Estimated output row width, bytes.
    pub row_width: f64,
    /// Base table name for scans.
    pub table: Option<String>,
    /// Column the output is partitioned on (None = replicated/gathered).
    pub partition_key: Option<String>,
}

/// A physical plan: node arena plus the root index (always the last
/// node) and the optimizer's abstract cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Node arena; children precede parents.
    pub nodes: Vec<PlanNode>,
    /// Optimizer cost in abstract units (deliberately *not* seconds —
    /// the paper's Fig. 17 point).
    pub optimizer_cost: f64,
}

impl Plan {
    /// Root node index.
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of operators of the given kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Sum of estimated cardinalities over operators of the given kind.
    pub fn cardinality_sum(&self, kind: OpKind) -> f64 {
        qpp_linalg::vector::sum_iter(
            self.nodes
                .iter()
                .filter(|n| n.kind == kind)
                .map(|n| n.est_rows),
        )
    }

    /// Validates arena well-formedness: children precede parents, every
    /// non-root node has exactly one parent.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty plan".into());
        }
        let mut parents = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                if c >= i {
                    return Err(format!("node {i} has forward child {c}"));
                }
                parents[c] += 1;
            }
            if !n.est_rows.is_finite() || n.est_rows < 0.0 {
                return Err(format!("node {i} has bad est_rows {}", n.est_rows));
            }
        }
        for (i, &p) in parents.iter().enumerate() {
            if i != self.root() && p != 1 {
                return Err(format!("node {i} has {p} parents"));
            }
        }
        if parents[self.root()] != 0 {
            return Err("root has a parent".into());
        }
        Ok(())
    }

    /// Pretty-prints the plan as an indented operator tree (like the
    /// paper's Fig. 9 listing).
    pub fn display_tree(&self) -> String {
        let mut out = String::new();
        self.fmt_node(self.root(), 0, &mut out);
        out
    }

    fn fmt_node(&self, idx: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[idx];
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(n.kind.name());
        if let Some(t) = &n.table {
            out.push_str(&format!(" [ {t} ]"));
        }
        out.push_str(&format!(" (est {:.0})\n", n.est_rows));
        for &c in n.children.iter().rev() {
            self.fmt_node(c, depth + 1, out);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(table: &str, rows: f64) -> PlanNode {
        PlanNode {
            kind: OpKind::FileScan,
            children: vec![],
            est_rows: rows,
            row_width: 100.0,
            table: Some(table.to_string()),
            partition_key: None,
        }
    }

    fn tiny_plan() -> Plan {
        Plan {
            nodes: vec![
                leaf("a", 1000.0),
                leaf("b", 10.0),
                PlanNode {
                    kind: OpKind::HashJoin,
                    children: vec![0, 1],
                    est_rows: 1000.0,
                    row_width: 150.0,
                    table: None,
                    partition_key: None,
                },
                PlanNode {
                    kind: OpKind::Root,
                    children: vec![2],
                    est_rows: 1000.0,
                    row_width: 150.0,
                    table: None,
                    partition_key: None,
                },
            ],
            optimizer_cost: 42.0,
        }
    }

    #[test]
    fn counts_and_sums() {
        let p = tiny_plan();
        assert_eq!(p.count(OpKind::FileScan), 2);
        assert_eq!(p.count(OpKind::HashJoin), 1);
        assert_eq!(p.cardinality_sum(OpKind::FileScan), 1010.0);
    }

    #[test]
    fn validate_detects_forward_children() {
        let mut p = tiny_plan();
        p.nodes[2].children = vec![0, 3];
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_detects_orphans() {
        let mut p = tiny_plan();
        p.nodes[3].children = vec![0]; // node 1 and 2 orphaned
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_ok_for_well_formed() {
        assert_eq!(tiny_plan().validate(), Ok(()));
    }

    #[test]
    fn display_tree_mentions_tables() {
        let s = tiny_plan().display_tree();
        assert!(s.contains("file_scan [ a ]"));
        assert!(s.contains("root"));
    }

    #[test]
    fn all_kinds_have_unique_indices() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
