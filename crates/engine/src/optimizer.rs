//! Heuristic cost-based query optimizer.
//!
//! Produces a physical [`Plan`] from a logical [`QuerySpec`] using only
//! catalog statistics — estimated cardinalities under uniformity and
//! independence assumptions, greedy left-deep join ordering, and
//! threshold-based join-method selection. Also reports a scalar
//! *optimizer cost* in abstract units, deliberately not mapped to time
//! (the premise of the paper's Fig. 17 comparison): the cost model is
//! a classic single-node, page-I/O-oriented formula — it assumes every
//! page is fetched from disk, knows nothing about the buffer pool,
//! parallel execution, interconnect traffic, or operator spills. That
//! is precisely why its units do not track elapsed time on the real
//! (simulated) parallel system, while still ranking plans usefully.
//!
//! Plans depend on the [`SystemConfig`]: the nested-loop threshold
//! scales with available memory, and layouts where the data is spread
//! over more partitions than there are executing CPUs insert extra
//! data-movement operators — reproducing the paper's observation that
//! the same query gets different plans on the 4-node and 32-node
//! systems (§VII-B).

use crate::catalog::Catalog;
use crate::config::SystemConfig;
use crate::plan::{OpKind, Plan, PlanNode};
use qpp_workload::spec::{JoinKind, QuerySpec};
use serde::{Deserialize, Serialize};

/// Executor-facing annotation tying a plan node back to the logical
/// query element it implements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Annotation {
    /// Scan of `QuerySpec::tables[idx]`.
    Scan {
        /// Index into the spec's table list.
        spec_table: usize,
    },
    /// Join implementing `QuerySpec::joins[idx]`.
    Join {
        /// Index into the spec's join list.
        edge: usize,
    },
    /// Semi-join implementing `QuerySpec::subqueries[idx]`.
    Semi {
        /// Index into the spec's subquery list.
        subquery: usize,
    },
}

/// An optimized query: the physical plan plus its annotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizedQuery {
    /// The physical plan (estimated cardinalities, abstract cost).
    pub plan: Plan,
    /// Node-aligned annotations (same length as `plan.nodes`).
    pub annotations: Vec<Option<Annotation>>,
}

/// Band width used by the renderer and the optimizer for non-equi joins
/// (`BETWEEN x-30 AND x+30` → 61 values).
pub const BAND_WIDTH: f64 = 61.0;

/// Page size assumed by the optimizer's I/O-oriented cost model.
const PAGE_BYTES: f64 = 32.0 * 1024.0;

struct Builder<'a> {
    catalog: &'a Catalog,
    config: &'a SystemConfig,
    nodes: Vec<PlanNode>,
    annotations: Vec<Option<Annotation>>,
    cost: f64,
}

/// Running description of a partial plan (one subtree).
#[derive(Clone)]
struct Stream {
    node: usize,
    rows: f64,
    width: f64,
    partition_key: Option<String>,
}

impl<'a> Builder<'a> {
    fn push(&mut self, mut node: PlanNode, ann: Option<Annotation>, cost: f64) -> usize {
        if !node.est_rows.is_finite() {
            node.est_rows = f64::MAX / 1e6;
        }
        node.est_rows = node.est_rows.max(1.0);
        self.nodes.push(node);
        self.annotations.push(ann);
        self.cost += cost;
        self.nodes.len() - 1
    }

    /// Scan of the spec table `idx`, with all its predicates pushed down.
    fn scan(&mut self, q: &QuerySpec, idx: usize) -> Stream {
        let table = &q.tables[idx];
        let base_rows = self.catalog.rows(table);
        let width = self.catalog.row_width(table);
        let sel: f64 = q
            .predicates
            .iter()
            .filter(|p| p.table == idx)
            .map(|p| self.catalog.estimate_selectivity(table, p))
            .product();
        let est = (base_rows * sel).max(1.0);
        let partition_key = self
            .catalog
            .schema()
            .table(table)
            .and_then(|t| t.columns.first())
            .map(|c| c.name.clone());
        let node = self.push(
            PlanNode {
                kind: OpKind::FileScan,
                children: vec![],
                est_rows: est,
                row_width: width,
                table: Some(table.clone()),
                partition_key: partition_key.clone(),
            },
            Some(Annotation::Scan { spec_table: idx }),
            // Page-fetch cost of a full scan: the cost model assumes the
            // table is read from disk regardless of memory.
            (base_rows * width / PAGE_BYTES).max(1.0),
        );
        let mut stream = Stream {
            node,
            rows: est,
            width,
            partition_key,
        };
        // Data spread across more partitions than executing CPUs: results
        // must be combined from all drives through an extra split+exchange
        // (32-node system observation in the paper).
        if self.config.data_partitions > self.config.cpus {
            stream = self.exchange(stream, None);
        }
        stream
    }

    /// Split + Exchange repartitioning `input` onto `key` (None = gather).
    fn exchange(&mut self, input: Stream, key: Option<String>) -> Stream {
        let split = self.push(
            PlanNode {
                kind: OpKind::Split,
                children: vec![input.node],
                est_rows: input.rows,
                row_width: input.width,
                table: None,
                partition_key: input.partition_key.clone(),
            },
            None,
            // The single-node cost model does not charge data movement.
            0.0,
        );
        let node = self.push(
            PlanNode {
                kind: OpKind::Exchange,
                children: vec![split],
                est_rows: input.rows,
                row_width: input.width,
                table: None,
                partition_key: key.clone(),
            },
            None,
            0.0,
        );
        Stream {
            node,
            rows: input.rows,
            width: input.width,
            partition_key: key,
        }
    }

    /// Joins `outer` with the scanned table `inner_idx` along spec edge
    /// `edge_idx`.
    fn join(&mut self, q: &QuerySpec, outer: Stream, inner_idx: usize, edge_idx: usize) -> Stream {
        let edge = &q.joins[edge_idx];
        let mut inner = self.scan(q, inner_idx);
        let ltab = &q.tables[edge.left];
        let lcol = &edge.left_column;
        let rtab = &q.tables[edge.right];
        let rcol = &edge.right_column;
        let est = self
            .catalog
            .estimate_join(edge, ltab, rtab, outer.rows, inner.rows, BAND_WIDTH)
            .max(1.0);

        // NLJ threshold: how many inner rows we are willing to broadcast
        // and loop over. Scales with memory per CPU.
        let nlj_threshold = 2000.0
            * (self.config.mem_per_cpu as f64 / (2.0 * 1024.0 * 1024.0 * 1024.0)).clamp(0.05, 4.0);

        let (kind, est_out, op_cost) = match edge.kind {
            JoinKind::Equi => {
                let inner_pages = (inner.rows * inner.width / PAGE_BYTES).max(1.0);
                let outer_pages = (outer.rows * outer.width / PAGE_BYTES).max(1.0);
                if inner.rows <= nlj_threshold {
                    // Broadcast nested-loop join: no repartitioning needed.
                    (
                        OpKind::NestedLoopJoin,
                        est,
                        outer_pages + outer.rows * 0.002 * inner_pages,
                    )
                } else {
                    // Partitioned hash join: repartition sides not already
                    // partitioned on the join column.
                    if inner.partition_key.as_deref() != Some(rcol.as_str()) {
                        inner = self.exchange(inner, Some(rcol.clone()));
                    }
                    (OpKind::HashJoin, est, 3.0 * (inner_pages + outer_pages))
                }
            }
            JoinKind::NonEqui => {
                let inner_pages = (inner.rows * inner.width / PAGE_BYTES).max(1.0);
                let outer_pages = (outer.rows * outer.width / PAGE_BYTES).max(1.0);
                if inner.rows <= nlj_threshold {
                    (
                        OpKind::NestedLoopJoin,
                        est,
                        outer_pages + outer.rows * 0.002 * inner_pages,
                    )
                } else {
                    // Sort-merge band join.
                    let pages = outer_pages + inner_pages;
                    (OpKind::MergeJoin, est, pages * pages.max(2.0).log2())
                }
            }
        };
        let mut outer = outer;
        if kind == OpKind::HashJoin && outer.partition_key.as_deref() != Some(lcol.as_str()) {
            outer = self.exchange(outer, Some(lcol.clone()));
        }
        let width = (outer.width + inner.width) * 0.7;
        let node = self.push(
            PlanNode {
                kind,
                children: vec![outer.node, inner.node],
                est_rows: est_out,
                row_width: width,
                table: None,
                partition_key: if kind == OpKind::HashJoin {
                    Some(lcol.clone())
                } else {
                    outer.partition_key.clone()
                },
            },
            Some(Annotation::Join { edge: edge_idx }),
            op_cost,
        );
        Stream {
            node,
            rows: est_out,
            width,
            partition_key: self.nodes[node].partition_key.clone(),
        }
    }
}

/// Optimizes a logical query for the given configuration.
pub fn optimize(q: &QuerySpec, catalog: &Catalog, config: &SystemConfig) -> OptimizedQuery {
    debug_assert_eq!(q.validate(), Ok(()));
    let mut b = Builder {
        catalog,
        config,
        nodes: Vec::with_capacity(q.tables.len() * 3 + 8),
        annotations: Vec::new(),
        cost: 0.0,
    };

    // Driving table scan.
    let mut current = b.scan(q, 0);

    // Greedy left-deep join order: repeatedly take the pending edge whose
    // join yields the smallest estimated intermediate.
    let mut pending: Vec<usize> = (0..q.joins.len()).collect();
    while !pending.is_empty() {
        let mut best = (0usize, f64::INFINITY);
        for (pos, &e) in pending.iter().enumerate() {
            let edge = &q.joins[e];
            let inner_idx = edge.right;
            let inner_table = &q.tables[inner_idx];
            let inner_rows = catalog.rows(inner_table)
                * q.predicates
                    .iter()
                    .filter(|p| p.table == inner_idx)
                    .map(|p| catalog.estimate_selectivity(inner_table, p))
                    .product::<f64>();
            let est = catalog.estimate_join(
                edge,
                &q.tables[edge.left],
                inner_table,
                current.rows,
                inner_rows.max(1.0),
                BAND_WIDTH,
            );
            if est < best.1 {
                best = (pos, est);
            }
        }
        let edge_idx = pending.swap_remove(best.0);
        let inner_idx = q.joins[edge_idx].right;
        current = b.join(q, current, inner_idx, edge_idx);
    }

    // Semi-join subqueries.
    for (s_idx, sub) in q.subqueries.iter().enumerate() {
        let inner_rows = b.catalog.rows(&sub.inner_table).max(1.0);
        let inner_width = b.catalog.row_width(&sub.inner_table);
        let inner_node = b.push(
            PlanNode {
                kind: OpKind::FileScan,
                children: vec![],
                est_rows: inner_rows,
                row_width: inner_width,
                table: Some(sub.inner_table.clone()),
                partition_key: None,
            },
            None,
            inner_rows,
        );
        // The optimizer's magic guess for IN-subquery selectivity.
        let est_out = (current.rows * 0.3).max(1.0);
        let node = b.push(
            PlanNode {
                kind: OpKind::SemiJoin,
                children: vec![current.node, inner_node],
                est_rows: est_out,
                row_width: current.width,
                table: None,
                partition_key: current.partition_key.clone(),
            },
            Some(Annotation::Semi { subquery: s_idx }),
            (current.rows * current.width + 3.0 * inner_rows * inner_width) / PAGE_BYTES,
        );
        current = Stream {
            node,
            rows: est_out,
            width: current.width,
            partition_key: current.partition_key.clone(),
        };
    }

    // Aggregation: repartition on the grouping keys, then hash group-by.
    if q.group_by_cols > 0 || q.agg_cols > 0 {
        if q.group_by_cols > 0 {
            current = b.exchange(current, Some(format!("group_key_{}", q.group_by_cols)));
        }
        let groups = b.catalog.estimate_groups(current.rows, q.group_by_cols);
        let width = 8.0 * (q.group_by_cols + q.agg_cols) as f64 + 16.0;
        let in_rows = current.rows;
        let node = b.push(
            PlanNode {
                kind: OpKind::HashGroupBy,
                children: vec![current.node],
                est_rows: groups,
                row_width: width,
                table: None,
                partition_key: current.partition_key.clone(),
            },
            None,
            2.0 * in_rows * current.width / PAGE_BYTES,
        );
        current = Stream {
            node,
            rows: groups,
            width,
            partition_key: current.partition_key,
        };
    } else if q.distinct {
        let groups = (current.rows * 0.5).max(1.0);
        let in_rows = current.rows;
        let node = b.push(
            PlanNode {
                kind: OpKind::HashGroupBy,
                children: vec![current.node],
                est_rows: groups,
                row_width: current.width,
                table: None,
                partition_key: current.partition_key.clone(),
            },
            None,
            2.0 * in_rows * current.width / PAGE_BYTES,
        );
        current = Stream {
            node,
            rows: groups,
            width: current.width,
            partition_key: current.partition_key,
        };
    }

    // Sort for ORDER BY.
    if q.order_by_cols > 0 {
        let n = current.rows;
        let node = b.push(
            PlanNode {
                kind: OpKind::Sort,
                children: vec![current.node],
                est_rows: n,
                row_width: current.width,
                table: None,
                partition_key: current.partition_key.clone(),
            },
            None,
            (n * current.width / PAGE_BYTES).max(1.0) * n.max(2.0).log2(),
        );
        current = Stream {
            node,
            rows: n,
            width: current.width,
            partition_key: current.partition_key,
        };
    }

    // LIMIT.
    if let Some(limit) = q.limit {
        let out = (limit as f64).min(current.rows);
        let node = b.push(
            PlanNode {
                kind: OpKind::Top,
                children: vec![current.node],
                est_rows: out,
                row_width: current.width,
                table: None,
                partition_key: current.partition_key.clone(),
            },
            None,
            0.0,
        );
        current = Stream {
            node,
            rows: out,
            width: current.width,
            partition_key: current.partition_key,
        };
    }

    // Gather to the coordinator and compose the final result.
    current = b.exchange(current, None);
    let root_rows = current.rows;
    b.push(
        PlanNode {
            kind: OpKind::Root,
            children: vec![current.node],
            est_rows: root_rows,
            row_width: current.width,
            table: None,
            partition_key: None,
        },
        None,
        0.0,
    );

    // Per-operator cost constants are calibrated against a reference
    // machine, not the deployed one: plans with different operator
    // mixes sit on systematically different cost-to-time lines. Model
    // that miscalibration as a deterministic per-plan-shape warp — the
    // same plan always costs the same, but the scalar's *units* drift
    // by operator mix, which is precisely why Fig. 17's best-fit line
    // leaves 10-100x residuals while plan ranking still works.
    let shape: String = OpKind::ALL
        .iter()
        .map(|k| {
            format!(
                "{}:{};",
                k.name(),
                b.nodes.iter().filter(|n| n.kind == *k).count()
            )
        })
        .collect();
    let warp = 10f64.powf(0.4 * qpp_workload::world::hashed_normal(&[&shape, "cost_units"], 0));
    let plan = Plan {
        nodes: b.nodes,
        optimizer_cost: (b.cost * warp).max(1.0),
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    OptimizedQuery {
        plan,
        annotations: b.annotations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_workload::WorkloadGenerator;

    fn setup() -> (Catalog, SystemConfig) {
        (
            Catalog::new(qpp_workload::Schema::tpcds(1.0)),
            SystemConfig::neoview_4(),
        )
    }

    #[test]
    fn plans_are_well_formed_for_generated_workload() {
        let (cat, cfg) = setup();
        let mut g = WorkloadGenerator::tpcds(1.0, 42);
        for q in g.generate(200) {
            let opt = optimize(&q, &cat, &cfg);
            assert_eq!(opt.plan.validate(), Ok(()), "query {}", q.id);
            assert_eq!(opt.plan.nodes.len(), opt.annotations.len());
            assert!(opt.plan.optimizer_cost > 0.0);
            // One scan per table (+ subquery inner scans).
            assert_eq!(
                opt.plan.count(OpKind::FileScan),
                q.tables.len() + q.subqueries.len()
            );
            // Root is last and unique.
            assert_eq!(opt.plan.count(OpKind::Root), 1);
            assert_eq!(opt.plan.nodes[opt.plan.root()].kind, OpKind::Root);
        }
    }

    #[test]
    fn small_inner_tables_get_nested_loop_joins() {
        let (cat, cfg) = setup();
        let mut g = WorkloadGenerator::tpcds(1.0, 7);
        // Find a query joining the 12-row `store` dimension.
        let q = loop {
            let q = g.generate_one();
            if q.tables.iter().any(|t| t == "store") {
                break q;
            }
        };
        let opt = optimize(&q, &cat, &cfg);
        assert!(opt.plan.count(OpKind::NestedLoopJoin) >= 1);
    }

    #[test]
    fn large_joins_use_hash_join_with_exchange() {
        let (cat, cfg) = setup();
        let mut g = WorkloadGenerator::tpcds(1.0, 11);
        // An unfiltered join against the 100k-row customer table must use
        // a partitioned hash join (with repartitioning exchanges).
        let q = loop {
            let mut q = g.generate_one();
            if let Some(idx) = q.tables.iter().position(|t| t == "customer") {
                q.predicates.retain(|p| p.table != idx);
                if q.validate().is_ok() {
                    break q;
                }
            }
        };
        let opt = optimize(&q, &cat, &cfg);
        assert!(opt.plan.count(OpKind::HashJoin) >= 1);
        assert!(opt.plan.count(OpKind::Exchange) >= 1);
    }

    #[test]
    fn plans_differ_across_configurations() {
        // The paper's §VII-B observation: 4-node plans differ from
        // 32-node plans for the same query.
        let cat = Catalog::new(qpp_workload::Schema::tpcds(1.0));
        let mut g = WorkloadGenerator::tpcds(1.0, 19);
        let qs = g.generate(40);
        let mut differs = 0;
        for q in &qs {
            let p4 = optimize(q, &cat, &SystemConfig::neoview_4()).plan;
            let p32 = optimize(q, &cat, &SystemConfig::neoview_32(4)).plan;
            if p4.nodes.len() != p32.nodes.len() {
                differs += 1;
            }
        }
        assert!(differs > 20, "only {differs}/40 plans differ");
    }

    #[test]
    fn replanning_is_deterministic() {
        let (cat, cfg) = setup();
        let mut g = WorkloadGenerator::tpcds(1.0, 3);
        let q = g.generate_one();
        let a = optimize(&q, &cat, &cfg).plan;
        let b = optimize(&q, &cat, &cfg).plan;
        assert_eq!(a, b);
    }

    #[test]
    fn estimates_track_but_do_not_equal_truth() {
        // Histogram-informed estimates follow the data without being
        // exact: across a workload, scan estimates should mostly land
        // within a factor of ~3 of the truth, rarely exactly on it.
        let (cat, cfg) = setup();
        let schema = qpp_workload::Schema::tpcds(1.0);
        let mut g = WorkloadGenerator::tpcds(1.0, 3);
        let mut within = 0;
        let mut exact = 0;
        let mut total = 0;
        for q in g.generate(50) {
            let opt = optimize(&q, &cat, &cfg);
            let out = crate::executor::execute(&q, &opt, &schema, &cfg);
            for (i, node) in opt.plan.nodes.iter().enumerate() {
                if node.kind != OpKind::FileScan {
                    continue;
                }
                let t = out.true_rows[i].max(1.0);
                let e = node.est_rows.max(1.0);
                let ratio = (t / e).max(e / t);
                total += 1;
                if ratio < 3.0 {
                    within += 1;
                }
                if ratio < 1.0 + 1e-9 {
                    exact += 1;
                }
            }
        }
        assert!(within * 10 >= total * 8, "only {within}/{total} within 3x");
        assert!(exact < total, "estimates suspiciously exact");
    }

    #[test]
    fn optimizer_cost_monotone_in_workload_size() {
        // A full-scan query must out-cost a highly selective one from the
        // same shape.
        let (cat, cfg) = setup();
        let mut g = WorkloadGenerator::tpcds(1.0, 23);
        let mut q = g.generate_one();
        let cheap = optimize(&q, &cat, &cfg).plan.optimizer_cost;
        q.predicates.clear(); // no filters → full scans
        let expensive = optimize(&q, &cat, &cfg).plan.optimizer_cost;
        assert!(expensive >= cheap);
    }
}
