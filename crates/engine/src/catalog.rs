//! Catalog: the statistics the optimizer is allowed to see.
//!
//! Wraps a workload [`Schema`] and answers the estimation questions a
//! cost-based optimizer asks. The estimation model mirrors a mature
//! commercial optimizer:
//!
//! * **single-column predicates** are estimated from histograms, so
//!   the estimate tracks the data's truth up to a modest, systematic
//!   (per-constant) error — equality/range predicates land within a
//!   few tens of percent, `LIKE` is much cruder;
//! * **joins** use the textbook `|L||R| / max(ndv)` formula corrected
//!   by sampled frequency statistics that capture *most* but not all
//!   of the key skew — the heavy-tailed residual is exactly the
//!   "erroneous cardinality estimates" the paper names as the hard
//!   part of performance prediction (§I, §III-A);
//! * **group counts** fall back to coarse rules.
//!
//! Estimation errors are deterministic per (column, operator,
//! constant): re-planning the same query always produces the same
//! estimates, and distinct queries over the same constants agree.

use qpp_workload::spec::{JoinSpec, PredOp, PredicateSpec};
use qpp_workload::world::hashed_normal;
use qpp_workload::Schema;

/// Histogram estimation error (log10 σ) for hash-friendly predicates.
const HIST_SIGMA: f64 = 0.05;
/// Estimation error for `LIKE` (no histogram support).
const LIKE_SIGMA: f64 = 0.6;
/// Residual join-skew estimation error (log10 σ).
const JOIN_SIGMA: f64 = 0.3;
/// Fraction of the join fan-out (in log space) the optimizer's sampled
/// statistics capture; the rest is the surprise at run time.
const JOIN_SKEW_CAPTURED: f64 = 0.5;

/// Statistics catalog over a schema.
#[derive(Debug, Clone)]
pub struct Catalog {
    schema: Schema,
}

impl Catalog {
    /// Builds a catalog over the given schema.
    pub fn new(schema: Schema) -> Self {
        Catalog { schema }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count of a table at the schema's scale factor; 0 if unknown.
    pub fn rows(&self, table: &str) -> f64 {
        self.schema.rows(table) as f64
    }

    /// Row width of a table in bytes; a default if unknown.
    pub fn row_width(&self, table: &str) -> f64 {
        self.schema
            .table(table)
            .map(|t| t.row_width() as f64)
            .unwrap_or(64.0)
    }

    /// NDV of a column, with the usual optimizer default when the
    /// column is not in the catalog.
    pub fn ndv(&self, table: &str, column: &str) -> f64 {
        self.schema
            .table(table)
            .and_then(|t| t.column(column))
            .map(|c| c.ndv.max(1) as f64)
            .unwrap_or(100.0)
    }

    /// Histogram-based selectivity estimate: tracks the data's truth
    /// (as a real optimizer's equi-depth histograms do for single
    /// columns) up to a systematic per-constant error. `LIKE` gets the
    /// crude magic-number treatment.
    pub fn estimate_selectivity(&self, table: &str, pred: &PredicateSpec) -> f64 {
        let (tag, sigma) = match pred.op {
            PredOp::Eq => ("eq", HIST_SIGMA),
            PredOp::Neq => ("neq", HIST_SIGMA * 0.5),
            PredOp::Range { .. } => ("range", HIST_SIGMA),
            PredOp::InList { .. } => ("in", HIST_SIGMA),
            PredOp::Like => ("like", LIKE_SIGMA),
        };
        // The error is pinned to the predicate's identity (column, op,
        // truth value stands in for the constant): re-estimating the
        // same predicate is repeatable.
        let z = hashed_normal(
            &[table, &pred.column, tag, "hist"],
            pred.true_selectivity.to_bits(),
        );
        (pred.true_selectivity * 10f64.powf(sigma * z)).clamp(1e-9, 1.0)
    }

    /// Estimated equi-/band-join output cardinality for the given edge.
    ///
    /// Starts from the textbook `|L||R| / max(ndv)` (or band-fraction)
    /// formula, then applies the skew correction the optimizer's
    /// sampled frequency statistics provide: a fixed fraction of the
    /// true fan-out in log space, blurred by a per-edge systematic
    /// error. The uncaptured remainder is the run-time cardinality
    /// surprise.
    pub fn estimate_join(
        &self,
        edge: &JoinSpec,
        left_table: &str,
        right_table: &str,
        left_rows: f64,
        right_rows: f64,
        band_width: f64,
    ) -> f64 {
        let base = match edge.kind {
            qpp_workload::spec::JoinKind::Equi => {
                let d = self
                    .ndv(left_table, &edge.left_column)
                    .max(self.ndv(right_table, &edge.right_column));
                left_rows * right_rows / d
            }
            qpp_workload::spec::JoinKind::NonEqui => {
                let frac = (band_width / self.ndv(right_table, &edge.right_column)).min(1.0);
                left_rows * right_rows * frac
            }
        };
        let captured = edge.true_fanout_factor.powf(JOIN_SKEW_CAPTURED);
        let z = hashed_normal(
            &[&edge.left_column, &edge.right_column, "jhist"],
            edge.true_fanout_factor.to_bits(),
        );
        (base * captured * 10f64.powf(JOIN_SIGMA * z)).max(0.0)
    }

    /// Estimated distinct-group count for a GROUP BY of `cols` columns
    /// over `input_rows` rows (square-root style attenuation — the kind
    /// of coarse rule real optimizers fall back to without histograms).
    pub fn estimate_groups(&self, input_rows: f64, cols: u32) -> f64 {
        if cols == 0 || input_rows <= 1.0 {
            return 1.0;
        }
        // Each extra grouping column multiplies distinct groups, capped
        // by the input size.
        let per_col = 40.0f64;
        (per_col.powi(cols as i32)).min(input_rows * 0.8).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_workload::spec::{JoinKind, PredOp, PredicateSpec};

    fn pred(op: PredOp, truth: f64) -> PredicateSpec {
        PredicateSpec {
            table: 0,
            column: "d_year".into(),
            op,
            true_selectivity: truth,
        }
    }

    #[test]
    fn histogram_estimates_track_truth_within_bounds() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        for (op, truth) in [
            (PredOp::Eq, 0.004),
            (PredOp::Range { fraction: 0.2 }, 0.17),
            (PredOp::InList { items: 4 }, 0.02),
        ] {
            let est = cat.estimate_selectivity("date_dim", &pred(op, truth));
            let ratio = (est / truth).max(truth / est);
            // HIST_SIGMA = 0.1 log10 → 4σ bound is a factor ~2.5.
            assert!(ratio < 2.5, "{op:?}: est {est} vs truth {truth}");
        }
    }

    #[test]
    fn like_estimates_are_cruder() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        // LIKE errors wander farther: verify at least one constant out
        // of many misses by more than the histogram bound.
        let worst = (0..40)
            .map(|i| {
                let truth = 0.01 + i as f64 * 0.001;
                let est = cat.estimate_selectivity("date_dim", &pred(PredOp::Like, truth));
                (est / truth).max(truth / est)
            })
            .fold(0.0f64, f64::max);
        assert!(worst > 2.0, "worst LIKE ratio only {worst}");
    }

    #[test]
    fn estimates_are_repeatable() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        let p = pred(PredOp::Eq, 0.013);
        assert_eq!(
            cat.estimate_selectivity("date_dim", &p),
            cat.estimate_selectivity("date_dim", &p)
        );
    }

    fn edge(kind: JoinKind, fanout: f64) -> JoinSpec {
        JoinSpec {
            left: 0,
            right: 1,
            left_column: "ss_item_sk".into(),
            right_column: "i_item_sk".into(),
            kind,
            true_fanout_factor: fanout,
        }
    }

    #[test]
    fn equijoin_baseline_uses_max_ndv() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        // fanout 1.0 → skew correction is exactly 1; only the blur
        // remains (bounded by a few x).
        let est = cat.estimate_join(
            &edge(JoinKind::Equi, 1.0),
            "store_sales",
            "item",
            1000.0,
            18000.0,
            61.0,
        );
        let textbook = 1000.0 * 18000.0 / 18000.0;
        let ratio = (est / textbook).max(textbook / est);
        assert!(ratio < 8.0, "est {est} vs textbook {textbook}");
    }

    #[test]
    fn join_estimates_capture_skew_partially() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        let small = cat.estimate_join(
            &edge(JoinKind::Equi, 1.0),
            "store_sales",
            "item",
            1e6,
            1e6,
            61.0,
        );
        let big = cat.estimate_join(
            &edge(JoinKind::Equi, 100.0),
            "store_sales",
            "item",
            1e6,
            1e6,
            61.0,
        );
        // 100x true fan-out → estimate grows, but by less than 100x.
        assert!(big > small * 3.0, "skew not captured: {small} vs {big}");
        assert!(big < small * 300.0);
    }

    #[test]
    fn band_join_uses_band_fraction() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        // i_item_sk ndv 18000, band 61 → fraction ~61/18000.
        let est = cat.estimate_join(
            &edge(JoinKind::NonEqui, 1.0),
            "store_sales",
            "item",
            1e4,
            1e4,
            61.0,
        );
        let textbook = 1e4 * 1e4 * (61.0 / 18000.0);
        let ratio = (est / textbook).max(textbook / est);
        assert!(ratio < 8.0, "est {est} vs textbook {textbook}");
    }

    #[test]
    fn unknown_column_gets_default_ndv() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        assert_eq!(cat.ndv("date_dim", "nonexistent"), 100.0);
    }

    #[test]
    fn group_estimate_caps_at_input() {
        let cat = Catalog::new(Schema::tpcds(1.0));
        assert_eq!(cat.estimate_groups(100.0, 0), 1.0);
        assert!(cat.estimate_groups(50.0, 5) <= 40.0);
        assert!(cat.estimate_groups(1e9, 3) <= 40.0f64.powi(3));
    }
}
