//! The six performance metrics the paper predicts.

use serde::{Deserialize, Serialize};

/// Measured performance of one query execution — exactly the paper's
/// performance feature vector (§VI-D): "elapsed time, disk I/Os, message
/// count, message bytes, records accessed (the input cardinality of the
/// file scan operator) and records used (the output cardinality of the
/// file scan operator)".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfMetrics {
    /// Wall-clock elapsed time, seconds.
    pub elapsed_seconds: f64,
    /// Number of disk I/O operations.
    pub disk_ios: f64,
    /// Number of interconnect messages.
    pub message_count: f64,
    /// Interconnect bytes moved.
    pub message_bytes: f64,
    /// Σ input cardinality over file-scan operators.
    pub records_accessed: f64,
    /// Σ output cardinality over file-scan operators.
    pub records_used: f64,
}

impl PerfMetrics {
    /// Number of metrics (the performance vector dimensionality).
    pub const DIM: usize = 6;

    /// Metric names in vector order.
    pub const NAMES: [&'static str; 6] = [
        "elapsed_time",
        "disk_io",
        "message_count",
        "message_bytes",
        "records_accessed",
        "records_used",
    ];

    /// Zeroed metrics.
    pub fn zero() -> Self {
        PerfMetrics {
            elapsed_seconds: 0.0,
            disk_ios: 0.0,
            message_count: 0.0,
            message_bytes: 0.0,
            records_accessed: 0.0,
            records_used: 0.0,
        }
    }

    /// As a vector in canonical order (matches [`PerfMetrics::NAMES`]).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.elapsed_seconds,
            self.disk_ios,
            self.message_count,
            self.message_bytes,
            self.records_accessed,
            self.records_used,
        ]
    }

    /// Rebuilds from a canonical-order vector.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(v.len(), Self::DIM, "performance vector must have 6 entries");
        PerfMetrics {
            elapsed_seconds: v[0],
            disk_ios: v[1],
            message_count: v[2],
            message_bytes: v[3],
            records_accessed: v[4],
            records_used: v[5],
        }
    }

    /// All entries finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.to_vec().iter().all(|x| x.is_finite() && *x >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_round_trip() {
        let m = PerfMetrics {
            elapsed_seconds: 1.5,
            disk_ios: 10.0,
            message_count: 100.0,
            message_bytes: 1e6,
            records_accessed: 5e6,
            records_used: 2e4,
        };
        assert_eq!(PerfMetrics::from_vec(&m.to_vec()), m);
    }

    #[test]
    fn zero_is_valid() {
        assert!(PerfMetrics::zero().is_valid());
    }

    #[test]
    fn nan_is_invalid() {
        let mut m = PerfMetrics::zero();
        m.elapsed_seconds = f64::NAN;
        assert!(!m.is_valid());
        let mut m2 = PerfMetrics::zero();
        m2.disk_ios = -1.0;
        assert!(!m2.is_valid());
    }

    #[test]
    #[should_panic(expected = "6 entries")]
    fn from_vec_checks_len() {
        PerfMetrics::from_vec(&[1.0, 2.0]);
    }
}
