//! System configurations: the simulated hardware.

use serde::{Deserialize, Serialize};

/// A shared-nothing parallel database configuration.
///
/// Mirrors the knobs the paper varied: number of processors used for
/// query processing, memory per processor, and — on the 32-node system —
/// a data layout that stays partitioned across *all* disks even when
/// only a subset of CPUs executes operators (§VII-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Human-readable configuration name.
    pub name: String,
    /// Processors used for query execution.
    pub cpus: u32,
    /// Disks holding the (fixed) data partitioning. On the 32-node
    /// system this stays 32 regardless of `cpus`.
    pub data_partitions: u32,
    /// Memory per processor, bytes.
    pub mem_per_cpu: u64,
    /// Tuple-processing rate per CPU (tuples/second) for a unit-cost
    /// operator; per-operator multipliers apply on top.
    pub cpu_tuple_rate: f64,
    /// Sequential disk bandwidth per disk, bytes/second.
    pub disk_bandwidth: f64,
    /// Interconnect bandwidth per node, bytes/second.
    pub net_bandwidth: f64,
    /// Disk I/O transfer unit, bytes (one "disk I/O" in the counters).
    pub io_unit: u64,
    /// Message transfer unit for the interconnect counters, bytes.
    pub message_unit: u64,
    /// Fixed per-query startup/compile overhead, seconds.
    pub startup_seconds: f64,
    /// Standard deviation of multiplicative log-normal run-to-run noise
    /// on elapsed time (σ of ln-space). ~0.08 matches a quiet system.
    pub elapsed_noise_sigma: f64,
    /// Systematic performance drift multiplier (the paper's test system
    /// got an OS upgrade mid-study that shifted bowling-ball timings;
    /// experiments use this to recreate those outliers). 1.0 = none.
    pub drift: f64,
}

impl SystemConfig {
    /// The 4-processor research system used for most of the paper's
    /// training and testing. Generous memory per CPU: at TPC-DS scale
    /// factor 1 all tables fit in memory, so most queries do zero disk
    /// I/O (as the paper observed around Table II).
    pub fn neoview_4() -> Self {
        SystemConfig {
            name: "neoview-4".to_string(),
            cpus: 4,
            data_partitions: 4,
            mem_per_cpu: 2 * 1024 * 1024 * 1024,
            cpu_tuple_rate: 2.2e5,
            disk_bandwidth: 80.0e6,
            net_bandwidth: 120.0e6,
            io_unit: 32 * 1024,
            message_unit: 32 * 1024,
            startup_seconds: 0.35,
            elapsed_noise_sigma: 0.04,
            drift: 1.0,
        }
    }

    /// A configuration of the 32-node production system using `cpus`
    /// processors (4, 8, 16 or 32 in the paper). Data stays partitioned
    /// across all 32 disks; memory available to a query scales with the
    /// CPUs used, which is why the 4-CPU configuration was the only one
    /// that incurred disk I/Os (paper §VII-B).
    pub fn neoview_32(cpus: u32) -> Self {
        SystemConfig {
            name: format!("neoview-32/{cpus}cpu"),
            cpus,
            data_partitions: 32,
            mem_per_cpu: 96 * 1024 * 1024,
            cpu_tuple_rate: 3.2e5,
            disk_bandwidth: 80.0e6,
            net_bandwidth: 200.0e6,
            io_unit: 32 * 1024,
            message_unit: 32 * 1024,
            startup_seconds: 0.3,
            elapsed_noise_sigma: 0.04,
            drift: 1.0,
        }
    }

    /// Total memory available to one query, bytes.
    pub fn total_memory(&self) -> u64 {
        self.mem_per_cpu * self.cpus as u64
    }

    /// Returns a copy with the given systematic drift multiplier.
    pub fn with_drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Returns a copy with a different noise level.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.elapsed_noise_sigma = sigma;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let c4 = SystemConfig::neoview_4();
        assert_eq!(c4.cpus, 4);
        assert_eq!(c4.data_partitions, 4);
        assert!(c4.total_memory() >= 8 * 1024 * 1024 * 1024);

        let c32 = SystemConfig::neoview_32(16);
        assert_eq!(c32.cpus, 16);
        assert_eq!(c32.data_partitions, 32);
        assert!(c32.name.contains("16cpu"));
    }

    #[test]
    fn memory_scales_with_cpus_on_32_node() {
        let m4 = SystemConfig::neoview_32(4).total_memory();
        let m32 = SystemConfig::neoview_32(32).total_memory();
        assert_eq!(m32, 8 * m4);
    }

    #[test]
    fn builders_apply() {
        let c = SystemConfig::neoview_4().with_drift(1.5).with_noise(0.2);
        assert_eq!(c.drift, 1.5);
        assert_eq!(c.elapsed_noise_sigma, 0.2);
    }
}
