//! Simulated shared-nothing parallel database engine.
//!
//! Stand-in for the paper's HP Neoview systems (a 4-processor research
//! machine and a 32-processor production machine). The KCCA methodology
//! never looks inside the engine — it consumes `(query plan, measured
//! metrics)` pairs — so what this simulator must get right is the
//! *statistical texture* of that pairing:
//!
//! * a **heuristic cost-based optimizer** that produces operator trees
//!   with *estimated* cardinalities (from catalog statistics under
//!   uniformity/independence assumptions) and an abstract scalar cost in
//!   non-time units — both available before execution;
//! * an **execution model** that computes *actual* cardinalities from
//!   the workload's ground-truth selectivities/fan-outs and turns them
//!   into the paper's six metrics — elapsed time, disk I/Os, message
//!   count, message bytes, records accessed, records used — on a
//!   configurable processor/memory/disk/network layout;
//! * the behaviours the paper calls out: cardinality-estimation error,
//!   memory cliffs (dimension tables cached, hash joins spilling),
//!   repartitioning message traffic, plans that change with the system
//!   configuration, and run-to-run noise.

// Library code must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod config;
pub mod executor;
pub mod metrics;
pub mod optimizer;
pub mod plan;

pub use catalog::Catalog;
pub use config::SystemConfig;
pub use executor::{execute, ExecutionOutcome};
pub use metrics::PerfMetrics;
pub use optimizer::{optimize, OptimizedQuery};
pub use plan::{OpKind, Plan, PlanNode};
