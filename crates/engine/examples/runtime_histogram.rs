//! Dev utility: histogram of simulated elapsed times over the TPC-DS
//! workload, to verify the feather/golf-ball/bowling-ball mix.

use qpp_engine::{execute, optimize, Catalog, SystemConfig};
use qpp_workload::{Schema, WorkloadGenerator};

fn main() {
    let schema = Schema::tpcds(1.0);
    let cat = Catalog::new(schema.clone());
    let cfg = SystemConfig::neoview_4();
    let mut g = WorkloadGenerator::tpcds(1.0, 20090401);
    let n = 3000;
    let mut times: Vec<(f64, String)> = Vec::with_capacity(n);
    for q in g.generate(n) {
        let opt = optimize(&q, &cat, &cfg);
        let out = execute(&q, &opt, &schema, &cfg);
        times.push((out.metrics.elapsed_seconds, q.template.clone()));
    }
    let buckets = [
        ("<1s", 0.0, 1.0),
        ("1-10s", 1.0, 10.0),
        ("10s-3min (feather)", 10.0, 180.0),
        ("3-30min (golf)", 180.0, 1800.0),
        ("30min-2h (bowling)", 1800.0, 7200.0),
        (">2h (wrecking)", 7200.0, f64::INFINITY),
    ];
    for (name, lo, hi) in buckets {
        let c = times.iter().filter(|(t, _)| *t >= lo && *t < hi).count();
        println!("{name:>22}: {c:5}  ({:.1}%)", 100.0 * c as f64 / n as f64);
    }
    times.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    println!(
        "\nmin {:.3}s  median {:.1}s  p90 {:.1}s  p99 {:.1}s  max {:.1}s",
        times[0].0,
        times[n / 2].0,
        times[n * 9 / 10].0,
        times[n * 99 / 100].0,
        times[n - 1].0
    );
    println!("\nslowest 10:");
    for (t, tpl) in times.iter().rev().take(10) {
        println!("  {:>10.1}s  {tpl}", t);
    }
    // Per-class medians.
    for class in [
        "tpcds_report",
        "tpcds_adhoc",
        "tpcds_sales",
        "tpcds_cross",
        "problem",
    ] {
        let mut v: Vec<f64> = times
            .iter()
            .filter(|(_, t)| t.starts_with(class))
            .map(|(t, _)| *t)
            .collect();
        if v.is_empty() {
            continue;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{class:>14}: n={:4} median {:.1}s p90 {:.1}s max {:.1}s",
            v.len(),
            v[v.len() / 2],
            v[v.len() * 9 / 10],
            v[v.len() - 1]
        );
    }
}
