//! Metric primitives: lock-free counters and the log-spaced latency
//! histogram (with quantile estimation) shared by every layer.
//!
//! These used to live as ad-hoc `AtomicU64` fields and a private
//! histogram inside `qpp-serve`'s stats; they are hoisted here so the
//! serving stats, the global recorder, and any future subsystem count
//! things the same way — and so the quantile edge conventions are
//! fixed in exactly one place.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotonic (or watermark) counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    // qpp-lint: hot-path
    pub fn incr(&self) {
        // ordering: pure statistic; nothing is published through it.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    // qpp-lint: hot-path
    pub fn add(&self, n: u64) {
        // ordering: pure statistic; nothing is published through it.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (high-watermark semantics).
    // qpp-lint: hot-path
    pub fn observe_max(&self, v: u64) {
        // ordering: monotone max; readers tolerate any interleaving.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrites the value (gauge semantics).
    pub fn set(&self, v: u64) {
        // ordering: last-writer-wins gauge; no payload to publish.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: any recent value is acceptable for a statistic.
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A lock-free `f64` gauge: a single atomic word holding the bit
/// pattern of the last value set. Used for "current level" style
/// metrics — recent mean error, drift score — where only the latest
/// value matters and readers must never block a writer.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading 0.0.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the gauge.
    // qpp-lint: hot-path
    pub fn set(&self, value: f64) {
        // ordering: single-word bit pattern; last-writer-wins gauge.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The last value set (0.0 if never set).
    pub fn get(&self) -> f64 {
        // ordering: any recent value is acceptable for a gauge read.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Histogram bucket count. Bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
pub const BUCKETS: usize = 26; // 1 µs .. ~33 s

/// A lock-free log2-spaced histogram over microsecond-scale values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records one sample (microseconds; 0 is clamped into bucket 0).
    // qpp-lint: hot-path
    pub fn record(&self, value_us: u64) {
        let v = value_us.max(1);
        let bucket = (63 - v.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed); // ordering: statistical counter
    }

    /// Per-bucket counts (a racy-but-monotone snapshot).
    pub fn counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed); // ordering: racy-but-monotone snapshot by contract
        }
        out
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        let counts = self.counts();
        counts.iter().sum::<u64>()
    }

    /// Estimated quantile `q` of the recorded samples.
    pub fn quantile(&self, q: f64) -> LatencyQuantile {
        quantile_of(&self.counts(), q)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A latency quantile estimated from the log-spaced histogram.
///
/// When `saturated` is false the true quantile is `<= bound_us`, with
/// `bound_us` the *inclusive* upper edge (`2^(i+1) - 1`) of the bucket
/// the quantile fell in. When it is true the sample landed in the
/// open-ended last bucket and only a lower bound is known: the quantile
/// is `>= bound_us`, possibly far beyond it. Reporting code must not
/// present a saturated bound as a finite upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyQuantile {
    /// Bucket bound, microseconds. Inclusive upper bound unless
    /// `saturated`, then a lower bound.
    pub bound_us: u64,
    /// True when the quantile fell in the open-ended last bucket.
    pub saturated: bool,
}

impl LatencyQuantile {
    fn finite(bound_us: u64) -> LatencyQuantile {
        LatencyQuantile {
            bound_us,
            saturated: false,
        }
    }

    fn saturated() -> LatencyQuantile {
        LatencyQuantile {
            bound_us: 1u64 << (BUCKETS - 1),
            saturated: true,
        }
    }
}

impl std::fmt::Display for LatencyQuantile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}",
            if self.saturated { ">=" } else { "<=" },
            self.bound_us
        )
    }
}

/// Bound (µs) of the histogram bucket containing quantile `q` of
/// `counts` (log2-spaced, [`BUCKETS`] buckets, last one open-ended).
///
/// Conventions, fixed here once:
///
/// * The rank is floored at 1 sample: `q = 0.0` means "the smallest
///   recorded sample's bucket", never an empty bucket 0. (The old serve
///   implementation computed rank 0, which every bucket — including an
///   empty one — trivially satisfied, so `quantile(h, 0.0)` reported a
///   finite `<= 2` µs even when no sample was below a second.)
/// * Finite bounds are *inclusive* upper edges, `2^(i+1) - 1`, matching
///   the `<=` the Display impl prints. (The old code returned the
///   exclusive edge `2^(i+1)` while printing `<=`.)
/// * A quantile landing in the open-ended last bucket is returned as
///   saturated at the bucket's lower edge; only a lower bound is known.
/// * An empty histogram reports a finite 0 (nothing recorded).
///
/// Monotone in `q` by construction: a larger `q` can only move the
/// rank, hence the bucket index, hence the bound, upward (saturated
/// compares above every finite bound).
pub fn quantile_of(counts: &[u64], q: f64) -> LatencyQuantile {
    let total = counts.iter().sum::<u64>();
    if total == 0 {
        return LatencyQuantile::finite(0);
    }
    let rank = (((total as f64) * q).ceil() as u64).clamp(1, total);
    let mut seen = 0;
    for (i, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return if i == BUCKETS - 1 {
                LatencyQuantile::saturated()
            } else {
                LatencyQuantile::finite((1u64 << (i + 1)) - 1)
            };
        }
    }
    LatencyQuantile::saturated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.observe_max(3);
        assert_eq!(c.get(), 5);
        c.observe_max(9);
        assert_eq!(c.get(), 9);
        c.set(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_round_trips_f64_values() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-0.5);
        assert_eq!(g.get(), -0.5);
        g.set(f64::NEG_INFINITY);
        assert_eq!(g.get(), f64::NEG_INFINITY);
        let nan_probe = Gauge::new();
        nan_probe.set(f64::NAN);
        assert!(nan_probe.get().is_nan());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0); // clamped into bucket 0
        h.record(1);
        h.record(1023);
        h.record(1024);
        let counts = h.counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[9], 1); // [512, 1024)
        assert_eq!(counts[10], 1); // [1024, 2048)
        assert_eq!(h.total(), 4);
    }

    /// Regression for the q=0 bug: with bucket 0 empty, `quantile(0.0)`
    /// used to compute rank 0 and report bucket 0's finite bound even
    /// though nothing was recorded there.
    #[test]
    fn quantile_zero_skips_empty_leading_buckets() {
        let mut counts = [0u64; BUCKETS];
        counts[5] = 7; // all samples in [32, 64)
        let q0 = quantile_of(&counts, 0.0);
        assert!(!q0.saturated);
        assert_eq!(q0.bound_us, (1 << 6) - 1, "bucket 5 inclusive edge");
        // And the whole q range agrees when there is only one bucket.
        assert_eq!(quantile_of(&counts, 1.0), q0);
    }

    /// Finite bounds are inclusive: a bucket holding values up to
    /// `2^(i+1) - 1` must not claim `<= 2^(i+1)`.
    #[test]
    fn finite_bound_is_inclusive_upper_edge() {
        let h = Histogram::new();
        h.record(1023); // bucket 9 = [512, 1024)
        let q = h.quantile(0.5);
        assert_eq!(q.bound_us, 1023);
        assert!(!q.saturated);
        assert_eq!(format!("{q}"), "<=1023");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), LatencyQuantile::finite(0));
        }
    }

    #[test]
    fn last_bucket_is_saturated_lower_bound() {
        let mut counts = [0u64; BUCKETS];
        counts[BUCKETS - 1] = 1;
        let q = quantile_of(&counts, 0.99);
        assert!(q.saturated);
        assert_eq!(q.bound_us, 1u64 << (BUCKETS - 1));
        assert_eq!(format!("{q}"), ">=33554432");
    }

    /// Ordering key that places saturated bounds above every finite
    /// bound (saturated 2^25 means ">= 33.5 s", beyond any finite
    /// `<= 2^25 - 1`).
    fn order_key(q: LatencyQuantile) -> (bool, u64) {
        (q.saturated, q.bound_us)
    }

    /// Property: quantile is monotone in `q` over random histograms.
    /// Hand-rolled xorshift generator keeps qpp-obs dependency-free.
    #[test]
    fn quantile_is_monotone_in_q_over_random_histograms() {
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for _case in 0..500 {
            let mut counts = [0u64; BUCKETS];
            let populated = (next() % BUCKETS as u64) as usize;
            for _ in 0..populated {
                let bucket = (next() % BUCKETS as u64) as usize;
                counts[bucket] = next() % 1000;
            }
            let mut prev: Option<LatencyQuantile> = None;
            for &q in &qs {
                let cur = quantile_of(&counts, q);
                if let Some(p) = prev {
                    assert!(
                        order_key(p) <= order_key(cur),
                        "quantile not monotone: q grid {qs:?}, counts {counts:?}, {p:?} then {cur:?}"
                    );
                }
                prev = Some(cur);
            }
        }
    }
}
