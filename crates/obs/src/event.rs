//! Event model: what one recorded observation looks like.
//!
//! Events are fixed-size `Copy` values — no strings, no boxes — so the
//! hot path can hand them to the ring buffer without touching the heap.
//! Human-readable names only materialize at export time.

/// Which instrumented stage an event belongs to.
///
/// The serving path (admission → queue → worker → predict → fallback)
/// and the offline pipeline (standardize → kernel → ICD → eigensolve →
/// kNN build) share one namespace so a single exported trace can mix
/// both layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Request admission: registry lookup + queue push at submit time.
    Admission,
    /// Time a request sat in the bounded queue before a worker drained it.
    QueueWait,
    /// Worker handling of one request, dequeue to response send.
    Worker,
    /// The (possibly batched) KCCA prediction answering one request.
    Predict,
    /// Client-side optimizer-cost fallback after a deadline miss.
    Fallback,
    /// A model install/hot-swap landed in the registry.
    ModelSwap,
    /// Whole-batch KCCA projection + kNN pass (`predict_features_batch`).
    PredictBatch,
    /// Single-query standardization (`transform_row_into`).
    PredictStandardize,
    /// Single-query kernel row + ICD embedding + CCA projection.
    PredictProject,
    /// kNN search + neighbor-metric combine.
    PredictKnn,
    /// Whole `KccaPredictor::train` call.
    TrainTotal,
    /// Feature standardization fit + transform.
    TrainStandardize,
    /// Gaussian kernel scale fitting (both sides). Kernel *entries* are
    /// evaluated lazily inside the ICD stage.
    TrainKernel,
    /// Pivoted incomplete Cholesky on both kernel sides.
    TrainIcd,
    /// Regularized CCA on the ICD embeddings (the generalized
    /// eigensolve of the paper's Eq. 2).
    TrainEigensolve,
    /// Eigensolve sub-stage: Cholesky reduction to the correlation
    /// matrix `M = Lx⁻¹ Cxy Ly⁻ᵀ`.
    TrainEigenReduce,
    /// Eigensolve sub-stage: blocked subspace iteration extracting the
    /// top singular triplets of `M` (`value` = power iterations).
    TrainEigenSubspace,
    /// Eigensolve sub-stage: back-transforming singular vectors into
    /// canonical weights (`wx = Lx⁻ᵀ u`, `wy = Ly⁻ᵀ v`).
    TrainEigenBacktransform,
    /// Building the nearest-neighbor index over the query projection.
    TrainKnnBuild,
    /// The drift detector flagged a shifted error distribution
    /// (mark; `value` = canonical index of the drifted metric).
    Drift,
    /// Background candidate retraining triggered by a drift signal
    /// (span; `value` = training-window rows).
    Retrain,
    /// Replaying the held-out slice through candidate and incumbent
    /// (span; `value` = holdout records scored).
    ShadowScore,
    /// A shadow-validated candidate was hot-swapped into the registry
    /// (mark; `value` = the new registry generation).
    CanarySwap,
    /// Post-swap error regressed and the model was demoted to the
    /// optimizer-cost baseline (mark; `value` = demoted generation).
    KillSwitch,
    /// The admission gateway shed a request (mark; `value` packs the
    /// tenant/shard tags — see [`crate::pack_tags`] — around a reason
    /// code: 0 = every candidate queue shard was full, 1 = the tenant's
    /// own quota was exhausted).
    AdmissionReject,
    /// One deficit-round-robin drain cycle on a queue shard (mark;
    /// `value` packs the shard tag around the drained batch size).
    FairShare,
}

impl Stage {
    /// Number of stages (sizes the per-stage accumulator arrays).
    pub const COUNT: usize = 26;

    /// Every stage, in declaration order (stable for reports).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Admission,
        Stage::QueueWait,
        Stage::Worker,
        Stage::Predict,
        Stage::Fallback,
        Stage::ModelSwap,
        Stage::PredictBatch,
        Stage::PredictStandardize,
        Stage::PredictProject,
        Stage::PredictKnn,
        Stage::TrainTotal,
        Stage::TrainStandardize,
        Stage::TrainKernel,
        Stage::TrainIcd,
        Stage::TrainEigensolve,
        Stage::TrainEigenReduce,
        Stage::TrainEigenSubspace,
        Stage::TrainEigenBacktransform,
        Stage::TrainKnnBuild,
        Stage::Drift,
        Stage::Retrain,
        Stage::ShadowScore,
        Stage::CanarySwap,
        Stage::KillSwitch,
        Stage::AdmissionReject,
        Stage::FairShare,
    ];

    /// Dense index into per-stage accumulators.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes an index back into a stage (export-time use; torn ring
    /// slots can carry garbage, hence `Option`).
    pub fn from_index(i: u64) -> Option<Stage> {
        Stage::ALL.get(i as usize).copied()
    }

    /// Stable snake_case name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Worker => "worker",
            Stage::Predict => "predict",
            Stage::Fallback => "fallback",
            Stage::ModelSwap => "model_swap",
            Stage::PredictBatch => "predict_batch",
            Stage::PredictStandardize => "predict_standardize",
            Stage::PredictProject => "predict_project",
            Stage::PredictKnn => "predict_knn",
            Stage::TrainTotal => "train_total",
            Stage::TrainStandardize => "train_standardize",
            Stage::TrainKernel => "train_kernel",
            Stage::TrainIcd => "train_icd",
            Stage::TrainEigensolve => "train_eigensolve",
            Stage::TrainEigenReduce => "train_eigen_reduce",
            Stage::TrainEigenSubspace => "train_eigen_subspace",
            Stage::TrainEigenBacktransform => "train_eigen_backtransform",
            Stage::TrainKnnBuild => "train_knn_build",
            Stage::Drift => "drift",
            Stage::Retrain => "retrain",
            Stage::ShadowScore => "shadow_score",
            Stage::CanarySwap => "canary_swap",
            Stage::KillSwitch => "kill_switch",
            Stage::AdmissionReject => "admission_reject",
            Stage::FairShare => "fair_share",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Event flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A completed span: `start_ns .. start_ns + dur_ns`.
    Span,
    /// An instantaneous marker (`dur_ns == 0`).
    Mark,
}

impl EventKind {
    fn from_index(i: u64) -> Option<EventKind> {
        match i {
            0 => Some(EventKind::Span),
            1 => Some(EventKind::Mark),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Mark => "mark",
        }
    }
}

/// One recorded observation. Fixed-size and `Copy`: recording one never
/// allocates, and the ring stores it as plain atomic words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Trace this event belongs to; 0 means "untraced" (background
    /// work: training, offline experiment loops).
    pub trace_id: u64,
    /// Span or mark.
    pub kind: EventKind,
    /// Which instrumented stage.
    pub stage: Stage,
    /// Monotonic nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for marks).
    pub dur_ns: u64,
    /// Free-form payload: queue depth, batch size, model version, …
    pub value: u64,
}

impl Event {
    /// Packs `kind` and `stage` into one word for ring storage.
    pub(crate) fn tag(&self) -> u64 {
        ((self.kind as u64) << 8) | self.stage as u64
    }

    /// Inverse of [`Event::tag`]; `None` on torn/garbage words.
    pub(crate) fn untag(tag: u64) -> Option<(EventKind, Stage)> {
        let kind = EventKind::from_index(tag >> 8)?;
        let stage = Stage::from_index(tag & 0xff)?;
        Some((kind, stage))
    }

    /// One JSONL line (no trailing newline). Timestamps and durations
    /// are reported in microseconds for readability.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"trace\":{},\"kind\":\"{}\",\"stage\":\"{}\",\"start_us\":{:.3},\"dur_us\":{:.3},\"value\":{}}}",
            self.trace_id,
            self.kind.name(),
            self.stage.name(),
            self.start_ns as f64 / 1e3,
            self.dur_ns as f64 / 1e3,
            self.value,
        )
    }
}

/// Renders a slice of events as JSONL, one event per line.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_round_trip() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::from_index(i as u64), Some(*s));
        }
        assert_eq!(Stage::from_index(Stage::COUNT as u64), None);
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn tag_round_trips() {
        for s in Stage::ALL {
            for kind in [EventKind::Span, EventKind::Mark] {
                let e = Event {
                    trace_id: 7,
                    kind,
                    stage: s,
                    start_ns: 1,
                    dur_ns: 2,
                    value: 3,
                };
                assert_eq!(Event::untag(e.tag()), Some((kind, s)));
            }
        }
        assert_eq!(Event::untag(u64::MAX), None);
    }

    #[test]
    fn jsonl_shape() {
        let e = Event {
            trace_id: 42,
            kind: EventKind::Span,
            stage: Stage::QueueWait,
            start_ns: 1_500,
            dur_ns: 2_000,
            value: 9,
        };
        let line = e.to_jsonl();
        assert!(line.contains("\"trace\":42"));
        assert!(line.contains("\"stage\":\"queue_wait\""));
        assert!(line.contains("\"start_us\":1.500"));
        assert!(line.contains("\"dur_us\":2.000"));
        assert!(line.contains("\"value\":9"));
    }
}
