//! qpp-obs: structured tracing and metrics for the whole workspace.
//!
//! The crate sits below every other `qpp-*` crate (it depends on
//! nothing) and provides three things:
//!
//! * an **event log** — a lock-free fixed-capacity ring of fixed-size
//!   [`Event`]s with monotonic span timing ([`ring::EventRing`]);
//! * **metrics** — lock-free [`Counter`]s and the log2 latency
//!   [`Histogram`] with its quantile conventions ([`metrics`]);
//! * a **trace context** — a thread-local current trace ID so spans
//!   recorded anywhere down the call stack (admission → queue → worker
//!   → `predict_features`) tag themselves to the request that caused
//!   them, without threading an ID through every API.
//!
//! Two design rules shape everything here:
//!
//! 1. **Recording never allocates.** Events are `Copy`, the ring is
//!    pre-sized, counters are single atomic words. The serving predict
//!    path measures 0.0 allocations/request with observability enabled
//!    (`tests/alloc_regression.rs`), and recording must keep it there.
//! 2. **Wall-clock reads live here and in the serving edge, never in
//!    model code.** `qpp-core`/`qpp-ml`/`qpp-linalg` are bitwise
//!    deterministic; they call [`span`]/[`record_mark`], and the
//!    `Instant` reads happen inside this crate, keeping the
//!    `no-wallclock-in-model` lint clean with no new allow directives.
//!
//! Timestamps are monotonic nanoseconds since the recorder's epoch (its
//! construction instant) — durable across the process, meaningless
//! across processes, which is all tracing needs.

#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod ring;

pub use event::{to_jsonl, Event, EventKind, Stage};
pub use metrics::{quantile_of, Counter, Gauge, Histogram, LatencyQuantile, BUCKETS};
pub use ring::EventRing;

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Central recorder: the event ring plus per-stage accumulators and the
/// workspace-wide answer-source counters.
///
/// The ring holds a sliding window of recent events (for trace export);
/// the `stage_ns`/`stage_hits` accumulators are exact totals that never
/// wrap, so per-stage summaries (bench breakdowns) don't depend on ring
/// capacity.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    ring: EventRing,
    next_trace: AtomicU64,
    stage_ns: [AtomicU64; Stage::COUNT],
    stage_hits: [AtomicU64; Stage::COUNT],
    /// Requests answered by the optimizer-cost fallback (deadline
    /// missed). First-class because the paper's predictions only help
    /// when they actually arrive in time.
    pub fallback_answers: Counter,
    /// Requests answered by the KCCA model in time.
    pub kcca_answers: Counter,
}

impl Recorder {
    /// A recorder whose ring holds `capacity` events.
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            epoch: Instant::now(),
            ring: EventRing::new(capacity),
            next_trace: AtomicU64::new(0),
            stage_ns: [const { AtomicU64::new(0) }; Stage::COUNT],
            stage_hits: [const { AtomicU64::new(0) }; Stage::COUNT],
            fallback_answers: Counter::new(),
            kcca_answers: Counter::new(),
        }
    }

    /// Monotonic nanoseconds since this recorder's epoch.
    // qpp-lint: hot-path
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Fresh trace ID; starts at 1 so 0 can mean "untraced".
    // qpp-lint: hot-path
    pub fn next_trace_id(&self) -> u64 {
        // ordering: IDs only need uniqueness, not ordering with events.
        self.next_trace.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records a completed span and folds it into the per-stage totals.
    // qpp-lint: hot-path
    pub fn record_span(&self, trace_id: u64, stage: Stage, start_ns: u64, dur_ns: u64, value: u64) {
        self.ring.push(&Event {
            trace_id,
            kind: EventKind::Span,
            stage,
            start_ns,
            dur_ns,
            value,
        });
        self.stage_ns[stage.index()].fetch_add(dur_ns, Ordering::Relaxed); // ordering: statistical counter
        self.stage_hits[stage.index()].fetch_add(1, Ordering::Relaxed); // ordering: statistical counter
    }

    /// Records an instantaneous marker (counted in `hits`, adds no
    /// duration).
    // qpp-lint: hot-path
    pub fn record_mark(&self, trace_id: u64, stage: Stage, value: u64) {
        self.ring.push(&Event {
            trace_id,
            kind: EventKind::Mark,
            stage,
            start_ns: self.now_ns(),
            dur_ns: 0,
            value,
        });
        self.stage_hits[stage.index()].fetch_add(1, Ordering::Relaxed); // ordering: statistical counter
    }

    /// Total events ever recorded (monotonic, exceeds ring capacity
    /// once wrapped).
    pub fn events_recorded(&self) -> u64 {
        self.ring.recorded()
    }

    /// Snapshot of the ring's current event window, publication order.
    pub fn export(&self) -> Vec<Event> {
        self.ring.snapshot()
    }

    /// The window's events belonging to one trace.
    pub fn export_trace(&self, trace_id: u64) -> Vec<Event> {
        let mut events = self.ring.snapshot();
        events.retain(|e| e.trace_id == trace_id);
        events
    }

    /// Exact per-stage totals (hits and summed span nanoseconds) for
    /// every stage that recorded at least one event.
    pub fn stage_summary(&self) -> Vec<StageSummary> {
        let mut out = Vec::with_capacity(Stage::COUNT);
        for stage in Stage::ALL {
            // ordering: totals are racy-but-monotone by contract.
            let hits = self.stage_hits[stage.index()].load(Ordering::Relaxed);
            if hits == 0 {
                continue;
            }
            out.push(StageSummary {
                stage,
                hits,
                total_ns: self.stage_ns[stage.index()].load(Ordering::Relaxed), // ordering: racy-but-monotone
            });
        }
        out
    }

    /// Answer-source counters as JSONL (one `{"counter":…,"value":…}`
    /// line each), appended to trace dumps.
    pub fn counters_jsonl(&self) -> String {
        format!(
            "{{\"counter\":\"kcca_answers\",\"value\":{}}}\n{{\"counter\":\"fallback_answers\",\"value\":{}}}\n",
            self.kcca_answers.get(),
            self.fallback_answers.get(),
        )
    }
}

/// Exact totals for one instrumented stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    /// Which stage.
    pub stage: Stage,
    /// Spans + marks recorded.
    pub hits: u64,
    /// Summed span duration, nanoseconds (marks contribute 0).
    pub total_ns: u64,
}

impl StageSummary {
    /// Mean span duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.hits as f64 / 1e3
        }
    }
}

/// Global recorder ring capacity: 32k events ≈ several thousand recent
/// requests' worth of spans, a few MiB of slots.
const GLOBAL_RING_CAPACITY: usize = 1 << 15;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder. First call allocates the ring; every
/// later call is a plain atomic load, so hot paths may call this
/// freely once anything (model training, a warm-up request) has
/// touched it.
// qpp-lint: hot-path
pub fn recorder() -> &'static Recorder {
    GLOBAL.get_or_init(init_recorder)
}

fn init_recorder() -> Recorder {
    Recorder::with_capacity(GLOBAL_RING_CAPACITY)
}

thread_local! {
    /// The trace this thread is currently working for; 0 = untraced.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Sets this thread's current trace ID (0 clears it). Prefer
/// [`with_trace`], which restores the previous value.
// qpp-lint: hot-path
pub fn set_current_trace(trace_id: u64) {
    CURRENT_TRACE.with(|c| c.set(trace_id));
}

/// This thread's current trace ID (0 when untraced).
// qpp-lint: hot-path
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// Runs `f` with `trace_id` as this thread's current trace, restoring
/// the previous trace afterwards — including on unwind, so a panicking
/// prediction can't leak its trace ID onto the worker's next request.
// qpp-lint: hot-path
pub fn with_trace<R>(trace_id: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_current_trace(self.0);
        }
    }
    let _restore = Restore(current_trace());
    set_current_trace(trace_id);
    f()
}

/// Payload bits available next to the shard/tenant tags in a packed
/// event value (see [`pack_tags`]).
pub const TAG_PAYLOAD_BITS: u32 = 40;

/// Packs multi-tenant serve tags into an event's free-form `value`
/// word: `[tenant:16][shard:8][payload:40]`. The serve layer stamps
/// admission / queue-wait / worker spans (and `admission_reject` /
/// `fair_share` marks) with the tenant and queue shard that handled
/// the request, so a trace reader can attribute every span without a
/// side table. Payloads wider than 40 bits are truncated; tenant IDs
/// above `u16::MAX` and shard indices above `u8::MAX` wrap (tags are
/// diagnostics, never control flow).
// qpp-lint: hot-path
pub fn pack_tags(tenant: u16, shard: u8, payload: u64) -> u64 {
    ((tenant as u64) << 48) | ((shard as u64) << 40) | (payload & ((1u64 << TAG_PAYLOAD_BITS) - 1))
}

/// Inverse of [`pack_tags`]: `(tenant, shard, payload)`.
pub fn unpack_tags(value: u64) -> (u16, u8, u64) {
    (
        (value >> 48) as u16,
        ((value >> 40) & 0xff) as u8,
        value & ((1u64 << TAG_PAYLOAD_BITS) - 1),
    )
}

/// An in-flight span. Records itself (under the thread's current trace
/// at drop time) when dropped; timing uses the global recorder's
/// monotonic epoch.
#[derive(Debug)]
pub struct SpanGuard {
    stage: Stage,
    start_ns: u64,
    value: u64,
}

impl SpanGuard {
    /// Sets the span's free-form payload (batch size, queue depth, …).
    // qpp-lint: hot-path
    pub fn set_value(&mut self, value: u64) {
        self.value = value;
    }

    /// Builder form of [`SpanGuard::set_value`].
    pub fn with_value(mut self, value: u64) -> SpanGuard {
        self.value = value;
        self
    }
}

impl Drop for SpanGuard {
    // qpp-lint: hot-path
    fn drop(&mut self) {
        let r = recorder();
        let end = r.now_ns();
        r.record_span(
            current_trace(),
            self.stage,
            self.start_ns,
            end.saturating_sub(self.start_ns),
            self.value,
        );
    }
}

/// Starts a span for `stage`, ending (and recording) when the returned
/// guard drops.
// qpp-lint: hot-path
pub fn span(stage: Stage) -> SpanGuard {
    SpanGuard {
        stage,
        start_ns: recorder().now_ns(),
        value: 0,
    }
}

/// Records a completed span on the global recorder under the thread's
/// current trace (explicit-interval form, for when the guard shape
/// doesn't fit).
// qpp-lint: hot-path
pub fn record_span(stage: Stage, start_ns: u64, dur_ns: u64, value: u64) {
    recorder().record_span(current_trace(), stage, start_ns, dur_ns, value);
}

/// Records an instantaneous marker on the global recorder under the
/// thread's current trace.
// qpp-lint: hot-path
pub fn record_mark(stage: Stage, value: u64) {
    recorder().record_mark(current_trace(), stage, value);
}

/// Monotonic nanoseconds since the global recorder's epoch.
// qpp-lint: hot-path
pub fn now_ns() -> u64 {
    recorder().now_ns()
}

/// Fresh globally-unique (per process) trace ID; never 0.
// qpp-lint: hot-path
pub fn next_trace_id() -> u64 {
    recorder().next_trace_id()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_start_at_one_and_are_unique() {
        let r = Recorder::with_capacity(8);
        assert_eq!(r.next_trace_id(), 1);
        assert_eq!(r.next_trace_id(), 2);
        // Global IDs are unique too (other tests may be consuming them
        // concurrently, so only check distinctness/nonzero).
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn with_trace_nests_and_restores() {
        assert_eq!(current_trace(), 0);
        let inner = with_trace(7, || {
            assert_eq!(current_trace(), 7);
            with_trace(9, || {
                assert_eq!(current_trace(), 9);
            });
            current_trace()
        });
        assert_eq!(inner, 7);
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn with_trace_restores_on_unwind() {
        let caught = std::panic::catch_unwind(|| {
            with_trace(42, || {
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert_eq!(current_trace(), 0, "trace leaked past a panic");
    }

    #[test]
    fn span_guard_records_under_current_trace() {
        let trace = next_trace_id();
        with_trace(trace, || {
            let mut s = span(Stage::PredictKnn);
            s.set_value(5);
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let events = recorder().export_trace(trace);
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.kind, EventKind::Span);
        assert_eq!(e.stage, Stage::PredictKnn);
        assert_eq!(e.value, 5);
        assert!(
            e.dur_ns >= 1_000_000,
            "slept 1 ms, recorded {} ns",
            e.dur_ns
        );
    }

    #[test]
    fn marks_count_hits_without_duration() {
        let r = Recorder::with_capacity(8);
        r.record_mark(0, Stage::ModelSwap, 3);
        r.record_mark(0, Stage::ModelSwap, 4);
        let summary = r.stage_summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].stage, Stage::ModelSwap);
        assert_eq!(summary[0].hits, 2);
        assert_eq!(summary[0].total_ns, 0);
        let events = r.export();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Mark);
        assert_eq!(events[1].value, 4);
    }

    #[test]
    fn stage_summary_accumulates_exactly() {
        let r = Recorder::with_capacity(8);
        // More spans than ring capacity: the summary must still be
        // exact while the ring only retains the trailing window.
        for i in 0..100u64 {
            r.record_span(1, Stage::Predict, i, 10, 0);
        }
        r.record_span(1, Stage::QueueWait, 0, 7, 0);
        let summary = r.stage_summary();
        let predict = summary
            .iter()
            .find(|s| s.stage == Stage::Predict)
            .copied()
            .unwrap_or_else(|| panic!("predict stage missing from {summary:?}"));
        assert_eq!(predict.hits, 100);
        assert_eq!(predict.total_ns, 1_000);
        assert!((predict.mean_us() - 0.01).abs() < 1e-12);
        assert!(r.export().len() <= r.events_recorded() as usize);
        assert_eq!(r.events_recorded(), 101);
    }

    #[test]
    fn export_trace_filters_to_one_trace() {
        let r = Recorder::with_capacity(32);
        r.record_span(1, Stage::Worker, 0, 5, 0);
        r.record_span(2, Stage::Worker, 1, 5, 0);
        r.record_span(1, Stage::Predict, 2, 5, 0);
        let t1 = r.export_trace(1);
        assert_eq!(t1.len(), 2);
        assert!(t1.iter().all(|e| e.trace_id == 1));
        assert_eq!(t1[0].stage, Stage::Worker);
        assert_eq!(t1[1].stage, Stage::Predict);
    }

    #[test]
    fn concurrent_span_recording_stays_consistent() {
        let r = std::sync::Arc::new(Recorder::with_capacity(1 << 12));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        r.record_span(t + 1, Stage::Predict, i, 3, t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap_or_else(|_| panic!("recorder thread"));
        }
        assert_eq!(r.events_recorded(), 2_000);
        let summary = r.stage_summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].hits, 2_000);
        assert_eq!(summary[0].total_ns, 6_000);
        for t in 1..=4 {
            assert_eq!(r.export_trace(t).len(), 500);
        }
    }

    #[test]
    fn tag_packing_round_trips() {
        for (tenant, shard, payload) in [
            (0u16, 0u8, 0u64),
            (7, 3, 12345),
            (u16::MAX, u8::MAX, (1u64 << TAG_PAYLOAD_BITS) - 1),
        ] {
            let packed = pack_tags(tenant, shard, payload);
            assert_eq!(unpack_tags(packed), (tenant, shard, payload));
        }
        // Oversized payloads truncate instead of corrupting the tags.
        let packed = pack_tags(9, 2, u64::MAX);
        let (tenant, shard, payload) = unpack_tags(packed);
        assert_eq!((tenant, shard), (9, 2));
        assert_eq!(payload, (1u64 << TAG_PAYLOAD_BITS) - 1);
    }

    #[test]
    fn counters_jsonl_shape() {
        let r = Recorder::with_capacity(8);
        r.kcca_answers.add(10);
        r.fallback_answers.incr();
        let out = r.counters_jsonl();
        assert!(out.contains("{\"counter\":\"kcca_answers\",\"value\":10}"));
        assert!(out.contains("{\"counter\":\"fallback_answers\",\"value\":1}"));
    }
}
