//! Lock-free fixed-capacity event ring.
//!
//! Writers claim a ticket with one `fetch_add` and publish the event
//! into the ticket's slot; when the ring is full the oldest events are
//! overwritten (tracing wants the most recent window, not backpressure).
//! Every slot is a handful of `AtomicU64` words guarded by a sequence
//! stamp — no locks, no `unsafe`, and crucially **no allocation after
//! construction**, which is what lets the serving hot path record spans
//! while `tests/alloc_regression.rs` still measures 0.0 allocs/request.
//!
//! Readers ([`EventRing::snapshot`]) are best-effort: a slot being
//! rewritten mid-read is detected through the sequence stamp and
//! skipped. Monitoring data may lose an event under contention; it
//! never reports a torn one.

use crate::event::Event;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One slot: a sequence stamp, the event's words, and a checksum.
///
/// Stamp protocol for ticket `t`: `2t + 1` while writing, `2t + 2` once
/// published, `0` for never-written. Odd ⇒ in progress; even and
/// nonzero ⇒ stable, with the ticket recoverable as `(stamp - 2) / 2`.
///
/// The stamp alone cannot catch one pathological interleaving: a
/// writer preempted mid-publish while the ring completes a full lap
/// and a later writer reuses its slot, leaving mixed fields under an
/// even stamp. `check` (xor of the payload words) closes that hole:
/// readers recompute it and skip any slot whose payload does not hash
/// to its stored checksum.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    tag: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    value: AtomicU64,
    check: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            value: AtomicU64::new(0),
            check: AtomicU64::new(0),
        }
    }
}

/// Payload checksum; mixes a constant so an all-zero event still
/// produces a nonzero stored checksum.
fn checksum(trace_id: u64, tag: u64, start_ns: u64, dur_ns: u64, value: u64) -> u64 {
    0x9e37_79b9_7f4a_7c15
        ^ trace_id
        ^ tag.rotate_left(8)
        ^ start_ns.rotate_left(16)
        ^ dur_ns.rotate_left(24)
        ^ value.rotate_left(32)
}

/// A lock-free multi-producer event ring of fixed (power-of-two)
/// capacity. All storage is allocated once in [`EventRing::new`].
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

impl EventRing {
    /// Creates a ring holding `capacity` events; rounded up to the next
    /// power of two, with a floor of 8.
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (monotonic; exceeds `capacity()` once
    /// the ring has wrapped).
    pub fn recorded(&self) -> u64 {
        // ordering: a monotonic statistic; no payload hangs off it.
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes one event. Lock-free and allocation-free: one ticket
    /// `fetch_add` plus six word stores.
    // qpp-lint: hot-path
    pub fn push(&self, e: &Event) {
        // ordering: the ticket only claims a slot index; the seq stamps
        // below carry all payload visibility, so Relaxed suffices here.
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t & self.mask) as usize];
        let tag = e.tag();
        // ordering: odd stamp marks the write in flight before any
        // payload store can be observed.
        slot.seq.store(2 * t + 1, Ordering::Release);
        slot.trace_id.store(e.trace_id, Ordering::Relaxed); // ordering: guarded by seq stamps
        slot.tag.store(tag, Ordering::Relaxed); // ordering: guarded by seq stamps
        slot.start_ns.store(e.start_ns, Ordering::Relaxed); // ordering: guarded by seq stamps
        slot.dur_ns.store(e.dur_ns, Ordering::Relaxed); // ordering: guarded by seq stamps
        slot.value.store(e.value, Ordering::Relaxed); // ordering: guarded by seq stamps
                                                      // ordering: guarded by seq stamps; readers that race us fail the
                                                      // checksum and drop the slot.
        slot.check.store(
            checksum(e.trace_id, tag, e.start_ns, e.dur_ns, e.value),
            Ordering::Relaxed,
        );
        // ordering: even stamp publishes the payload; pairs with the
        // Acquire load at the top of `snapshot`.
        slot.seq.store(2 * t + 2, Ordering::Release);
    }

    /// Best-effort stable snapshot of the ring's current window, in
    /// ticket (publication) order. Slots mid-write or overwritten
    /// between the stamp checks are skipped, never returned torn.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut keyed: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // ordering: pairs with the even-stamp Release in `push`;
            // everything stored before that stamp is visible below.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or a write is in flight
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed); // ordering: validated by s1 == s2 + checksum
            let tag = slot.tag.load(Ordering::Relaxed); // ordering: validated by s1 == s2 + checksum
            let start_ns = slot.start_ns.load(Ordering::Relaxed); // ordering: validated by s1 == s2 + checksum
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed); // ordering: validated by s1 == s2 + checksum
            let value = slot.value.load(Ordering::Relaxed); // ordering: validated by s1 == s2 + checksum
            let check = slot.check.load(Ordering::Relaxed); // ordering: validated by s1 == s2 + checksum
                                                            // ordering: the fence orders the payload loads above before
                                                            // the re-check of seq below (the classic seqlock read).
            fence(Ordering::Acquire);
            // ordering: the fence above already orders this re-check.
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 || check != checksum(trace_id, tag, start_ns, dur_ns, value) {
                continue; // rewritten or mixed while we read; drop it
            }
            let Some((kind, stage)) = Event::untag(tag) else {
                continue;
            };
            keyed.push((
                (s1 - 2) / 2,
                Event {
                    trace_id,
                    kind,
                    stage,
                    start_ns,
                    dur_ns,
                    value,
                },
            ));
        }
        keyed.sort_by_key(|(ticket, _)| *ticket);
        keyed.into_iter().map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Stage};
    use std::sync::Arc;

    fn event(trace: u64, start: u64) -> Event {
        Event {
            trace_id: trace,
            kind: EventKind::Span,
            stage: Stage::Predict,
            start_ns: start,
            dur_ns: 10,
            value: 0,
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 8);
        assert_eq!(EventRing::new(9).capacity(), 16);
        assert_eq!(EventRing::new(64).capacity(), 64);
    }

    #[test]
    fn preserves_publication_order() {
        let ring = EventRing::new(16);
        for i in 0..10 {
            ring.push(&event(1, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.start_ns, i as u64);
        }
    }

    #[test]
    fn wraparound_keeps_most_recent_window() {
        let ring = EventRing::new(8);
        for i in 0..20 {
            ring.push(&event(1, i));
        }
        assert_eq!(ring.recorded(), 20);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8, "full ring after wrap");
        // The retained window is exactly the last `capacity` events, in
        // order.
        for (k, e) in snap.iter().enumerate() {
            assert_eq!(e.start_ns, (12 + k) as u64);
        }
    }

    #[test]
    fn concurrent_pushes_are_never_torn() {
        let ring = Arc::new(EventRing::new(64));
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Encode (thread, i) redundantly across fields so a
                        // torn slot would be detectable.
                        ring.push(&Event {
                            trace_id: t + 1,
                            kind: EventKind::Span,
                            stage: Stage::Predict,
                            start_ns: (t + 1) * 1_000_000 + i,
                            dur_ns: t + 1,
                            value: i,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pusher thread");
        }
        assert_eq!(ring.recorded(), THREADS * PER_THREAD);
        let snap = ring.snapshot();
        assert!(!snap.is_empty());
        assert!(snap.len() <= 64);
        for e in snap {
            // Cross-field consistency: all three encodings agree.
            assert_eq!(e.dur_ns, e.trace_id);
            assert_eq!(e.start_ns, e.trace_id * 1_000_000 + e.value);
        }
    }
}
