//! Property-based tests over the linear-algebra substrate.

use proptest::prelude::*;
use qpp_linalg::{
    Cholesky, GeneralizedEigen, IcdOptions, IncompleteCholesky, LeastSquares, Matrix,
    QrDecomposition, SymmetricEigen,
};

const DIM: usize = 5;

/// Strategy: a well-conditioned SPD matrix built as `BᵀB + I`.
fn spd_matrix() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, DIM * DIM).prop_map(|vals| {
        let b = Matrix::from_vec(DIM, DIM, vals).unwrap();
        let mut a = b.transpose().matmul(&b).unwrap();
        a.add_diagonal(1.0);
        a
    })
}

/// Strategy: an arbitrary symmetric matrix.
fn symmetric_matrix() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, DIM * DIM).prop_map(|vals| {
        let mut m = Matrix::from_vec(DIM, DIM, vals).unwrap();
        m.symmetrize();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs(a in spd_matrix()) {
        let c = Cholesky::new(&a).unwrap();
        let l = c.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn cholesky_solve_is_inverse(a in spd_matrix(), b in proptest::collection::vec(-5.0f64..5.0, DIM)) {
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in symmetric_matrix()) {
        let e = SymmetricEigen::new(&a).unwrap();
        let mut lam = Matrix::zeros(DIM, DIM);
        for i in 0..DIM { lam[(i, i)] = e.values[i]; }
        let rec = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-7);
    }

    #[test]
    fn eigen_values_sorted_descending(a in symmetric_matrix()) {
        let e = SymmetricEigen::new(&a).unwrap();
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigen_trace_preserved(a in symmetric_matrix()) {
        let e = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..DIM).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn generalized_eigen_residual_small(a in symmetric_matrix(), b in spd_matrix()) {
        let g = GeneralizedEigen::new(&a, &b).unwrap();
        for k in 0..DIM {
            let v = g.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            let bv = b.matvec(&v).unwrap();
            for i in 0..DIM {
                prop_assert!((av[i] - g.values[k] * bv[i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn qr_solves_square_systems(a in spd_matrix(), b in proptest::collection::vec(-5.0f64..5.0, DIM)) {
        // SPD matrices are invertible, so QR must solve exactly.
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn least_squares_recovers_exact_linear_model(
        coefs in proptest::collection::vec(-3.0f64..3.0, 3),
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 2), 8..20),
    ) {
        let x = Matrix::from_rows(&rows).unwrap();
        let mut y = Matrix::zeros(x.rows(), 1);
        for i in 0..x.rows() {
            y[(i, 0)] = coefs[0] + coefs[1] * x[(i, 0)] + coefs[2] * x[(i, 1)];
        }
        let ls = LeastSquares::fit(&x, &y).unwrap();
        let p = ls.predict(&[1.5, -2.5]).unwrap();
        let expected = coefs[0] + coefs[1] * 1.5 - coefs[2] * 2.5;
        prop_assert!((p[0] - expected).abs() < 1e-5);
    }

    #[test]
    fn icd_never_overshoots_diag(vals in proptest::collection::vec(-2.0f64..2.0, DIM * 3)) {
        // Points in 3-d; Gaussian kernel Gram matrix.
        let pts: Vec<&[f64]> = vals.chunks_exact(3).collect();
        let n = pts.len();
        let kern = |i: usize, j: usize| {
            let d: f64 = pts[i].iter().zip(pts[j].iter()).map(|(a, b)| (a - b) * (a - b)).sum();
            (-d / 2.0).exp()
        };
        let icd = IncompleteCholesky::factor(n, kern, IcdOptions { max_rank: n, relative_tolerance: 0.0 }).unwrap();
        let g = icd.g();
        let approx = g.matmul(&g.transpose()).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((approx[(i, j)] - kern(i, j)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn matmul_associative(avals in proptest::collection::vec(-2.0f64..2.0, 12),
                          bvals in proptest::collection::vec(-2.0f64..2.0, 12),
                          cvals in proptest::collection::vec(-2.0f64..2.0, 12)) {
        let a = Matrix::from_vec(3, 4, avals).unwrap();
        let b = Matrix::from_vec(4, 3, bvals).unwrap();
        let c = Matrix::from_vec(3, 4, cvals).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.sub(&right).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn transpose_involution(vals in proptest::collection::vec(-10.0f64..10.0, 12)) {
        let m = Matrix::from_vec(3, 4, vals).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}

proptest! {
    #[test]
    fn blocked_gemv_is_bitwise_equal_to_naive_loop(
        // Odd shapes on purpose: cols spans sub-block, block-remainder,
        // and multi-block widths so every lane/remainder path runs.
        rows in 1usize..24,
        cols in 1usize..40,
        seed_vals in proptest::collection::vec(-3.0f64..3.0, 24 * 40 + 2 * 24),
    ) {
        let w = Matrix::from_vec(rows, cols, seed_vals[..rows * cols].to_vec()).unwrap();
        let row = &seed_vals[rows * cols..rows * cols + rows];
        let mut means: Vec<f64> = seed_vals[rows * cols + rows..rows * cols + 2 * rows].to_vec();
        // Force some exact zero centers to exercise the skip branch.
        if rows > 2 {
            means[1] = row[1];
        }
        // The naive kernel the blocked gemv replaced in Cca::project_into.
        let mut naive = vec![0.0; cols];
        for i in 0..rows {
            let c = row[i] - means[i];
            if c == 0.0 {
                continue;
            }
            for (k, o) in naive.iter_mut().enumerate() {
                *o += c * w[(i, k)];
            }
        }
        let mut blocked = Vec::new();
        w.gemv_t_centered_into(row, &means, &mut blocked);
        prop_assert_eq!(blocked.len(), naive.len());
        for (b, n) in blocked.iter().zip(naive.iter()) {
            prop_assert_eq!(b.to_bits(), n.to_bits());
        }
    }
}
