//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi is slow for very large matrices but unconditionally robust and
//! delivers small, accurate eigenproblems — exactly what the reduced KCCA
//! problem needs (a few hundred dimensions after incomplete Cholesky).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by descending eigenvalue; `V`'s columns are the
/// corresponding orthonormal eigenvectors.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition of a symmetric matrix.
    ///
    /// Only requires approximate symmetry; the matrix is symmetrized
    /// internally. Fails with [`LinalgError::NoConvergence`] if the
    /// off-diagonal mass does not vanish within the sweep budget.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty("eigendecomposition"));
        }
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);

        let max_sweeps = 64;
        let scale = m.max_abs().max(1.0);
        let tol = 1e-14 * scale;
        let mut converged = false;
        for _sweep in 0..max_sweeps {
            let off = off_diagonal_norm(&m);
            if off <= tol * n as f64 {
                converged = true;
                break;
            }
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol * 1e-2 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Classic Jacobi rotation.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of M.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged && off_diagonal_norm(&m) > tol * (n as f64) * 100.0 {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi eigendecomposition",
                iterations: max_sweeps,
            });
        }

        // Extract and sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&a, &b| {
            diag[b]
                .partial_cmp(&diag[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (dst, &src) in order.iter().enumerate() {
            for k in 0..n {
                vectors[(k, dst)] = v[(k, src)];
            }
        }
        Ok(SymmetricEigen { values, vectors })
    }

    /// Returns the top-`k` eigenpairs as `(values, vectors)` where the
    /// vector matrix is `n x k`.
    pub fn top_k(&self, k: usize) -> (Vec<f64>, Matrix) {
        let k = k.min(self.values.len());
        (self.values[..k].to_vec(), self.vectors.take_cols(k))
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)].abs();
        }
    }
    s / ((n * n) as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3., 0., 0., 0., 1., 0., 0., 0., 2.]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4., 1., 0.5, 0.2, 1., 3., 0.3, 0.1, 0.5, 0.3, 2., 0.4, 0.2, 0.1, 0.4, 1.,
            ],
        )
        .unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        // Rebuild A = V Λ Vᵀ.
        let n = 4;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let rec = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn vectors_orthonormal() {
        let a = Matrix::from_vec(3, 3, vec![2., 1., 0., 1., 2., 1., 0., 1., 2.]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = Matrix::from_vec(3, 3, vec![5., 2., 1., 2., 4., 0.5, 1., 0.5, 3.]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..3 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn top_k_truncates() {
        let a = Matrix::identity(4);
        let e = SymmetricEigen::new(&a).unwrap();
        let (vals, vecs) = e.top_k(2);
        assert_eq!(vals.len(), 2);
        assert_eq!(vecs.shape(), (4, 2));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
    }
}
