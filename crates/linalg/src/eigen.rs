//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi is slow for very large matrices but unconditionally robust and
//! delivers small, accurate eigenproblems — exactly what the reduced KCCA
//! problem needs (a few hundred dimensions after incomplete Cholesky).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by descending eigenvalue; `V`'s columns are the
/// corresponding orthonormal eigenvectors.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
    /// Mean off-diagonal magnitude of the rotated matrix at acceptance —
    /// the residual actually achieved, for callers that want to audit
    /// solution quality instead of trusting a boolean.
    pub off_diagonal_residual: f64,
}

impl SymmetricEigen {
    /// Computes the decomposition of a symmetric matrix.
    ///
    /// Only requires approximate symmetry; the matrix is symmetrized
    /// internally. Fails with [`LinalgError::NoConvergence`] if the
    /// off-diagonal mass does not vanish within the sweep budget.
    pub fn new(a: &Matrix) -> Result<Self> {
        SymmetricEigen::with_sweep_budget(a, 64)
    }

    /// Like [`SymmetricEigen::new`] with an explicit sweep budget.
    ///
    /// A result is returned only when the rotated matrix's off-diagonal
    /// mass actually reached the tolerance; otherwise the error reports
    /// the residual that was achieved. (An earlier revision silently
    /// accepted anything within 100x the tolerance.)
    pub fn with_sweep_budget(a: &Matrix, max_sweeps: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty("eigendecomposition"));
        }
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);

        let scale = m.max_abs().max(1.0);
        let tol = 1e-14 * scale;
        let mut converged = false;
        for _sweep in 0..max_sweeps {
            let off = off_diagonal_norm(&m);
            if off <= tol * n as f64 {
                converged = true;
                break;
            }
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol * 1e-2 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Classic Jacobi rotation.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of M.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        // The loop above only re-checks the residual at the top of each
        // sweep; a final sweep may have finished the job. Accept at 1x
        // the tolerance — anything above it is a failed solve, reported
        // with the residual actually achieved so callers can diagnose
        // how far off the result was.
        let achieved = off_diagonal_norm(&m);
        let required = tol * n as f64;
        if !converged && achieved > required {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi eigendecomposition",
                iterations: max_sweeps,
                residual: achieved,
                tolerance: required,
            });
        }

        // Extract and sort descending. A NaN eigenvalue means the input
        // (or the rotations) produced garbage; under `partial_cmp(..)
        // .unwrap_or(Equal)` it would land in an arbitrary position and
        // silently flow into `top_k`, so reject it outright.
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        if diag.iter().any(|v| v.is_nan()) {
            return Err(LinalgError::NonFinite {
                op: "jacobi eigenvalues",
            });
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| descending_nans_last(diag[a], diag[b]));
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (dst, &src) in order.iter().enumerate() {
            for k in 0..n {
                vectors[(k, dst)] = v[(k, src)];
            }
        }
        Ok(SymmetricEigen {
            values,
            vectors,
            off_diagonal_residual: achieved,
        })
    }

    /// Returns the top-`k` eigenpairs as `(values, vectors)` where the
    /// vector matrix is `n x k`.
    pub fn top_k(&self, k: usize) -> (Vec<f64>, Matrix) {
        let k = k.min(self.values.len());
        (self.values[..k].to_vec(), self.vectors.take_cols(k))
    }
}

/// Total descending order with NaNs sorted last: a defensive backstop
/// for the (rejected-above) NaN case, and a total order either way so
/// the sort can never give scheduler- or input-order-dependent results.
fn descending_nans_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater, // NaN sinks to the end
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)].abs();
        }
    }
    s / ((n * n) as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3., 0., 0., 0., 1., 0., 0., 0., 2.]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4., 1., 0.5, 0.2, 1., 3., 0.3, 0.1, 0.5, 0.3, 2., 0.4, 0.2, 0.1, 0.4, 1.,
            ],
        )
        .unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        // Rebuild A = V Λ Vᵀ.
        let n = 4;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let rec = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn vectors_orthonormal() {
        let a = Matrix::from_vec(3, 3, vec![2., 1., 0., 1., 2., 1., 0., 1., 2.]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = Matrix::from_vec(3, 3, vec![5., 2., 1., 2., 4., 0.5, 1., 0.5, 3.]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..3 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn top_k_truncates() {
        let a = Matrix::identity(4);
        let e = SymmetricEigen::new(&a).unwrap();
        let (vals, vecs) = e.top_k(2);
        assert_eq!(vals.len(), 2);
        assert_eq!(vecs.shape(), (4, 2));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn stalled_solve_is_rejected_not_silently_accepted() {
        // Off-diagonal mass ~1e-12 sits between 1x and 100x the internal
        // tolerance (1e-14 * n for unit-scale input). With a zero sweep
        // budget the solver cannot reduce it; the old `> tol * n * 100`
        // check accepted this stalled state as converged.
        let eps = 1e-12;
        let a = Matrix::from_vec(3, 3, vec![3., eps, eps, eps, 2., eps, eps, eps, 1.]).unwrap();
        match SymmetricEigen::with_sweep_budget(&a, 0) {
            Err(LinalgError::NoConvergence {
                residual,
                tolerance,
                ..
            }) => {
                assert!(
                    residual > tolerance,
                    "diagnostic must carry the achieved residual ({residual:e} vs {tolerance:e})"
                );
            }
            other => panic!("stalled solve must error with a diagnostic, got {other:?}"),
        }
        // A real budget converges and reports the achieved residual.
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.off_diagonal_residual <= 1e-14 * 3.0 * 3.0);
    }

    #[test]
    fn nan_input_surfaces_as_error_not_arbitrary_sort_position() {
        // A NaN on the diagonal propagates into the eigenvalues; the old
        // `partial_cmp(..).unwrap_or(Equal)` sort placed it wherever the
        // sort happened to leave it, and `top_k` then returned it.
        let a = Matrix::from_vec(3, 3, vec![f64::NAN, 0., 0., 0., 2., 0., 0., 0., 1.]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn descending_sort_order_is_total() {
        use std::cmp::Ordering;
        assert_eq!(descending_nans_last(2.0, 1.0), Ordering::Less);
        assert_eq!(descending_nans_last(1.0, 2.0), Ordering::Greater);
        assert_eq!(descending_nans_last(f64::NAN, -1e300), Ordering::Greater);
        assert_eq!(descending_nans_last(-1e300, f64::NAN), Ordering::Less);
        assert_eq!(descending_nans_last(f64::NAN, f64::NAN), Ordering::Equal);
    }
}
