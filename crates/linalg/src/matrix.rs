//! Row-major dense matrix.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Output columns fixed per pass of
/// [`Matrix::gemv_t_centered_into`] — a stack-resident accumulator
/// block (128 bytes, two cache lines) that one streaming pass over the
/// matrix keeps hot. Covers the workspace's KCCA projections (≤ 16
/// canonical dims) in a single pass.
const GEMV_COL_BLOCK: usize = 16;

/// A dense, row-major `f64` matrix.
///
/// Sized for the workloads in this workspace: kernel factors with a few
/// hundred columns, feature matrices with a few thousand rows. All
/// operations are plain safe Rust; hot loops iterate over row slices so
/// the compiler can elide bounds checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows. All rows must be equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty("from_rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Output rows are independent, so row chunks run on the `qpp-par`
    /// pool; each row's arithmetic is identical to the serial loop's,
    /// making the product bitwise independent of the thread count.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let out_cols = rhs.cols;
        // Aim for a few thousand output elements per chunk; the bounds
        // depend only on the shapes, never on the worker count.
        let rows_per_chunk = (32_768 / out_cols.max(1)).clamp(4, 512);
        let parts = qpp_par::parallel_for_chunks(self.rows, rows_per_chunk, |chunk| {
            let mut buf = vec![0.0; chunk.range.len() * out_cols];
            for (bi, i) in chunk.range.clone().enumerate() {
                let a_row = self.row(i);
                let out_row = &mut buf[bi * out_cols..(bi + 1) * out_cols];
                // i-k-j loop order: innermost loop walks contiguous rows
                // of both `rhs` and the output, which vectorizes well.
                for (k, &a_ik) in a_row.iter().enumerate() {
                    if a_ik == 0.0 {
                        continue;
                    }
                    for (o, &b) in out_row.iter_mut().zip(rhs.row(k).iter()) {
                        *o += a_ik * b;
                    }
                }
            }
            buf
        });
        let mut data = Vec::with_capacity(self.rows * out_cols);
        for part in parts {
            data.extend(part);
        }
        if data.is_empty() {
            return Ok(Matrix::zeros(self.rows, out_cols));
        }
        Matrix::from_vec(self.rows, out_cols, data)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| crate::vector::dot(row, v))
            .collect())
    }

    /// Centered vector-matrix product `out = (row - means)ᵀ · self`,
    /// column-blocked for cache reuse.
    ///
    /// This is the projection kernel of the predict hot path: `self` is
    /// a tall-thin weight matrix (`p x keep`, row-major), and the naive
    /// loop re-touches the whole `out` vector once per matrix row. Here
    /// each pass fixes a block of [`GEMV_COL_BLOCK`] output columns in a
    /// stack-resident accumulator and streams the matrix rows once per
    /// block, the lane loop unrolled 4 wide.
    ///
    /// Bitwise equal to the naive loop: per output element the partial
    /// sums accumulate in exactly the same order (ascending row index,
    /// zero centered components skipped, one `+=` per touched row) —
    /// blocking changes *which* elements a pass touches, never the
    /// association within one. `tests/properties.rs` pins this.
    // qpp-lint: hot-path
    pub fn gemv_t_centered_into(&self, row: &[f64], means: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(row.len(), self.rows);
        debug_assert_eq!(means.len(), self.rows);
        let cols = self.cols;
        out.clear();
        out.resize(cols, 0.0);
        let mut k0 = 0;
        while k0 < cols {
            let width = GEMV_COL_BLOCK.min(cols - k0);
            let mut acc = [0.0f64; GEMV_COL_BLOCK];
            for (i, (&v, &mu)) in row.iter().zip(means.iter()).enumerate() {
                let c = v - mu;
                if c == 0.0 {
                    continue;
                }
                let w = &self.data[i * cols + k0..i * cols + k0 + width];
                let mut lane = 0;
                while lane + 4 <= width {
                    acc[lane] += c * w[lane];
                    acc[lane + 1] += c * w[lane + 1];
                    acc[lane + 2] += c * w[lane + 2];
                    acc[lane + 3] += c * w[lane + 3];
                    lane += 4;
                }
                while lane < width {
                    acc[lane] += c * w[lane];
                    lane += 1;
                }
            }
            out[k0..k0 + width].copy_from_slice(&acc[..width]);
            k0 += width;
        }
    }

    /// `selfᵀ * self` computed without forming the transpose.
    ///
    /// Rows accumulate into per-chunk partial Gram matrices (fixed
    /// 512-row chunks) that merge in chunk order, so the result is
    /// deterministic for any thread count; with ≤ 512 rows the single
    /// chunk reproduces the serial accumulation exactly.
    pub fn gram(&self) -> Matrix {
        const GRAM_ROW_CHUNK: usize = 512;
        let n = self.cols;
        let parts = qpp_par::parallel_for_chunks(self.rows, GRAM_ROW_CHUNK, |chunk| {
            let mut g = vec![0.0; n * n];
            for i in chunk.range.clone() {
                let row = self.row(i);
                for (a, &ra) in row.iter().enumerate() {
                    if ra == 0.0 {
                        continue;
                    }
                    let g_row = &mut g[a * n..(a + 1) * n];
                    for (o, &rb) in g_row.iter_mut().zip(row.iter()) {
                        *o += ra * rb;
                    }
                }
            }
            g
        });
        let mut iter = parts.into_iter();
        let mut acc = match iter.next() {
            Some(first) => first,
            None => return Matrix::zeros(n, n),
        };
        for part in iter {
            for (o, v) in acc.iter_mut().zip(part.iter()) {
                *o += v;
            }
        }
        Matrix {
            rows: n,
            cols: n,
            data: acc,
        }
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Adds `s` to every diagonal entry in place (ridge / jitter).
    pub fn add_diagonal(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// Copies the `rows x cols` block starting at `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(r0 + i)[c0..c0 + cols]);
        }
        out
    }

    /// Writes `block` into `self` starting at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        for i in 0..block.rows {
            let dst = &mut self.row_mut(r0 + i)[c0..c0 + block.cols];
            dst.copy_from_slice(block.row(i));
        }
    }

    /// New matrix keeping only the listed rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// New matrix keeping only the first `k` columns.
    pub fn take_cols(&self, k: usize) -> Matrix {
        let k = k.min(self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::sum_iter(self.data.iter().map(|v| v * v)).sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        crate::vector::max_iter(0.0, self.data.iter().map(|v| v.abs()))
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetrizes in place: `self = (self + selfᵀ) / 2`.
    pub fn symmetrize(&mut self) {
        debug_assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>11.4} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = m22(1., 2., 3., 4.);
        let b = m22(5., 6., 7., 8.);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m22(19., 22., 43., 50.));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m22(1., 2., 3., 4.);
        let v = vec![5., 6.];
        assert_eq!(a.matvec(&v).unwrap(), vec![17., 39.]);
    }

    #[test]
    fn gram_is_at_a() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.sub(&expected).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn block_and_set_block() {
        let mut m = Matrix::zeros(4, 4);
        let b = m22(1., 2., 3., 4.);
        m.set_block(1, 2, &b);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 3)], 4.0);
        assert_eq!(m.block(1, 2, 2, 2), b);
    }

    #[test]
    fn select_rows_and_take_cols() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5., 6.]);
        assert_eq!(s.row(1), &[1., 2.]);
        let c = m.take_cols(1);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c[(1, 0)], 3.0);
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = m22(1., 4., 2., 5.);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }
}
