//! Pivoted incomplete Cholesky decomposition of a Gram (kernel) matrix.
//!
//! `K ≈ G Gᵀ` with `G` of rank `r ≪ N`, built greedily by largest
//! remaining diagonal (trace-norm optimal pivoting). This is the
//! factorization Bach & Jordan use to make KCCA tractable, and it is
//! *exact* when run to full rank with zero tolerance — which lets the
//! same code path serve both the "exact" small-N mode and the scalable
//! low-rank mode.
//!
//! Crucially the input is a *Gram oracle* `k(i, j)`, not a materialized
//! `N x N` matrix: only `N·r` kernel evaluations are performed.

// Triangular solves and centroid updates read most clearly with index
// loops; the iterator forms clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Rows per parallel work chunk in the factorization loops. Fixed (not
/// derived from the thread count) so chunk boundaries — and therefore
/// results — never depend on how many workers ran.
const ROW_CHUNK: usize = 256;

/// Options controlling the factorization.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IcdOptions {
    /// Hard cap on the rank (number of pivots). `usize::MAX` = no cap.
    pub max_rank: usize,
    /// Stop when the remaining trace falls below `tol * initial trace`.
    pub relative_tolerance: f64,
}

impl Default for IcdOptions {
    fn default() -> Self {
        IcdOptions {
            max_rank: usize::MAX,
            relative_tolerance: 1e-6,
        }
    }
}

/// The factor `G` (`n x r`), selected pivots, and the triangular pivot
/// block needed to embed new points into the same feature space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncompleteCholesky {
    g: Matrix,
    pivots: Vec<usize>,
    /// Residual trace after the last accepted pivot (approximation error).
    residual_trace: f64,
}

impl IncompleteCholesky {
    /// Factorizes the `n x n` Gram matrix given by `gram(i, j)`.
    ///
    /// `gram` must be symmetric with non-negative diagonal (any kernel
    /// matrix qualifies). It is evaluated from multiple worker threads
    /// (hence `Sync`): each pivot's column of `N` kernel evaluations
    /// and residual updates is chunked across the `qpp-par` pool, with
    /// per-chunk results merged in row order — so the factor is bitwise
    /// identical for any thread count.
    pub fn factor(
        n: usize,
        gram: impl Fn(usize, usize) -> f64 + Sync,
        opts: IcdOptions,
    ) -> Result<Self> {
        if n == 0 {
            return Err(LinalgError::Empty("incomplete cholesky"));
        }
        let max_rank = opts.max_rank.min(n);
        let mut d: Vec<f64> = qpp_par::parallel_for_chunks(n, ROW_CHUNK, |chunk| {
            chunk.range.map(|i| gram(i, i)).collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let initial_trace = crate::vector::sum(&d);
        let tol = if initial_trace > 0.0 {
            opts.relative_tolerance * initial_trace
        } else {
            0.0
        };

        // Accepted columns of G, stored contiguously: column `t` lives
        // at `g_cols[t * n..(t + 1) * n]`. One growing allocation
        // instead of one per pivot.
        let mut g_cols: Vec<f64> = Vec::new();
        let mut pivots: Vec<usize> = Vec::new();
        let mut selected = vec![false; n];

        for t in 0..max_rank {
            // Greedy pivot: largest remaining diagonal.
            let mut p = usize::MAX;
            let mut best = 0.0;
            for i in 0..n {
                if !selected[i] && d[i] > best {
                    best = d[i];
                    p = i;
                }
            }
            let remaining = crate::vector::sum_iter(
                d.iter()
                    .zip(selected.iter())
                    .filter(|(_, &s)| !s)
                    .map(|(v, _)| v.max(0.0)),
            );
            if p == usize::MAX || best <= 0.0 || (t > 0 && remaining <= tol) {
                break;
            }
            let gpp = best.sqrt();
            // The hot loop: one kernel evaluation plus a rank-t residual
            // update per unselected row. Chunked across the worker pool;
            // every row's arithmetic is element-wise independent, so the
            // values are identical to the serial loop's.
            let g_cols_ref = &g_cols;
            let d_ref = &d;
            let selected_ref = &selected;
            let parts = qpp_par::parallel_for_chunks(n, ROW_CHUNK, |chunk| {
                let mut out = Vec::with_capacity(chunk.range.len());
                for i in chunk.range {
                    if selected_ref[i] || i == p {
                        out.push((0.0, d_ref[i]));
                        continue;
                    }
                    let mut v = gram(i, p);
                    for prev in g_cols_ref.chunks_exact(n) {
                        v -= prev[i] * prev[p];
                    }
                    let gi = v / gpp;
                    out.push((gi, d_ref[i] - gi * gi));
                }
                out
            });
            let start = g_cols.len();
            g_cols.resize(start + n, 0.0);
            let mut i = 0;
            for part in parts {
                for (g_i, d_i) in part {
                    g_cols[start + i] = g_i;
                    d[i] = d_i;
                    i += 1;
                }
            }
            g_cols[start + p] = gpp;
            selected[p] = true;
            d[p] = 0.0;
            pivots.push(p);
        }

        if pivots.is_empty() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: 0,
                value: d.first().copied().unwrap_or(0.0),
            });
        }

        let r = pivots.len();
        let mut g = Matrix::zeros(n, r);
        for (t, col) in g_cols.chunks_exact(n).enumerate() {
            for i in 0..n {
                g[(i, t)] = col[i];
            }
        }
        let residual_trace = crate::vector::sum_iter(
            d.iter()
                .zip(selected.iter())
                .filter(|(_, &s)| !s)
                .map(|(v, _)| v.max(0.0)),
        );
        Ok(IncompleteCholesky {
            g,
            pivots,
            residual_trace,
        })
    }

    /// The factor `G` with `K ≈ G Gᵀ` (`n` rows, `rank()` columns).
    pub fn g(&self) -> &Matrix {
        &self.g
    }

    /// Achieved rank.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Pivot indices in selection order.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Remaining trace `tr(K - G Gᵀ)` — the approximation error.
    pub fn residual_trace(&self) -> f64 {
        self.residual_trace
    }

    /// Embeds a *new* point into the same `r`-dimensional feature space.
    ///
    /// `kernel_at_pivots[t]` must be `k(x_new, pivot_t)` in pivot order.
    /// The embedding satisfies `g_new · g_iᵀ ≈ k(x_new, x_i)` for training
    /// points `i`, i.e. new points live in the same approximate feature
    /// space as the training rows of `G`.
    pub fn transform_new(&self, kernel_at_pivots: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.rank());
        self.transform_new_into(kernel_at_pivots, &mut out)?;
        Ok(out)
    }

    /// Like [`IncompleteCholesky::transform_new`], writing into a
    /// reusable buffer: after warmup the buffer's capacity is retained,
    /// so steady-state embeddings allocate nothing.
    // qpp-lint: hot-path
    pub fn transform_new_into(&self, kernel_at_pivots: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let r = self.rank();
        if kernel_at_pivots.len() != r {
            return Err(LinalgError::ShapeMismatch {
                op: "icd transform_new",
                lhs: (r, 1),
                rhs: (kernel_at_pivots.len(), 1),
            });
        }
        // Forward substitution against the lower-triangular pivot block
        // G[pivots, :] (triangular in selection order by construction).
        out.clear();
        out.resize(r, 0.0);
        for t in 0..r {
            let p = self.pivots[t];
            let mut v = kernel_at_pivots[t];
            for s in 0..t {
                v -= out[s] * self.g[(p, s)];
            }
            out[t] = v / self.g[(p, t)];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    type Points = Vec<Vec<f64>>; // allow-vecvec: test fixture

    fn gaussian_points() -> Points {
        // Deterministic scattered points.
        (0..12)
            .map(|i| {
                let x = (i as f64 * 0.7).sin() * 3.0;
                let y = (i as f64 * 1.3).cos() * 2.0;
                vec![x, y]
            })
            .collect()
    }

    fn kernel(a: &[f64], b: &[f64]) -> f64 {
        (-vector::sq_dist(a, b) / 4.0).exp()
    }

    #[test]
    fn full_rank_is_exact() {
        let pts = gaussian_points();
        let n = pts.len();
        let icd = IncompleteCholesky::factor(
            n,
            |i, j| kernel(&pts[i], &pts[j]),
            IcdOptions {
                max_rank: n,
                relative_tolerance: 0.0,
            },
        )
        .unwrap();
        let g = icd.g();
        let approx = g.matmul(&g.transpose()).unwrap();
        for i in 0..n {
            for j in 0..n {
                let k = kernel(&pts[i], &pts[j]);
                assert!(
                    (approx[(i, j)] - k).abs() < 1e-8,
                    "K[{i},{j}] {} vs {}",
                    approx[(i, j)],
                    k
                );
            }
        }
    }

    #[test]
    fn truncated_rank_bounds_error_by_residual_trace() {
        let pts = gaussian_points();
        let n = pts.len();
        let icd = IncompleteCholesky::factor(
            n,
            |i, j| kernel(&pts[i], &pts[j]),
            IcdOptions {
                max_rank: 5,
                relative_tolerance: 0.0,
            },
        )
        .unwrap();
        assert_eq!(icd.rank(), 5);
        let g = icd.g();
        let approx = g.matmul(&g.transpose()).unwrap();
        // Diagonal error sums to the residual trace.
        let diag_err: f64 = (0..n)
            .map(|i| kernel(&pts[i], &pts[i]) - approx[(i, i)])
            .sum();
        assert!((diag_err - icd.residual_trace()).abs() < 1e-8);
    }

    #[test]
    fn transform_new_matches_training_row() {
        // Embedding a training point as if it were new must reproduce its
        // G row (for full-rank factorization).
        let pts = gaussian_points();
        let n = pts.len();
        let icd = IncompleteCholesky::factor(
            n,
            |i, j| kernel(&pts[i], &pts[j]),
            IcdOptions {
                max_rank: n,
                relative_tolerance: 1e-12,
            },
        )
        .unwrap();
        for probe in [0usize, 3, 7] {
            let k_row: Vec<f64> = icd
                .pivots()
                .iter()
                .map(|&p| kernel(&pts[probe], &pts[p]))
                .collect();
            let emb = icd.transform_new(&k_row).unwrap();
            for (t, v) in emb.iter().enumerate() {
                assert!(
                    (v - icd.g()[(probe, t)]).abs() < 1e-6,
                    "row {probe} dim {t}: {} vs {}",
                    v,
                    icd.g()[(probe, t)]
                );
            }
        }
    }

    #[test]
    fn pivot_block_is_triangular() {
        let pts = gaussian_points();
        let n = pts.len();
        let icd =
            IncompleteCholesky::factor(n, |i, j| kernel(&pts[i], &pts[j]), IcdOptions::default())
                .unwrap();
        for (t, &p) in icd.pivots().iter().enumerate() {
            for s in (t + 1)..icd.rank() {
                assert!(icd.g()[(p, s)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(IncompleteCholesky::factor(0, |_, _| 0.0, IcdOptions::default()).is_err());
    }

    #[test]
    fn zero_matrix_rejected() {
        assert!(IncompleteCholesky::factor(4, |_, _| 0.0, IcdOptions::default()).is_err());
    }
}
