//! Small vector kernels used across the workspace.
//!
//! The reductions here (`sum`, `sum_iter`, `min_iter`, `max_iter`,
//! `dot`, `mean`, `variance`) are the *canonical ordered float
//! reductions* of the workspace: strictly sequential, left-to-right,
//! fixed seed. Float addition is not associative, so the bitwise
//! determinism guarantee (tests/thread_invariance.rs) requires every
//! float reduction to pin its evaluation order — `qpp-lint`'s
//! `no-unordered-float-reduce` rule steers all library code here. The
//! interior `.sum()`/`.fold()` calls below are the sanctioned
//! primitives and carry the corresponding allow annotations.

/// Ordered sequential sum of a slice: left to right, seed `0.0`.
///
/// Bitwise identical to `a.iter().sum::<f64>()` — this is the
/// sanctioned spelling of that reduction in library code.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    sum_iter(a.iter().copied())
}

/// Ordered sequential sum of an iterator: left to right, seed `0.0`.
#[inline]
pub fn sum_iter(it: impl IntoIterator<Item = f64>) -> f64 {
    // qpp-lint: allow(no-unordered-float-reduce) — the canonical ordered reduction
    it.into_iter().fold(0.0, |acc, v| acc + v)
}

/// Ordered sequential minimum: `fold(seed, f64::min)` left to right.
#[inline]
pub fn min_iter(seed: f64, it: impl IntoIterator<Item = f64>) -> f64 {
    // qpp-lint: allow(no-unordered-float-reduce) — the canonical ordered reduction
    it.into_iter().fold(seed, f64::min)
}

/// Ordered sequential maximum: `fold(seed, f64::max)` left to right.
#[inline]
pub fn max_iter(seed: f64, it: impl IntoIterator<Item = f64>) -> f64 {
    // qpp-lint: allow(no-unordered-float-reduce) — the canonical ordered reduction
    it.into_iter().fold(seed, f64::max)
}

/// Dot product of two equal-length slices.
///
/// Panics in debug builds when lengths differ; in release the shorter
/// length wins (callers in this workspace always pass equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // qpp-lint: allow(no-unordered-float-reduce) — canonical ordered kernel
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        // qpp-lint: allow(no-unordered-float-reduce) — canonical ordered kernel
        .sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Cosine distance `1 - cos(a, b)`; zero vectors are maximally distant.
#[inline]
pub fn cosine_dist(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    sum(a) / a.len() as f64
}

/// Population variance; 0 for inputs shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    sum_iter(a.iter().map(|&v| (v - m) * (v - m))) / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_dist() {
        assert_eq!(dot(&[1., 2.], &[3., 4.]), 11.0);
        assert!((norm(&[3., 4.]) - 5.0).abs() < 1e-12);
        assert!((dist(&[0., 0.], &[3., 4.]) - 5.0).abs() < 1e-12);
        assert_eq!(sq_dist(&[1., 1.], &[1., 1.]), 0.0);
    }

    #[test]
    fn cosine_distance_properties() {
        // Parallel vectors: distance 0 regardless of magnitude.
        assert!(cosine_dist(&[1., 0.], &[5., 0.]).abs() < 1e-12);
        // Orthogonal: distance 1.
        assert!((cosine_dist(&[1., 0.], &[0., 2.]) - 1.0).abs() < 1e-12);
        // Opposite: distance 2.
        assert!((cosine_dist(&[1., 0.], &[-1., 0.]) - 2.0).abs() < 1e-12);
        // Zero vector convention.
        assert_eq!(cosine_dist(&[0., 0.], &[1., 0.]), 1.0);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1., 2.];
        axpy(2.0, &[10., 20.], &mut y);
        assert_eq!(y, vec![21., 42.]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![10.5, 21.]);
    }

    #[test]
    fn ordered_reductions_match_bare_spellings() {
        let a = [0.1, 0.7, -2.5, 3.75, 1e-9];
        assert_eq!(sum(&a), a.iter().sum::<f64>());
        assert_eq!(
            sum_iter(a.iter().map(|&v| v * v)),
            a.iter().map(|&v| v * v).sum::<f64>()
        );
        assert_eq!(
            min_iter(f64::INFINITY, a.iter().copied()),
            a.iter().copied().fold(f64::INFINITY, f64::min)
        );
        assert_eq!(
            max_iter(0.0, a.iter().copied()),
            a.iter().copied().fold(0.0, f64::max)
        );
    }

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2., 4.]), 3.0);
        assert_eq!(variance(&[5.]), 0.0);
        assert!((variance(&[1., 3.]) - 1.0).abs() < 1e-12);
    }
}
