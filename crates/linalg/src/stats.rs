//! Column statistics and standardization over matrices.

use crate::matrix::Matrix;

/// Per-column mean of a matrix.
pub fn column_means(m: &Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mut means = vec![0.0; cols];
    if rows == 0 {
        return means;
    }
    for row in m.row_iter() {
        for (acc, &v) in means.iter_mut().zip(row.iter()) {
            *acc += v;
        }
    }
    for v in &mut means {
        *v /= rows as f64;
    }
    means
}

/// Per-column population standard deviation.
pub fn column_stds(m: &Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let means = column_means(m);
    let mut vars = vec![0.0; cols];
    if rows < 2 {
        return vars;
    }
    for row in m.row_iter() {
        for ((acc, &mu), &v) in vars.iter_mut().zip(means.iter()).zip(row.iter()) {
            let d = v - mu;
            *acc += d * d;
        }
    }
    for v in &mut vars {
        *v = (*v / rows as f64).sqrt();
    }
    vars
}

/// Fitted column-wise standardizer `(x - mean) / std`.
///
/// Columns with (near-)zero variance pass through centered but unscaled,
/// so constant features cannot produce NaNs downstream.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits to the rows of `m`.
    pub fn fit(m: &Matrix) -> Self {
        let means = column_means(m);
        let stds = column_stds(m)
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        Standardizer { means, stds }
    }

    /// Standardizes one row vector.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&mu, &sd))| (v - mu) / sd)
            .collect()
    }

    /// Standardizes one row into a preallocated slice of the same
    /// length (the zero-copy batch path).
    pub fn transform_row_to(&self, row: &[f64], out: &mut [f64]) {
        for (o, (&v, (&mu, &sd))) in out
            .iter_mut()
            .zip(row.iter().zip(self.means.iter().zip(self.stds.iter())))
        {
            *o = (v - mu) / sd;
        }
    }

    /// Standardizes one row into a reusable buffer. After warmup the
    /// buffer's capacity is retained, so steady-state calls allocate
    /// nothing.
    // qpp-lint: hot-path
    pub fn transform_row_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            row.iter()
                .zip(self.means.iter().zip(self.stds.iter()))
                .map(|(&v, (&mu, &sd))| (v - mu) / sd),
        );
    }

    /// Standardizes every row of `m`.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        Matrix::from_fn(m.rows(), m.cols(), |i, j| {
            (m[(i, j)] - self.means[j]) / self.stds[j]
        })
    }

    /// Inverse transform of one row.
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&mu, &sd))| v * sd + mu)
            .collect()
    }

    /// Fitted means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted standard deviations (zero-variance columns report 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Mean empirical variance of row norms — the quantity the paper scales
/// its Gaussian-kernel τ by ("a fixed fraction of the empirical variance
/// of the norms of the data points", §VI-A).
pub fn norm_variance(m: &Matrix) -> f64 {
    let norms: Vec<f64> = m.row_iter().map(crate::vector::norm).collect();
    crate::vector::variance(&norms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_stds() {
        let m = Matrix::from_vec(2, 2, vec![1., 10., 3., 30.]).unwrap();
        assert_eq!(column_means(&m), vec![2.0, 20.0]);
        let s = column_stds(&m);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn standardizer_round_trip() {
        let m = Matrix::from_vec(3, 2, vec![1., 5., 2., 7., 3., 9.]).unwrap();
        let sc = Standardizer::fit(&m);
        let t = sc.transform(&m);
        // Standardized columns: zero mean, unit std.
        let means = column_means(&t);
        let stds = column_stds(&t);
        for mu in means {
            assert!(mu.abs() < 1e-12);
        }
        for sd in stds {
            assert!((sd - 1.0).abs() < 1e-9);
        }
        let back = sc.inverse_row(t.row(1));
        assert!((back[0] - 2.0).abs() < 1e-12);
        assert!((back[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn transform_row_variants_are_bitwise_equal() {
        let m = Matrix::from_vec(3, 2, vec![1., 5., 2., 7., 3., 9.]).unwrap();
        let sc = Standardizer::fit(&m);
        let row = [2.5, 6.5];
        let owned = sc.transform_row(&row);
        let mut buf = Vec::new();
        sc.transform_row_into(&row, &mut buf);
        let mut slot = [0.0; 2];
        sc.transform_row_to(&row, &mut slot);
        for j in 0..2 {
            assert_eq!(owned[j].to_bits(), buf[j].to_bits());
            assert_eq!(owned[j].to_bits(), slot[j].to_bits());
        }
    }

    #[test]
    fn constant_column_is_safe() {
        let m = Matrix::from_vec(3, 1, vec![4., 4., 4.]).unwrap();
        let sc = Standardizer::fit(&m);
        let t = sc.transform(&m);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(t[(0, 0)], 0.0);
    }

    #[test]
    fn norm_variance_zero_for_equal_norm_rows() {
        let m = Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]).unwrap();
        assert!(norm_variance(&m).abs() < 1e-12);
    }
}
