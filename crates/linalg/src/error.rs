//! Error type shared by all factorizations and solvers.

use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix must be square for this operation.
    NotSquare {
        /// Number of rows observed.
        rows: usize,
        /// Number of columns observed.
        cols: usize,
    },
    /// A pivot collapsed to (or below) zero: the matrix is not positive
    /// definite / is rank deficient beyond what the algorithm tolerates.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// An iterative algorithm failed to converge within its budget.
    NoConvergence {
        /// Algorithm name.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual achieved when the budget ran out.
        residual: f64,
        /// Residual the algorithm was required to reach.
        tolerance: f64,
    },
    /// A NaN or infinity surfaced where a finite value is required.
    NonFinite {
        /// Operation that observed the non-finite value.
        op: &'static str,
    },
    /// A computed quantity violated a mathematical bound by more than
    /// numerical slack (e.g. a canonical correlation far above 1).
    OutOfRange {
        /// Quantity that went out of range.
        what: &'static str,
        /// Offending value.
        value: f64,
        /// Bound (on the absolute value) that was violated.
        bound: f64,
    },
    /// The input was empty where data is required.
    Empty(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} = {value:e}"
            ),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations \
                 (residual {residual:e} > tolerance {tolerance:e})"
            ),
            LinalgError::NonFinite { op } => {
                write!(f, "non-finite value encountered in {op}")
            }
            LinalgError::OutOfRange { what, value, bound } => write!(
                f,
                "{what} out of range: |{value:e}| exceeds bound {bound:e}"
            ),
            LinalgError::Empty(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
