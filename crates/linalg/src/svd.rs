//! Truncated SVD via deterministic blocked subspace iteration.
//!
//! The reduced KCCA eigensolve only needs the top `components` (8–16)
//! singular triplets of the (at most `rank x rank`) correlation matrix
//! `M = Lx⁻¹ Cxy Ly⁻ᵀ` — far less than the full dense Jacobi solve on
//! the `(p+q) x (p+q)` generalized problem it replaces. This module
//! extracts exactly those triplets:
//!
//! 1. Start from a fixed pseudorandom block `V₀` (splitmix64 stream
//!    with a compile-time seed — no wall clock, no global RNG), applied
//!    through `Mᵀ` and orthonormalized.
//! 2. Power steps on `MᵀM`: `V ← orth(Mᵀ (M V))`, re-orthonormalized
//!    every step with Householder QR ([`QrDecomposition::thin_q`]),
//!    which stays orthonormal even on rank-deficient blocks.
//! 3. Stop when the top-`k` Ritz values of `MᵀM` are stationary to a
//!    relative tolerance — or when the iteration provably stagnates
//!    below a documented accuracy cap (near-degenerate clusters
//!    converge with ratio ≈ 1; see [`SvdOptions::stagnation_patience`])
//!    — then Rayleigh–Ritz: eigendecompose the small `b x b`
//!    projection to rotate the block onto singular vectors. Stagnating
//!    *above* the cap, or exhausting the budget, is a hard error.
//!
//! **Determinism.** Every operation in the loop — [`Matrix::matmul`] /
//! [`Matrix::gram`] (fixed chunking, ordered reduction on the `qpp-par`
//! pool), serial Householder QR, serial Jacobi on the `b x b`
//! projection — is bitwise thread-invariant, so the iteration
//! trajectory, the data-dependent stopping sweep, and the final
//! triplets are identical at any thread count. Singular-vector signs
//! are pinned by a fixed rule (largest-magnitude entry of each right
//! vector made positive, earliest index on ties).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::qr::QrDecomposition;

/// Options for [`truncated_svd`].
#[derive(Debug, Clone, Copy)]
pub struct SvdOptions {
    /// Extra subspace columns beyond the requested `k` (oversampling
    /// accelerates convergence of the trailing requested triplets).
    pub oversample: usize,
    /// Hard cap on power iterations before the solve is declared
    /// failed (the fixed part of the schedule).
    pub max_iterations: usize,
    /// Stationarity tolerance on the top-`k` Ritz values of `MᵀM`
    /// (i.e. σ², not σ), relative to the dominant one (the convergence
    /// part of the schedule). Comparing the *squared* values is what
    /// makes a single fixed default safe: symmetric eigenvalue
    /// perturbation is absolute (Weyl), so the rounding jitter of
    /// every Ritz value of `MᵀM` is a few ULPs of `λ₁` regardless of
    /// how ill-conditioned the kept block is — whereas deltas of σ
    /// itself jitter like `eps · σ₁/σₖ` and stall above any fixed
    /// tolerance once the spread is wide.
    pub ritz_tolerance: f64,
    /// Consecutive iterations without the delta improving on its best
    /// value by at least 2% (cumulatively) before the iteration is
    /// declared stagnant. The window is wide and the threshold low on
    /// purpose: genuinely slow convergence (per-step ratio 0.999)
    /// still clears 2% every ~20 iterations and is left to run, while
    /// a true plateau oscillates with no systematic decay and cannot.
    /// Plateaus happen on near-degenerate trailing clusters (kept
    /// values tying with the oversampling buffer converge with ratio
    /// ≈ 1): the delta sits far above `ritz_tolerance` without the
    /// values being wrong — they are trapped inside the cluster,
    /// within its width of the truth.
    pub stagnation_patience: usize,
    /// Hard accuracy cap for stagnation acceptance, relative to the
    /// dominant Ritz value. A plateaued iteration is accepted only if
    /// its delta is below this bound; stagnating above it is a
    /// [`LinalgError::NoConvergence`] error with the achieved delta in
    /// the payload — never a silent return.
    pub stagnation_tolerance: f64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions {
            oversample: 8,
            max_iterations: 512,
            ritz_tolerance: 1e-13,
            stagnation_patience: 64,
            stagnation_tolerance: 1e-8,
        }
    }
}

/// The top-`k` singular triplets of a dense matrix.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Singular values, descending (length `k`).
    pub singular_values: Vec<f64>,
    /// Left singular vectors as columns (`p x k`). A column is zero
    /// when its singular value is numerically zero (the left direction
    /// is then undefined).
    pub u: Matrix,
    /// Right singular vectors as columns (`q x k`).
    pub v: Matrix,
    /// Power iterations performed before the Ritz values went
    /// stationary.
    pub iterations: usize,
}

/// Computes the top-`k` singular triplets `M ≈ U Σ Vᵀ` of `m` (`p x q`)
/// by blocked subspace iteration on `MᵀM`.
///
/// `k` is capped at `min(p, q)`. Fails with
/// [`LinalgError::NoConvergence`] if the Ritz values are still moving
/// after `max_iterations` power steps, and with
/// [`LinalgError::NonFinite`] if the input contains NaN or infinity.
pub fn truncated_svd(m: &Matrix, k: usize, opts: SvdOptions) -> Result<TruncatedSvd> {
    let (p, q) = m.shape();
    if p == 0 || q == 0 || k == 0 {
        return Err(LinalgError::Empty("truncated svd"));
    }
    if !m.is_finite() {
        return Err(LinalgError::NonFinite {
            op: "truncated svd",
        });
    }
    // Iterate on the narrow side: the basis lives in the column space
    // of Mᵀ, so a wide matrix is handled by factoring the transpose and
    // swapping U and V.
    if q > p {
        let t = truncated_svd(&m.transpose(), k, opts)?;
        return Ok(TruncatedSvd {
            singular_values: t.singular_values,
            u: t.v,
            v: t.u,
            iterations: t.iterations,
        });
    }
    let k = k.min(q);
    let b = (k + opts.oversample).min(q);

    // Fixed pseudorandom start: Ω (p x b) from a seeded splitmix64
    // stream, pushed through Mᵀ so V₀ already lies in the row space.
    let omega = Matrix::from_fn(p, b, {
        let mut stream = SplitMix64::new(0x9e37_79b9_7f4a_7c15);
        move |_, _| stream.next_unit()
    });
    let mt = m.transpose();
    let mut v = orthonormalize(&mt.matmul(&omega)?)?;

    let mut prev_ritz: Option<Vec<f64>> = None;
    let mut iterations = 0;
    let mut last_delta = f64::INFINITY;
    let mut best_delta = f64::INFINITY;
    let mut since_improved = 0usize;
    let mut converged = false;
    while iterations < opts.max_iterations {
        iterations += 1;
        // One power step on MᵀM with a Rayleigh quotient read mid-step:
        // T = Vᵀ (MᵀM V) is the b x b projection whose eigenvalues are
        // the Ritz values of MᵀM at the current basis.
        let y = mt.matmul(&m.matmul(&v)?)?;
        let t = v.transpose().matmul(&y)?;
        let ritz = ritz_values(&t, k)?;
        if let Some(prev) = &prev_ritz {
            let scale = ritz.first().copied().unwrap_or(0.0).max(1e-300);
            last_delta = crate::vector::max_iter(
                0.0,
                ritz.iter()
                    .zip(prev.iter())
                    .map(|(a, b)| (a - b).abs() / scale),
            );
            if last_delta <= opts.ritz_tolerance {
                converged = true;
                break;
            }
            // Stagnation: no 2% *cumulative* improvement on the
            // best delta within the patience window (clustered
            // trailing values converge with ratio ≈ 1 and plateau far
            // above the tight target). Accept only under the hard cap;
            // a plateau above it is an error, not a silent return.
            if last_delta <= best_delta * 0.98 {
                best_delta = last_delta;
                since_improved = 0;
            } else {
                since_improved += 1;
                if since_improved >= opts.stagnation_patience {
                    if last_delta <= opts.stagnation_tolerance {
                        converged = true;
                        break;
                    }
                    return Err(LinalgError::NoConvergence {
                        algorithm: "subspace iteration (stagnated)",
                        iterations,
                        residual: last_delta,
                        tolerance: opts.stagnation_tolerance,
                    });
                }
            }
        }
        prev_ritz = Some(ritz);
        v = orthonormalize(&y)?;
    }
    // Budget exhaustion uses the same explicit accuracy cap as
    // stagnation: accept if the values are moving less than the cap
    // per step, error with full diagnostics otherwise.
    if !converged && last_delta > opts.stagnation_tolerance {
        return Err(LinalgError::NoConvergence {
            algorithm: "subspace iteration",
            iterations,
            residual: last_delta,
            tolerance: opts.stagnation_tolerance,
        });
    }

    // Rayleigh–Ritz rotation onto singular vectors: B = M V, T = BᵀB,
    // T = W Λ Wᵀ gives σⱼ = √λⱼ, right vectors V W and left vectors
    // B W / σ.
    let bm = m.matmul(&v)?;
    let t = bm.gram();
    let eig = crate::eigen::SymmetricEigen::new(&t)?;
    let sigma_max = eig.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    let floor = sigma_max * 1e-14;
    let mut singular_values = Vec::with_capacity(k);
    let mut u = Matrix::zeros(p, k);
    let mut v_out = Matrix::zeros(q, k);
    for j in 0..k {
        let sigma = eig.values[j].max(0.0).sqrt();
        singular_values.push(sigma);
        let w = eig.vectors.col(j);
        let vj = v.matvec(&w)?;
        let uj = if sigma > floor && sigma > 0.0 {
            let bw = bm.matvec(&w)?;
            bw.iter().map(|x| x / sigma).collect()
        } else {
            vec![0.0; p]
        };
        // Deterministic sign: the largest-magnitude entry of the right
        // vector is made positive; ties resolve to the earliest index.
        let mut pivot = 0;
        for (i, x) in vj.iter().enumerate() {
            if x.abs() > vj[pivot].abs() {
                pivot = i;
            }
        }
        let flip = if vj[pivot] < 0.0 { -1.0 } else { 1.0 };
        for (i, x) in vj.iter().enumerate() {
            v_out[(i, j)] = flip * x;
        }
        for (i, x) in uj.iter().enumerate() {
            u[(i, j)] = flip * x;
        }
    }
    Ok(TruncatedSvd {
        singular_values,
        u,
        v: v_out,
        iterations,
    })
}

/// Orthonormalizes the columns of `y` via Householder QR.
fn orthonormalize(y: &Matrix) -> Result<Matrix> {
    Ok(QrDecomposition::new(y)?.thin_q())
}

/// Top-`k` Ritz values of `MᵀM` (projected eigenvalues clamped at 0 —
/// deliberately NOT square-rooted: stationarity is judged on λ = σ²,
/// where the rounding floor is condition-independent; see
/// [`SvdOptions::ritz_tolerance`]).
fn ritz_values(t: &Matrix, k: usize) -> Result<Vec<f64>> {
    let eig = crate::eigen::SymmetricEigen::new(t)?;
    Ok(eig.values.iter().take(k).map(|l| l.max(0.0)).collect())
}

/// Fixed-seed splitmix64 stream mapped to `[-1, 1)`. Deterministic by
/// construction: no wall clock, no global state, no thread identity.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_unit(&mut self) -> f64 {
        // 53 mantissa bits → uniform in [0, 1), then shifted to [-1, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        2.0 * x - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        crate::vector::max_iter(0.0, a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()))
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let mut m = Matrix::zeros(4, 3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = 5.0;
        m[(2, 2)] = 1.0;
        let svd = truncated_svd(&m, 2, SvdOptions::default()).unwrap();
        assert!((svd.singular_values[0] - 5.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn matches_full_eigendecomposition_of_gram() {
        let m = Matrix::from_vec(
            4,
            3,
            vec![1., 2., 0.5, -1., 0.3, 2., 0.7, -0.2, 1.1, 2.2, 0.4, -0.9],
        )
        .unwrap();
        let svd = truncated_svd(&m, 3, SvdOptions::default()).unwrap();
        let eig = crate::eigen::SymmetricEigen::new(&m.gram()).unwrap();
        for (s, l) in svd.singular_values.iter().zip(eig.values.iter()) {
            assert!((s * s - l).abs() < 1e-9, "σ²={} vs λ={}", s * s, l);
        }
    }

    #[test]
    fn triplets_satisfy_m_v_eq_sigma_u() {
        let m = Matrix::from_vec(
            5,
            4,
            vec![
                2., 0.1, 0.3, 1., 0.5, 1.5, -0.2, 0.8, 0.9, -1.1, 2.2, 0.4, 1.3, 0.6, -0.7, 1.8,
                0.2, 2.4, 1.0, -0.5,
            ],
        )
        .unwrap();
        let svd = truncated_svd(&m, 3, SvdOptions::default()).unwrap();
        for j in 0..3 {
            let vj = svd.v.col(j);
            let uj = svd.u.col(j);
            let mv = m.matvec(&vj).unwrap();
            let want: Vec<f64> = uj.iter().map(|x| x * svd.singular_values[j]).collect();
            assert!(max_abs_diff(&mv, &want) < 1e-8, "M v = σ u violated at {j}");
        }
        // Orthonormality of both factors.
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        assert!(utu.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let m = Matrix::from_vec(2, 4, vec![1., 0., 2., 0.5, 0., 3., -1., 0.2]).unwrap();
        let svd = truncated_svd(&m, 2, SvdOptions::default()).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (4, 2));
        let eig = crate::eigen::SymmetricEigen::new(&m.transpose().gram()).unwrap();
        for (s, l) in svd.singular_values.iter().zip(eig.values.iter()) {
            assert!((s * s - l).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_deficient_input_reports_zero_sigma() {
        // Rank-1 matrix: second singular value is 0 and its left vector
        // is pinned to zero rather than NaN.
        let m = Matrix::from_fn(4, 3, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let svd = truncated_svd(&m, 2, SvdOptions::default()).unwrap();
        assert!(svd.singular_values[0] > 1.0);
        assert!(svd.singular_values[1].abs() < 1e-8);
        assert!(svd.u.col(1).iter().all(|x| x.is_finite()));
        assert!(svd.v.col(1).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn sign_convention_is_fixed() {
        let m = Matrix::from_vec(3, 2, vec![2., 0.4, 0.1, 1.5, -0.3, 0.9]).unwrap();
        let a = truncated_svd(&m, 2, SvdOptions::default()).unwrap();
        let b = truncated_svd(&m, 2, SvdOptions::default()).unwrap();
        for j in 0..2 {
            let vj = a.v.col(j);
            let mut pivot = 0;
            for (i, x) in vj.iter().enumerate() {
                if x.abs() > vj[pivot].abs() {
                    pivot = i;
                }
            }
            assert!(vj[pivot] >= 0.0, "pivot entry must be non-negative");
            assert_eq!(a.v.col(j), b.v.col(j));
            assert_eq!(a.u.col(j), b.u.col(j));
        }
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(truncated_svd(&Matrix::zeros(0, 3), 1, SvdOptions::default()).is_err());
        assert!(truncated_svd(&Matrix::zeros(3, 3), 0, SvdOptions::default()).is_err());
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = f64::NAN;
        assert!(matches!(
            truncated_svd(&m, 1, SvdOptions::default()),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn exhausted_budget_errors_with_diagnostics() {
        let m = Matrix::from_vec(3, 2, vec![1., 0.5, 0.2, 2., 0.7, 0.1]).unwrap();
        let opts = SvdOptions {
            max_iterations: 1, // cannot even compare two Ritz snapshots
            ..SvdOptions::default()
        };
        assert!(matches!(
            truncated_svd(&m, 1, opts),
            Err(LinalgError::NoConvergence { .. })
        ));
    }
}
