//! Householder QR decomposition and least-squares solves.
//!
//! This backs the paper's linear-regression baseline (§V-A): each
//! performance metric is regressed on the raw query-plan features with
//! ordinary least squares, which — as the paper shows in Figs. 3 and 4 —
//! happily produces negative elapsed times.

// Triangular solves and centroid updates read most clearly with index
// loops; the iterator forms clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Compact Householder QR of an `m x n` matrix with `m >= n`.
///
/// Stores the `R` factor and the Householder reflectors needed to apply
/// `Qᵀ` to right-hand sides without materializing `Q`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Packed factorization: upper triangle holds R, lower part holds the
    /// reflector tails.
    qr: Matrix,
    /// Reflector scalars (beta values).
    betas: Vec<f64>,
}

impl QrDecomposition {
    /// Factorizes `a`. Requires `a.rows() >= a.cols()`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (needs rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = qr[(i, k)];
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Tail v[i] = qr[(i,k)] for i>k, head v0 stored implicitly.
            let vtv = v0 * v0 + (norm_sq - qr[(k, k)] * qr[(k, k)]);
            if vtv == 0.0 {
                betas[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            // Apply reflector to remaining columns.
            for j in (k + 1)..n {
                let mut s = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            qr[(k, k)] = alpha;
            // Store the tail scaled so the head is implicitly v0.
            betas[k] = beta;
            // Stash v0 by normalizing? Keep v0 in a side channel: encode by
            // storing tail as-is and remembering v0 via alpha recomputation.
            // Simpler: rescale tail so head becomes 1.
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= v0;
                }
                betas[k] = beta * v0 * v0;
            } else {
                betas[k] = 0.0;
            }
        }
        Ok(QrDecomposition { qr, betas })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = [1, qr[(k+1..m, k)]]
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= beta;
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Applies `Q` to a vector in place (reflectors in reverse order).
    fn apply_q(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in (0..n).rev() {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= beta;
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// The thin `Q` factor (`m x n`, orthonormal columns), materialized
    /// by applying the stored reflectors to the leading identity
    /// columns. Columns are orthonormal even when the factored matrix is
    /// rank deficient (each reflector — or identity, for a skipped
    /// zero-norm column — is orthogonal), which is what makes this a
    /// safe re-orthonormalization primitive for subspace iteration.
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        let mut e = vec![0.0; m];
        for j in 0..n {
            for v in e.iter_mut() {
                *v = 0.0;
            }
            e[j] = 1.0;
            self.apply_q(&mut e);
            for i in 0..m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Solves the least-squares problem `min ||a x - b||₂`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut work = b.to_vec();
        self.apply_qt(&mut work);
        // Back-substitute R x = (Qᵀ b)[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = work[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let r = self.qr[(i, i)];
            // Rank-deficient column: pin the coefficient at zero, mirroring
            // the behaviour the paper observed ("regression did not use all
            // of the covariates").
            x[i] = if r.abs() < 1e-12 { 0.0 } else { s / r };
        }
        Ok(x)
    }

    /// The `R` factor (upper triangular, `n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

/// Multi-target ordinary least squares: `X (n x p)` against `Y (n x t)`.
///
/// Fits one coefficient vector (plus intercept) per target column.
#[derive(Debug, Clone)]
pub struct LeastSquares {
    /// Coefficients, `(p + 1) x t`; row 0 is the intercept.
    coefficients: Matrix,
}

impl LeastSquares {
    /// Fits `Y ≈ [1 X] C` by QR.
    pub fn fit(x: &Matrix, y: &Matrix) -> Result<Self> {
        if x.rows() != y.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "least squares fit",
                lhs: x.shape(),
                rhs: y.shape(),
            });
        }
        if x.rows() == 0 {
            return Err(LinalgError::Empty("least squares design matrix"));
        }
        let design = with_intercept(x);
        let qr = QrDecomposition::new(&design)?;
        let p1 = design.cols();
        let mut coef = Matrix::zeros(p1, y.cols());
        for t in 0..y.cols() {
            let col = y.col(t);
            let beta = qr.solve(&col)?;
            for i in 0..p1 {
                coef[(i, t)] = beta[i];
            }
        }
        Ok(LeastSquares { coefficients: coef })
    }

    /// Predicts all targets for a single feature vector.
    pub fn predict(&self, features: &[f64]) -> Result<Vec<f64>> {
        let p1 = self.coefficients.rows();
        if features.len() + 1 != p1 {
            return Err(LinalgError::ShapeMismatch {
                op: "least squares predict",
                lhs: (p1, self.coefficients.cols()),
                rhs: (features.len(), 1),
            });
        }
        let t = self.coefficients.cols();
        let mut out = vec![0.0; t];
        for k in 0..t {
            let mut s = self.coefficients[(0, k)];
            for (j, &f) in features.iter().enumerate() {
                s += self.coefficients[(j + 1, k)] * f;
            }
            out[k] = s;
        }
        Ok(out)
    }

    /// Predicts all targets for every row of `x`.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(x.rows(), self.coefficients.cols());
        for i in 0..x.rows() {
            let row = self.predict(x.row(i))?;
            out.row_mut(i).copy_from_slice(&row);
        }
        Ok(out)
    }

    /// Fitted coefficients (row 0 is the intercept).
    pub fn coefficients(&self) -> &Matrix {
        &self.coefficients
    }
}

fn with_intercept(x: &Matrix) -> Matrix {
    let mut d = Matrix::zeros(x.rows(), x.cols() + 1);
    for i in 0..x.rows() {
        d[(i, 0)] = 1.0;
        d.row_mut(i)[1..].copy_from_slice(x.row(i));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_r_reconstructs_via_qtq() {
        // Verify least-squares residual orthogonality instead of forming Q:
        // solving Ax=b exactly for square invertible A.
        let a = Matrix::from_vec(3, 3, vec![2., 1., 0., 1., 3., 1., 0., 1., 4.]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let b = vec![3.0, 5.0, 9.0];
        let x = qr.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn overdetermined_least_squares() {
        // Fit y = 2x + 1 exactly from redundant rows.
        let a = Matrix::from_vec(4, 2, vec![1., 0., 1., 1., 1., 2., 1., 3.]).unwrap();
        let b = vec![1.0, 3.0, 5.0, 7.0];
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_column_pinned_to_zero() {
        // Third column is a duplicate; its coefficient should pin to 0
        // rather than blow up.
        let a =
            Matrix::from_vec(4, 3, vec![1., 0., 0., 1., 1., 1., 1., 2., 2., 1., 3., 3.]).unwrap();
        let b = vec![1.0, 3.0, 5.0, 7.0];
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        // Model must still fit the data.
        let fit = a.matvec(&x).unwrap();
        for (got, want) in fit.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn qr_rejects_wide() {
        assert!(QrDecomposition::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn thin_q_is_orthonormal_and_reconstructs() {
        let a =
            Matrix::from_vec(4, 3, vec![2., 1., 0.5, 1., 3., 1., 0., 1., 4., 1., 0., 2.]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let q = qr.thin_q();
        assert_eq!(q.shape(), (4, 3));
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-12);
        let rec = q.matmul(&qr.r()).unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn thin_q_stays_orthonormal_on_rank_deficient_input() {
        // Column 2 duplicates column 1: R gains a zero diagonal but Q's
        // columns must remain orthonormal for subspace iteration to
        // keep a valid basis.
        let a =
            Matrix::from_vec(4, 3, vec![1., 2., 2., 1., 0., 0., 1., 1., 1., 1., 3., 3.]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let q = qr.thin_q();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn least_squares_multi_target() {
        // Two targets: y1 = 3 + 2a - b, y2 = -1 + 0.5a
        let x = Matrix::from_vec(5, 2, vec![0., 0., 1., 0., 0., 1., 1., 1., 2., 2.]).unwrap();
        let mut y = Matrix::zeros(5, 2);
        for i in 0..5 {
            let (a, b) = (x[(i, 0)], x[(i, 1)]);
            y[(i, 0)] = 3.0 + 2.0 * a - b;
            y[(i, 1)] = -1.0 + 0.5 * a;
        }
        let ls = LeastSquares::fit(&x, &y).unwrap();
        let p = ls.predict(&[4.0, 2.0]).unwrap();
        assert!((p[0] - (3.0 + 8.0 - 2.0)).abs() < 1e-9);
        assert!((p[1] - (-1.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn least_squares_shape_errors() {
        let x = Matrix::zeros(3, 2);
        let y = Matrix::zeros(4, 1);
        assert!(LeastSquares::fit(&x, &y).is_err());
        let x = Matrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 2., 0.]).unwrap();
        let ls = LeastSquares::fit(&x, &Matrix::zeros(4, 1)).unwrap();
        assert!(ls.predict(&[1.0]).is_err()); // wrong feature arity
    }
}
