//! Cholesky factorization of symmetric positive-definite matrices.

// Triangular solves and centroid updates read most clearly with index
// loops; the iterator forms clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // dot of rows i and j of L up to column j
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a + jitter * I`, retrying with growing jitter until the
    /// factorization succeeds or `max_tries` is exhausted.
    ///
    /// Kernel Gram matrices are PSD but often numerically semi-definite;
    /// a tiny ridge restores definiteness without changing the solution
    /// meaningfully (the KCCA formulation regularizes anyway).
    pub fn with_jitter(a: &Matrix, mut jitter: f64, max_tries: usize) -> Result<Self> {
        match Cholesky::new(a) {
            Ok(c) => return Ok(c),
            Err(_) if max_tries > 0 => {}
            Err(e) => return Err(e),
        }
        let mut work = a.clone();
        for _ in 0..max_tries {
            work = a.clone();
            work.add_diagonal(jitter);
            if let Ok(c) = Cholesky::new(&work) {
                return Ok(c);
            }
            jitter *= 10.0;
        }
        // Final attempt reports the real failure.
        Cholesky::new(&work)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Consumes the decomposition, returning `L`.
    pub fn into_l(self) -> Matrix {
        self.l
    }

    /// Solves `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.forward_substitute(b)?;
        self.back_substitute(&y)
    }

    /// Solves `A X = B` column-wise.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Solves `L y = b` (forward substitution).
    pub fn forward_substitute(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "forward_substitute",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = b[i];
            for k in 0..i {
                s -= row[k] * y[k];
            }
            y[i] = s / row[i];
        }
        Ok(y)
    }

    /// Solves `Lᵀ x = y` (back substitution).
    pub fn back_substitute(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if y.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "back_substitute",
                lhs: (n, n),
                rhs: (y.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `L Y = B` column-wise (forward substitution on a matrix).
    ///
    /// This is the workhorse of the reduced KCCA eigensolve: forming
    /// `Lx⁻¹ Cxy` and `(Ly⁻¹ (Lx⁻¹ Cxy)ᵀ)ᵀ` without ever inverting.
    pub fn forward_substitute_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "forward_substitute_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let y = self.forward_substitute(&col)?;
            for i in 0..n {
                out[(i, j)] = y[i];
            }
        }
        Ok(out)
    }

    /// Solves `Lᵀ X = Y` column-wise (back substitution on a matrix).
    pub fn back_substitute_matrix(&self, y: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if y.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "back_substitute_matrix",
                lhs: (n, n),
                rhs: y.shape(),
            });
        }
        let mut out = Matrix::zeros(n, y.cols());
        for j in 0..y.cols() {
            let col = y.col(j);
            let x = self.back_substitute(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Log-determinant of `A` (`= 2 Σ ln L[i,i]`).
    pub fn log_det(&self) -> f64 {
        crate::vector::sum_iter((0..self.l.rows()).map(|i| self.l[(i, i)].ln())) * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a random-ish B is SPD; use a fixed instance.
        Matrix::from_vec(3, 3, vec![4., 2., 0.6, 2., 5., 1., 0.6, 1., 3.]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = c.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
        let a = Matrix::from_vec(2, 2, vec![1., 1., 1., 1.]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        let c = Cholesky::with_jitter(&a, 1e-10, 12).unwrap();
        assert!(c.l()[(0, 0)] > 0.0);
    }

    #[test]
    fn solve_matrix_identity() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let inv = c.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn matrix_substitution_matches_vector_solves() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]).unwrap();
        let fwd = c.forward_substitute_matrix(&b).unwrap();
        let back = c.back_substitute_matrix(&fwd).unwrap();
        for j in 0..2 {
            let col = b.col(j);
            let y = c.forward_substitute(&col).unwrap();
            let x = c.back_substitute(&y).unwrap();
            for i in 0..3 {
                assert_eq!(fwd[(i, j)].to_bits(), y[i].to_bits());
                assert_eq!(back[(i, j)].to_bits(), x[i].to_bits());
            }
        }
        // L Y = B and Lᵀ X = Y compose to A X = B.
        let ax = a.matmul(&back).unwrap();
        assert!(ax.sub(&b).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_vec(2, 2, vec![2., 0., 0., 8.]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }
}
