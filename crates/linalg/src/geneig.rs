//! Generalized symmetric-definite eigenproblem `A v = λ B v`.
//!
//! This is the computational heart of (K)CCA: the paper's Eq. (2) pairs a
//! symmetric block matrix `A` of cross-kernel products against a
//! block-diagonal, positive-definite `B` of regularized self-products.
//! We reduce to a standard symmetric problem with `B = L Lᵀ`:
//!
//! ```text
//! A v = λ B v   ⇔   (L⁻¹ A L⁻ᵀ) w = λ w,   v = L⁻ᵀ w
//! ```

use crate::cholesky::Cholesky;
use crate::eigen::SymmetricEigen;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Solution of `A v = λ B v` with symmetric `A` and SPD `B`.
///
/// Eigenvalues descend; eigenvectors are the columns of `vectors` and are
/// `B`-orthonormal (`vᵢᵀ B vⱼ = δᵢⱼ`).
#[derive(Debug, Clone)]
pub struct GeneralizedEigen {
    /// Generalized eigenvalues, descending.
    pub values: Vec<f64>,
    /// Generalized eigenvectors as columns.
    pub vectors: Matrix,
}

impl GeneralizedEigen {
    /// Solves the problem for symmetric `a` and symmetric positive-definite
    /// `b`. A small jitter is applied to `b` automatically if its Cholesky
    /// factorization stalls (kernel Gram matrices are routinely
    /// semi-definite in floating point).
    pub fn new(a: &Matrix, b: &Matrix) -> Result<Self> {
        if !a.is_square() || !b.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.shape() != b.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "generalized eigen",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        let scale = b.max_abs().max(1e-30);
        let chol = Cholesky::with_jitter(b, 1e-12 * scale, 10)?;

        // C = L⁻¹ A L⁻ᵀ, formed column by column:
        //   first solve L X = A (forward substitution on each column of A),
        //   then C = L⁻¹ (L⁻¹ Aᵀ)ᵀ exploiting symmetry of A.
        let n = a.rows();
        // X = L⁻¹ A  (apply forward substitution to each column of A)
        let mut x = Matrix::zeros(n, n);
        for j in 0..n {
            let col = a.col(j);
            let y = chol.forward_substitute(&col)?;
            for i in 0..n {
                x[(i, j)] = y[i];
            }
        }
        // C = X L⁻ᵀ = (L⁻¹ Xᵀ)ᵀ
        let xt = x.transpose();
        let mut c = Matrix::zeros(n, n);
        for j in 0..n {
            let col = xt.col(j);
            let y = chol.forward_substitute(&col)?;
            for i in 0..n {
                c[(j, i)] = y[i];
            }
        }
        c.symmetrize();

        let eig = SymmetricEigen::new(&c)?;
        // Back-transform: v = L⁻ᵀ w for each eigenvector column.
        let mut vectors = Matrix::zeros(n, n);
        for k in 0..n {
            let w = eig.vectors.col(k);
            let v = chol.back_substitute(&w)?;
            for i in 0..n {
                vectors[(i, k)] = v[i];
            }
        }
        Ok(GeneralizedEigen {
            values: eig.values,
            vectors,
        })
    }

    /// Returns the top-`k` eigenpairs as `(values, n x k vectors)`.
    pub fn top_k(&self, k: usize) -> (Vec<f64>, Matrix) {
        let k = k.min(self.values.len());
        (self.values[..k].to_vec(), self.vectors.take_cols(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_standard_when_b_is_identity() {
        let a = Matrix::from_vec(3, 3, vec![2., 1., 0., 1., 3., 1., 0., 1., 4.]).unwrap();
        let g = GeneralizedEigen::new(&a, &Matrix::identity(3)).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        for (gv, ev) in g.values.iter().zip(e.values.iter()) {
            assert!((gv - ev).abs() < 1e-9);
        }
    }

    #[test]
    fn satisfies_generalized_equation() {
        let a = Matrix::from_vec(3, 3, vec![1., 2., 0.5, 2., 0., 1., 0.5, 1., -1.]).unwrap();
        let b = Matrix::from_vec(3, 3, vec![4., 1., 0., 1., 3., 0.5, 0., 0.5, 2.]).unwrap();
        let g = GeneralizedEigen::new(&a, &b).unwrap();
        for k in 0..3 {
            let v = g.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            let bv = b.matvec(&v).unwrap();
            for i in 0..3 {
                assert!(
                    (av[i] - g.values[k] * bv[i]).abs() < 1e-8,
                    "residual too large at ({k},{i})"
                );
            }
        }
    }

    #[test]
    fn vectors_b_orthonormal() {
        let a = Matrix::from_vec(2, 2, vec![1., 0.3, 0.3, 2.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![2., 0.1, 0.1, 1.]).unwrap();
        let g = GeneralizedEigen::new(&a, &b).unwrap();
        let vt_b_v = g
            .vectors
            .transpose()
            .matmul(&b)
            .unwrap()
            .matmul(&g.vectors)
            .unwrap();
        assert!(vt_b_v.sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        assert!(GeneralizedEigen::new(&a, &b).is_err());
    }
}
