//! Borrowed matrix views: the zero-copy currency of the data plane.
//!
//! A [`MatrixView`] is a `(rows, cols)` shape over a borrowed contiguous
//! row-major `&[f64]` — exactly the layout of [`Matrix`], without the
//! ownership. Crate boundaries on the predict path (feature extraction,
//! kernel rows, KCCA projection, kNN probes, serve micro-batches) accept
//! views, so callers hand over one contiguous allocation instead of
//! copying rows through nested per-row vectors.
//!
//! Views are `Copy`; passing one is two words plus a pointer. The
//! borrow checker ties a view's lifetime to its backing storage, so a
//! view can never outlive the matrix (or slice) it was taken from.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use std::ops::Index;

/// An immutable, row-major view over borrowed contiguous storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Creates a view of `rows x cols` over `data`.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matrix view",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(MatrixView { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the view has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Borrow of row `i` as a slice (lives as long as the backing data,
    /// not the view).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> std::slice::ChunksExact<'a, f64> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Owned copy of the viewed data.
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        out.as_mut_slice().copy_from_slice(self.data);
        out
    }

    /// Owned matrix keeping only the listed rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }
}

impl Index<(usize, usize)> for MatrixView<'_> {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

/// A mutable, row-major view over borrowed contiguous storage — used to
/// fill rows of a preallocated matrix in place (feature extraction,
/// batch standardization) without intermediate row vectors.
#[derive(Debug, PartialEq)]
pub struct MatrixViewMut<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f64],
}

impl<'a> MatrixViewMut<'a> {
    /// Creates a mutable view of `rows x cols` over `data`.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a mut [f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matrix view mut",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(MatrixViewMut { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Reborrows as an immutable view.
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            data: self.data,
        }
    }
}

impl Matrix {
    /// Borrowed zero-copy view over the whole matrix.
    #[inline]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows(),
            cols: self.cols(),
            data: self.as_slice(),
        }
    }

    /// Borrowed mutable view over the whole matrix.
    #[inline]
    pub fn view_mut(&mut self) -> MatrixViewMut<'_> {
        let (rows, cols) = self.shape();
        MatrixViewMut {
            rows,
            cols,
            data: self.as_mut_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_shares_storage_with_matrix() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = m.view();
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.row(1), &[4., 5., 6.]);
        assert_eq!(v[(0, 2)], 3.0);
        assert!(std::ptr::eq(v.as_slice().as_ptr(), m.as_slice().as_ptr()));
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn view_from_slice_is_shape_checked() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!(MatrixView::new(2, 2, &data).is_ok());
        assert!(MatrixView::new(2, 3, &data).is_err());
    }

    #[test]
    fn row_iter_walks_rows_in_order() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let rows: Vec<&[f64]> = m.view().row_iter().collect();
        assert_eq!(rows, vec![&[1., 2.][..], &[3., 4.][..], &[5., 6.][..]]);
    }

    #[test]
    fn select_rows_matches_matrix_select() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.view().select_rows(&[2, 0]), m.select_rows(&[2, 0]));
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        {
            let mut vm = m.view_mut();
            vm.row_mut(1).copy_from_slice(&[7.0, 8.0]);
            assert_eq!(vm.row(1), &[7.0, 8.0]);
            assert_eq!(vm.as_view().row(0), &[0.0, 0.0]);
        }
        assert_eq!(m.row(1), &[7.0, 8.0]);
    }

    #[test]
    fn row_lifetime_outlives_view() {
        // `row` borrows from the backing storage, not the view value.
        let m = Matrix::from_vec(1, 2, vec![9.0, 10.0]).unwrap();
        let row = { m.view().row(0) };
        assert_eq!(row, &[9.0, 10.0]);
    }
}
