//! Dense linear algebra substrate for the `qpp` workspace.
//!
//! The ICDE 2009 reproduction needs a small but complete set of dense
//! routines — none of the heavyweight BLAS/LAPACK bindings are available
//! offline, and the matrices involved (kernel factors of a few hundred
//! columns, 6-wide performance blocks) are comfortably in scratch-math
//! territory. Everything here is pure safe Rust over row-major `f64`
//! storage.
//!
//! Provided:
//!
//! * [`Matrix`] — row-major dense matrix with arithmetic, transpose,
//!   slicing and block helpers.
//! * [`cholesky`] — Cholesky factorization / SPD solves with optional
//!   jitter for nearly-singular Gram matrices.
//! * [`icd`] — pivoted *incomplete* Cholesky over a lazily evaluated Gram
//!   oracle; the scalable KCCA factorization of Bach & Jordan.
//! * [`qr`] — Householder QR and least-squares solves (the linear
//!   regression baseline of the paper's §V-A).
//! * [`eigen`] — cyclic-Jacobi symmetric eigendecomposition.
//! * [`geneig`] — generalized symmetric-definite eigenproblem
//!   `A v = λ B v` via Cholesky reduction (the KCCA core, §VI-A).
//! * [`svd`] — truncated SVD via deterministic blocked subspace
//!   iteration; the top-p eigensolver behind the scalable CCA path.
//! * [`stats`] — means, variances, standardization helpers.
//! * [`view`] — borrowed zero-copy [`MatrixView`] / [`MatrixViewMut`]
//!   over contiguous row-major storage, the currency of the predict
//!   path's crate boundaries.

// Library code must degrade into typed errors, never panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod geneig;
pub mod icd;
pub mod matrix;
pub mod qr;
pub mod stats;
pub mod svd;
pub mod vector;
pub mod view;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::{LinalgError, Result};
pub use geneig::GeneralizedEigen;
pub use icd::{IcdOptions, IncompleteCholesky};
pub use matrix::Matrix;
pub use qr::{LeastSquares, QrDecomposition};
pub use svd::{truncated_svd, SvdOptions, TruncatedSvd};
pub use view::{MatrixView, MatrixViewMut};
