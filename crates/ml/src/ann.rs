//! Sub-linear approximate-nearest-neighbor index (IVF).
//!
//! The paper's prediction step (§VI-B) is a kNN lookup in KCCA
//! projection space; at paper scale (~1000 training points) a linear
//! scan is unbeatable, but once the fast training path feeds 100k+-row
//! reference sets, predict latency goes linear in N. The classic fix is
//! an inverted-file (IVF) index: partition the reference rows with
//! k-means into `nlist` cells, and at query time scan only the lists of
//! the `nprobe` nearest centroids.
//!
//! Determinism, the property everything else in this workspace hinges
//! on, is preserved end to end:
//!
//! * the coarse quantizer is [`KMeans::fit`] under a fixed seed on a
//!   deterministic stride sample, so the partition is bitwise
//!   reproducible;
//! * row-to-list assignment is a pure per-row function of the frozen
//!   centroids, fanned out with [`qpp_par::parallel_for_chunks`] and
//!   merged in chunk order — thread-count invariant;
//! * inverted lists store row ids in ascending order, each probed list
//!   is rescanned with the same finite-filtered `push_top_k` selection
//!   the brute scan uses, and lists merge by `(distance, index)` —
//!   identical tie-breaking to the serial scan.
//!
//! The rescan is *exact* over the probed cells, so whenever those cells
//! cover the true top-k (always, when `nprobe == nlist`), results are
//! bitwise identical to [`NearestNeighbors::query`] — neighbors,
//! distances, and tie-breaks. With the default `nprobe`, recall is
//! governed by the probe width: raising `nprobe` buys recall linearly
//! in scan cost, `nprobe == nlist` degenerates to an exact
//! (list-partitioned) scan. `tests/ann_equivalence.rs` pins both modes.
//!
//! [`AnnIndex`] wraps the size-triggered switch: small references keep
//! the brute [`NearestNeighbors`] scan (faster below a few thousand
//! rows, and the correctness oracle above), large ones build the IVF
//! structure.

use crate::kmeans::KMeans;
use crate::knn::{
    combine_neighbors, merge_top_k_into, push_top_k, DistanceMetric, KnnError, KnnScratch,
    NearestNeighbors, Neighbor, NeighborWeighting,
};
use qpp_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Target mean inverted-list length when `nlist` is auto-sized.
///
/// Query cost is ~`nlist + nprobe * list_len` distances; a *fixed*
/// list length keeps the probed-row term constant as N grows (the
/// centroid term grows, but is capped by [`MAX_NLIST`]), which is what
/// keeps the p99-vs-N curve flat. The textbook `sqrt(N)` sizing makes
/// both terms grow as `sqrt(N)` — 10x from 1k to 100k rows — and would
/// fail the `knn_sweep` flatness gate.
const TARGET_LIST_LEN: usize = 128;

/// Upper bound on the auto-sized `nlist`: past this, the centroid scan
/// itself would start to dominate.
const MAX_NLIST: usize = 4096;

/// Build-time options for [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IvfOptions {
    /// Number of k-means cells; `0` auto-sizes to
    /// `clamp(rows / 128, 1, 4096)` (see [`TARGET_LIST_LEN`]).
    pub nlist: usize,
    /// Probed cells per query; clamped to `[1, nlist]` at build time.
    /// `nprobe == nlist` makes the index exact.
    pub nprobe: usize,
    /// Seed for the k-means coarse quantizer — fixes the partition, and
    /// with it every query result, bitwise. Keep within `2^53` so the
    /// value survives the JSON number round-trip exactly.
    pub seed: u64,
    /// Lloyd iterations for the quantizer. The partition only has to be
    /// balanced, not converged; a handful of rounds is plenty.
    pub max_iters: usize,
    /// Quantizer training-sample cap: the k-means runs on an
    /// every-`stride`-th-row sample of at most this many rows (never
    /// fewer than `nlist`), then all rows are assigned in one parallel
    /// pass. Keeps build time bounded for million-row references.
    pub train_sample_cap: usize,
}

impl Default for IvfOptions {
    fn default() -> Self {
        IvfOptions {
            nlist: 0,
            nprobe: 8,
            seed: 0x1CDE_2009,
            max_iters: 5,
            train_sample_cap: 32_768,
        }
    }
}

/// Inverted-file index: k-means centroids plus CSR inverted lists.
///
/// `offsets` has `nlist + 1` entries; list `c` occupies positions
/// `offsets[c]..offsets[c + 1]`, original row ids (`ids`, ascending
/// within each list by construction) side by side with a *packed* copy
/// of the reference whose row `p` is the original row `ids[p]`. Packing
/// is what makes the rescan sub-linear in practice, not just in
/// distance count: each probed list is one sequential strip of memory,
/// where gathering rows from the original matrix order costs a cache
/// miss per row once the reference outgrows the LLC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfIndex {
    packed: Matrix,
    metric: DistanceMetric,
    centroids: Matrix,
    offsets: Vec<usize>,
    ids: Vec<usize>,
    nprobe: usize,
}

impl IvfIndex {
    /// Builds the index: quantize a deterministic sample, assign every
    /// row to its nearest centroid in parallel, lay the lists out in
    /// CSR form.
    ///
    /// Fails with [`KnnError::IndexBuild`] when the quantizer cannot be
    /// trained (degenerate `nlist` for the reference size, or no fully
    /// finite row to seed from).
    pub fn build(
        reference: Matrix,
        metric: DistanceMetric,
        options: IvfOptions,
    ) -> Result<IvfIndex, KnnError> {
        let n = reference.rows();
        if n == 0 {
            return Err(KnnError::EmptyReference);
        }
        let nlist = if options.nlist > 0 {
            options.nlist.min(n)
        } else {
            (n / TARGET_LIST_LEN).clamp(1, MAX_NLIST)
        };
        let nprobe = options.nprobe.clamp(1, nlist);

        // Deterministic stride sample for the quantizer; assignment
        // below still covers every row.
        let sample_len = options.train_sample_cap.max(nlist).min(n);
        let stride = n / sample_len;
        let sample_ids: Vec<usize> = (0..sample_len).map(|i| i * stride).collect();
        let sample = reference.select_rows(&sample_ids);
        let km = KMeans::fit(&sample, nlist, options.seed, options.max_iters)?;
        let centroids = km.centroids;

        // Per-row assignment is a pure function of the frozen centroids,
        // so the chunk fan-out is thread-count invariant; chunks come
        // back in index order. Rows with non-finite components land in
        // whatever cell the NaN comparison chain leaves them (cluster 0)
        // — harmless, since the query-time rescan skips them the same
        // way the brute scan does.
        let assign_chunks = qpp_par::parallel_for_chunks(n, 4096, |chunk| {
            let mut cells = Vec::with_capacity(chunk.range.len());
            for i in chunk.range.clone() {
                let mut best = (0usize, f64::INFINITY);
                for c in 0..centroids.rows() {
                    let d = qpp_linalg::vector::sq_dist(reference.row(i), centroids.row(c));
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                cells.push(best.0);
            }
            cells
        });

        // CSR layout: count, prefix-sum, then place ids in ascending row
        // order so each list inherits the scan's tie-break order.
        let mut offsets = vec![0usize; nlist + 1];
        for cells in &assign_chunks {
            for &c in cells {
                offsets[c + 1] += 1;
            }
        }
        for c in 0..nlist {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor = offsets.clone();
        let mut ids = vec![0usize; n];
        let mut row = 0usize;
        for cells in &assign_chunks {
            for &c in cells {
                ids[cursor[c]] = row;
                cursor[c] += 1;
                row += 1;
            }
        }

        // Pack the reference rows into list order: one contiguous strip
        // per inverted list, so the query-time rescan streams memory
        // sequentially instead of gathering scattered rows.
        let packed = reference.select_rows(&ids);
        Ok(IvfIndex {
            packed,
            metric,
            centroids,
            offsets,
            ids,
            nprobe,
        })
    }

    /// Number of reference points.
    pub fn len(&self) -> usize {
        self.packed.rows()
    }

    /// True when the index is empty (never, post-build — `build`
    /// rejects empty references — but kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.packed.rows() == 0
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Lists probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// The coarse-quantizer centroids (one row per list).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Row ids of inverted list `c`, ascending.
    pub fn list(&self, c: usize) -> &[usize] {
        &self.ids[self.offsets[c]..self.offsets[c + 1]]
    }

    /// The distance metric this index was built with.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The `k` nearest neighbors of `probe` among the probed cells,
    /// ascending by `(distance, index)` — allocating convenience over
    /// [`IvfIndex::query_into`].
    pub fn query(&self, probe: &[f64], k: usize) -> Vec<Neighbor> {
        let mut scratch = KnnScratch::new();
        self.query_into(probe, k, &mut scratch);
        scratch.neighbors
    }

    /// Probe + rescan + merge, writing neighbors into
    /// `scratch.neighbors`. With warm scratch buffers (the per-list pool
    /// is grow-only) this performs no heap allocation.
    ///
    /// A probe at a non-finite distance from every centroid (e.g. a NaN
    /// component) probes nothing and yields no neighbors — the same
    /// outcome the brute scan's finite filter produces.
    // qpp-lint: hot-path
    pub fn query_into(&self, probe: &[f64], k: usize, scratch: &mut KnnScratch) {
        let KnnScratch {
            neighbors,
            probed,
            lists,
            heads,
            ..
        } = scratch;
        neighbors.clear();
        let k = k.min(self.packed.rows());
        if k == 0 {
            return;
        }
        // 1. Coarse probe: top-nprobe centroids by (distance, index).
        probed.clear();
        for c in 0..self.centroids.rows() {
            let d = self.metric.distance(probe, self.centroids.row(c));
            push_top_k(probed, self.nprobe, c, d);
        }
        // 2. Exact rescan of each probed list into its own top-k buffer
        //    — a sequential sweep over that list's packed strip,
        //    reporting original row ids (ascending within the list, so
        //    tie-breaks match the serial scan).
        if lists.len() < probed.len() {
            lists.resize_with(probed.len(), Default::default);
        }
        for (li, pc) in probed.iter().enumerate() {
            let list = &mut lists[li];
            list.clear();
            for p in self.offsets[pc.index]..self.offsets[pc.index + 1] {
                let d = self.metric.distance(probe, self.packed.row(p));
                push_top_k(list, k, self.ids[p], d);
            }
        }
        // 3. Ordered merge, identical tie-breaking to the serial scan.
        merge_top_k_into(&lists[..probed.len()], k, heads, neighbors);
    }

    /// Predicts a target vector for `probe` — allocating convenience
    /// over [`IvfIndex::predict_into`], mirroring
    /// [`NearestNeighbors::predict`].
    pub fn predict(
        &self,
        probe: &[f64],
        targets: &Matrix,
        k: usize,
        weighting: NeighborWeighting,
    ) -> Result<(Vec<f64>, Vec<Neighbor>), KnnError> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::with_capacity(targets.cols());
        self.predict_into(probe, targets, k, weighting, &mut scratch, &mut out)?;
        Ok((out, scratch.neighbors))
    }

    /// Like [`IvfIndex::predict`], writing into reusable buffers; the
    /// combination tail is shared with the brute path, so predictions
    /// agree bitwise whenever the neighbor sets do.
    // qpp-lint: hot-path
    pub fn predict_into(
        &self,
        probe: &[f64],
        targets: &Matrix,
        k: usize,
        weighting: NeighborWeighting,
        scratch: &mut KnnScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), KnnError> {
        if targets.rows() != self.len() {
            return Err(KnnError::TargetMismatch {
                targets: targets.rows(),
                reference: self.len(),
            });
        }
        if self.is_empty() {
            return Err(KnnError::EmptyReference);
        }
        self.query_into(probe, k, scratch);
        if scratch.neighbors.is_empty() {
            return Err(KnnError::NoFiniteNeighbors);
        }
        combine_neighbors(
            targets,
            &scratch.neighbors,
            weighting,
            &mut scratch.weights,
            out,
        );
        Ok(())
    }
}

/// Options for the size-triggered [`AnnIndex`] switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnOptions {
    /// References with at most this many rows keep the brute scan; the
    /// default matches the point where one IVF probe's work (centroid
    /// scan + `nprobe` lists) undercuts a full scan with margin.
    pub ivf_threshold: usize,
    /// IVF build parameters used past the threshold.
    pub ivf: IvfOptions,
}

impl Default for AnnOptions {
    fn default() -> Self {
        AnnOptions {
            ivf_threshold: 4096,
            ivf: IvfOptions::default(),
        }
    }
}

/// Neighbor index behind [`KccaPredictor`](qpp_core): brute-force below
/// the size threshold, IVF above it. Both arms share the selection,
/// merge, and combination code, so switching arms never changes
/// tie-breaking — only how many rows get scanned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnnIndex {
    /// Exact linear scan ([`NearestNeighbors`]) — small references, and
    /// the correctness oracle for the IVF arm.
    Brute {
        /// The wrapped scan.
        scan: NearestNeighbors,
    },
    /// Inverted-file index for large references.
    Ivf {
        /// The wrapped index.
        ivf: IvfIndex,
    },
}

impl AnnIndex {
    /// Builds the right arm for the reference size: brute at or below
    /// `options.ivf_threshold` rows, IVF above it.
    pub fn build(
        reference: Matrix,
        metric: DistanceMetric,
        options: &AnnOptions,
    ) -> Result<AnnIndex, KnnError> {
        if reference.rows() <= options.ivf_threshold {
            Ok(AnnIndex::Brute {
                scan: NearestNeighbors::new(reference, metric),
            })
        } else {
            Ok(AnnIndex::Ivf {
                ivf: IvfIndex::build(reference, metric, options.ivf)?,
            })
        }
    }

    /// Number of reference points.
    pub fn len(&self) -> usize {
        match self {
            AnnIndex::Brute { scan } => scan.len(),
            AnnIndex::Ivf { ivf } => ivf.len(),
        }
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the IVF arm is active.
    pub fn is_ivf(&self) -> bool {
        matches!(self, AnnIndex::Ivf { .. })
    }

    /// The `k` nearest neighbors of `probe`, ascending by
    /// `(distance, index)`.
    pub fn query(&self, probe: &[f64], k: usize) -> Vec<Neighbor> {
        match self {
            AnnIndex::Brute { scan } => scan.query(probe, k),
            AnnIndex::Ivf { ivf } => ivf.query(probe, k),
        }
    }

    /// Like [`AnnIndex::query`], writing into `scratch.neighbors`.
    // qpp-lint: hot-path
    pub fn query_into(&self, probe: &[f64], k: usize, scratch: &mut KnnScratch) {
        match self {
            AnnIndex::Brute { scan } => scan.query_into(probe, k, &mut scratch.neighbors),
            AnnIndex::Ivf { ivf } => ivf.query_into(probe, k, scratch),
        }
    }

    /// Predicts a target vector for `probe` (allocating convenience).
    pub fn predict(
        &self,
        probe: &[f64],
        targets: &Matrix,
        k: usize,
        weighting: NeighborWeighting,
    ) -> Result<(Vec<f64>, Vec<Neighbor>), KnnError> {
        match self {
            AnnIndex::Brute { scan } => scan.predict(probe, targets, k, weighting),
            AnnIndex::Ivf { ivf } => ivf.predict(probe, targets, k, weighting),
        }
    }

    /// Like [`AnnIndex::predict`], writing into reusable buffers —
    /// alloc-free with warm scratch on both arms.
    // qpp-lint: hot-path
    pub fn predict_into(
        &self,
        probe: &[f64],
        targets: &Matrix,
        k: usize,
        weighting: NeighborWeighting,
        scratch: &mut KnnScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), KnnError> {
        match self {
            AnnIndex::Brute { scan } => {
                scan.predict_into(probe, targets, k, weighting, scratch, out)
            }
            AnnIndex::Ivf { ivf } => ivf.predict_into(probe, targets, k, weighting, scratch, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansError;

    fn grid(n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = // allow-vecvec: test fixture
            (0..n)
            .map(|i| vec![(i % 71) as f64, ((i * 13) % 67) as f64])
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn auto_switch_picks_arm_by_size() {
        let opts = AnnOptions {
            ivf_threshold: 100,
            ..AnnOptions::default()
        };
        let small = AnnIndex::build(grid(100), DistanceMetric::Euclidean, &opts).unwrap();
        assert!(!small.is_ivf());
        let big = AnnIndex::build(grid(101), DistanceMetric::Euclidean, &opts).unwrap();
        assert!(big.is_ivf());
        assert_eq!(big.len(), 101);
    }

    #[test]
    fn csr_lists_partition_all_rows_ascending() {
        let ivf =
            IvfIndex::build(grid(2000), DistanceMetric::Euclidean, IvfOptions::default()).unwrap();
        let mut seen = vec![false; 2000];
        for c in 0..ivf.nlist() {
            let list = ivf.list(c);
            for w in list.windows(2) {
                assert!(w[0] < w[1], "list {c} not ascending: {list:?}");
            }
            for &i in list {
                assert!(!seen[i], "row {i} in two lists");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some row missing from every list");
    }

    #[test]
    fn auto_sized_nlist_targets_fixed_list_length() {
        let ivf =
            IvfIndex::build(grid(2000), DistanceMetric::Euclidean, IvfOptions::default()).unwrap();
        assert_eq!(ivf.nlist(), 2000 / 128);
        assert_eq!(ivf.nprobe(), 8);
    }

    #[test]
    fn exhaustive_probe_matches_brute_bitwise() {
        let data = grid(3000);
        let nn = NearestNeighbors::new(data.clone(), DistanceMetric::Euclidean);
        let ivf = IvfIndex::build(
            data,
            DistanceMetric::Euclidean,
            IvfOptions {
                nlist: 16,
                nprobe: 16,
                ..IvfOptions::default()
            },
        )
        .unwrap();
        for probe in [[3.0, 4.0], [70.0, 0.0], [35.5, 33.25]] {
            let brute = nn.query(&probe, 7);
            let approx = ivf.query(&probe, 7);
            assert_eq!(brute.len(), approx.len());
            for (b, a) in brute.iter().zip(approx.iter()) {
                assert_eq!(b.index, a.index);
                assert_eq!(b.distance.to_bits(), a.distance.to_bits());
            }
        }
    }

    #[test]
    fn empty_reference_is_rejected() {
        assert_eq!(
            IvfIndex::build(
                Matrix::zeros(0, 2),
                DistanceMetric::Euclidean,
                IvfOptions::default()
            )
            .map(|_| ()),
            Err(KnnError::EmptyReference)
        );
    }

    #[test]
    fn all_corrupt_reference_maps_to_index_build_error() {
        let data = Matrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, f64::INFINITY]]).unwrap();
        assert_eq!(
            IvfIndex::build(data, DistanceMetric::Euclidean, IvfOptions::default()).map(|_| ()),
            Err(KnnError::IndexBuild(KMeansError::NoFiniteRows))
        );
    }

    #[test]
    fn nan_probe_yields_no_neighbors() {
        let ivf =
            IvfIndex::build(grid(1000), DistanceMetric::Euclidean, IvfOptions::default()).unwrap();
        assert!(ivf.query(&[f64::NAN, 0.0], 3).is_empty());
    }
}
