//! Kernel Canonical Correlation Analysis (the paper's §VI).
//!
//! Pipeline:
//!
//! 1. Gaussian kernels over the query-feature and performance-feature
//!    vectors, with scales set to fixed fractions (0.1 / 0.2) of the
//!    empirical variance of the data norms — the paper's heuristic.
//! 2. Pivoted incomplete Cholesky `K ≈ G Gᵀ` on each side (Bach &
//!    Jordan); run to full rank with zero tolerance this is exact, with
//!    a rank cap it is the standard scalable approximation.
//! 3. Regularized linear CCA on the embeddings `Gx`, `Gy` — equivalent
//!    to the kernelized generalized eigenproblem of the paper's Eq. (2)
//!    restricted to the span of the pivots.
//!
//! The result is a pair of maximally correlated projections: `Kx A`
//! ("query projection") and `Ky B` ("performance projection"). New
//! queries are projected by evaluating the kernel against the pivot
//! points only.

use crate::cca::{Cca, CcaOptions};
use crate::kernel::GaussianKernel;
use qpp_linalg::{vector, IcdOptions, IncompleteCholesky, LinalgError, Matrix, MatrixView};
use serde::{Deserialize, Serialize};

/// Options for [`Kcca::fit`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KccaOptions {
    /// Gaussian scale fraction for the query side, relative to the mean
    /// pairwise squared distance (see [`GaussianKernel::fit`]). The
    /// paper used 0.1 of the norm variance on raw vectors; the 1:2
    /// query:performance ratio is preserved here.
    pub x_kernel_fraction: f64,
    /// Gaussian scale fraction for the performance side.
    pub y_kernel_fraction: f64,
    /// Canonical components to keep.
    pub components: usize,
    /// CCA ridge regularization.
    pub regularization: f64,
    /// Incomplete-Cholesky rank cap (per side).
    pub max_rank: usize,
    /// Incomplete-Cholesky relative tolerance.
    pub icd_tolerance: f64,
}

impl Default for KccaOptions {
    fn default() -> Self {
        KccaOptions {
            x_kernel_fraction: 0.25,
            y_kernel_fraction: 0.5,
            components: 16,
            regularization: 1e-3,
            max_rank: 256,
            icd_tolerance: 1e-6,
        }
    }
}

/// A fitted KCCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kcca {
    x_kernel: GaussianKernel,
    y_kernel: GaussianKernel,
    /// Query-side pivot points (rows of the training X at ICD pivots).
    x_pivots: Matrix,
    x_icd: IncompleteCholesky,
    cca: Cca,
    /// Training query projection `Kx A` (one row per training point).
    x_projection: Matrix,
    /// Training performance projection `Ky B`.
    y_projection: Matrix,
}

impl Kcca {
    /// Fits KCCA on paired rows of `x` (query features) and `y`
    /// (performance features). Both sides are borrowed views over
    /// contiguous storage; nothing is copied until the pivot rows are
    /// extracted.
    pub fn fit(
        x: MatrixView<'_>,
        y: MatrixView<'_>,
        opts: KccaOptions,
    ) -> Result<Kcca, LinalgError> {
        if x.rows() != y.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "kcca fit",
                lhs: x.shape(),
                rhs: y.shape(),
            });
        }
        let n = x.rows();
        if n < 4 {
            return Err(LinalgError::Empty("kcca needs >= 4 rows"));
        }
        // Stage spans (kernel fit / ICD / eigensolve) feed the training
        // breakdown in `qpp_obs::recorder().stage_summary()`. Kernel
        // *entries* are evaluated lazily inside the ICD factorization,
        // so their cost lands in the ICD span by construction.
        let (x_kernel, y_kernel) = {
            let _s = qpp_obs::span(qpp_obs::Stage::TrainKernel);
            (
                GaussianKernel::fit(x, opts.x_kernel_fraction),
                GaussianKernel::fit(y, opts.y_kernel_fraction),
            )
        };

        let icd_opts = IcdOptions {
            max_rank: opts.max_rank,
            relative_tolerance: opts.icd_tolerance,
        };
        let (x_icd, y_icd) = {
            let mut s = qpp_obs::span(qpp_obs::Stage::TrainIcd);
            s.set_value(n as u64);
            let x_icd =
                IncompleteCholesky::factor(n, |i, j| x_kernel.eval(x.row(i), x.row(j)), icd_opts)?;
            let y_icd =
                IncompleteCholesky::factor(n, |i, j| y_kernel.eval(y.row(i), y.row(j)), icd_opts)?;
            (x_icd, y_icd)
        };

        let cca = {
            let _s = qpp_obs::span(qpp_obs::Stage::TrainEigensolve);
            Cca::fit(
                x_icd.g(),
                y_icd.g(),
                CcaOptions {
                    components: opts.components,
                    regularization: opts.regularization,
                    ..CcaOptions::default()
                },
            )?
        };
        let x_projection = cca.project_x_matrix(x_icd.g());
        let y_projection = cca.project_y_matrix(y_icd.g());
        let x_pivots = x.select_rows(x_icd.pivots());
        Ok(Kcca {
            x_kernel,
            y_kernel,
            x_pivots,
            x_icd,
            cca,
            x_projection,
            y_projection,
        })
    }

    /// The training query projection `Kx A` (`n x components`).
    pub fn query_projection(&self) -> &Matrix {
        &self.x_projection
    }

    /// The training performance projection `Ky B` (`n x components`).
    pub fn performance_projection(&self) -> &Matrix {
        &self.y_projection
    }

    /// Canonical correlations achieved on the training set.
    pub fn correlations(&self) -> &[f64] {
        &self.cca.correlations
    }

    /// Number of canonical components.
    pub fn components(&self) -> usize {
        self.cca.components()
    }

    /// Achieved incomplete-Cholesky rank on the query side.
    pub fn x_rank(&self) -> usize {
        self.x_icd.rank()
    }

    /// The fitted query-side kernel.
    pub fn x_kernel(&self) -> GaussianKernel {
        self.x_kernel
    }

    /// The fitted performance-side kernel.
    pub fn y_kernel(&self) -> GaussianKernel {
        self.y_kernel
    }

    /// Projects a *new* query feature vector into the query projection
    /// space (paper Fig. 7, step 1).
    pub fn project_query(&self, features: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Ok(self.project_query_with_similarity(features)?.0)
    }

    /// Like [`Kcca::project_query`], additionally returning the largest
    /// kernel evaluation against the pivot points.
    ///
    /// A value near zero means the query is unlike *everything* in the
    /// training set: its kernel row vanishes and the projection
    /// collapses toward a fixed point, so neighbor distances alone can
    /// no longer flag it as anomalous. Callers should treat low
    /// similarity as low prediction confidence.
    pub fn project_query_with_similarity(
        &self,
        features: &[f64],
    ) -> Result<(Vec<f64>, f64), LinalgError> {
        // One pipeline, two entry points: the owned path is just the
        // `_into` path with cold buffers, so the kernel-row/similarity/
        // ICD steps can never drift apart again (they used to be
        // hand-duplicated here).
        let mut scratch = ProjectionScratch::new();
        let mut out = Vec::with_capacity(self.components());
        let similarity = self.project_query_into(features, &mut scratch, &mut out)?;
        Ok((out, similarity))
    }

    /// Projects a batch of query feature vectors (one per row of the
    /// view), amortizing the kernel-row and embedding buffers across
    /// queries within a chunk.
    ///
    /// Row `i` of the result is exactly what
    /// [`Kcca::project_query_with_similarity`] returns for `rows.row(i)`
    /// — per-row work is independent and runs the identical per-row
    /// floating-point operations in the identical order, so results are
    /// bitwise equal to single-query projection for any thread count.
    /// Chunks of 16 queries fan out across the `qpp-par` pool (the
    /// qpp-serve micro-batch path and the experiment hot loops).
    pub fn project_queries_with_similarity(
        &self,
        rows: MatrixView<'_>,
    ) -> Result<Vec<(Vec<f64>, f64)>, LinalgError> {
        let per_chunk = qpp_par::parallel_for_chunks(rows.rows(), 16, |chunk| {
            let mut scratch = ProjectionScratch::new();
            chunk
                .range
                .map(|i| {
                    let mut out = Vec::with_capacity(self.components());
                    let similarity =
                        self.project_query_into(rows.row(i), &mut scratch, &mut out)?;
                    Ok((out, similarity))
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Projects a query into a reusable output buffer, returning the
    /// largest kernel evaluation against the pivots. `scratch` holds the
    /// kernel-row and ICD-embedding buffers; once all three buffers have
    /// warmed up to the model's dimensions, this performs no heap
    /// allocation. Bitwise equal to
    /// [`Kcca::project_query_with_similarity`].
    // qpp-lint: hot-path
    pub fn project_query_into(
        &self,
        features: &[f64],
        scratch: &mut ProjectionScratch,
        out: &mut Vec<f64>,
    ) -> Result<f64, LinalgError> {
        scratch.k_row.clear();
        scratch.k_row.extend(
            self.x_pivots
                .row_iter()
                .map(|p| self.x_kernel.eval(features, p)),
        );
        let similarity = vector::max_iter(0.0, scratch.k_row.iter().copied());
        self.x_icd
            .transform_new_into(&scratch.k_row, &mut scratch.embedded)?;
        self.cca.project_x_into(&scratch.embedded, out);
        Ok(similarity)
    }
}

/// Reusable buffers for [`Kcca::project_query_into`]: the kernel row
/// against the pivots and the incomplete-Cholesky embedding. One scratch
/// per worker thread is enough; buffers grow to the model's dimensions
/// on first use and are then recycled.
#[derive(Debug, Default, Clone)]
pub struct ProjectionScratch {
    k_row: Vec<f64>,
    embedded: Vec<f64>,
}

impl ProjectionScratch {
    /// Empty scratch; buffers are sized lazily on first projection.
    pub fn new() -> Self {
        ProjectionScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_linalg::vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Nonlinearly related pair: y depends on ‖x‖ (a relation linear CCA
    /// cannot capture but a Gaussian kernel can).
    fn nonlinear_pair(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 2);
        for i in 0..n {
            let a = rng.random_range(-2.0..2.0);
            let b = rng.random_range(-2.0..2.0);
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            let r = (a * a + b * b).sqrt();
            y[(i, 0)] = r + 0.02 * rng.random_range(-1.0..1.0);
            y[(i, 1)] = rng.random_range(-1.0..1.0);
        }
        (x, y)
    }

    #[test]
    fn captures_nonlinear_correlation() {
        let (x, y) = nonlinear_pair(150, 2);
        let model = Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap();
        assert!(
            model.correlations()[0] > 0.9,
            "top kernel correlation {}",
            model.correlations()[0]
        );
    }

    #[test]
    fn projection_collocates_similar_points() {
        // Points with similar x land near each other in the query
        // projection (the paper's clustering-effect claim, Fig. 6).
        let (x, y) = nonlinear_pair(120, 7);
        let model = Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap();
        let p0 = model.project_query(x.row(0)).unwrap();
        // Training projection of point 0 should match its out-of-sample
        // projection (same point).
        let stored = model.query_projection().row(0);
        let d = vector::dist(&p0, stored);
        let scale = vector::norm(stored).max(1e-9);
        assert!(d / scale < 1e-6, "relative drift {}", d / scale);
    }

    #[test]
    fn nearest_neighbor_in_projection_agrees_with_performance() {
        // For a new point, its nearest training neighbor in query
        // projection should have similar performance (the prediction
        // premise). Construct data where x fully determines y.
        let (x, y) = nonlinear_pair(200, 9);
        let model = Kcca::fit(x.view(), y.view(), KccaOptions::default()).unwrap();
        // Leave point 0 out conceptually: find nearest *other* neighbor.
        let probe = model.project_query(x.row(0)).unwrap();
        let mut best = (usize::MAX, f64::INFINITY);
        for i in 1..x.rows() {
            let d = vector::dist(&probe, model.query_projection().row(i));
            if d < best.1 {
                best = (i, d);
            }
        }
        let neighbor = best.0;
        // y[:, 0] = ||x||; neighbor's radius should approximate ours.
        let r0 = y[(0, 0)];
        let rn = y[(neighbor, 0)];
        assert!(
            (r0 - rn).abs() < 0.4,
            "neighbor radius {rn} too far from {r0}"
        );
    }

    #[test]
    fn rank_cap_respected() {
        let (x, y) = nonlinear_pair(100, 4);
        let opts = KccaOptions {
            max_rank: 10,
            icd_tolerance: 0.0,
            ..KccaOptions::default()
        };
        let model = Kcca::fit(x.view(), y.view(), opts).unwrap();
        assert!(model.x_rank() <= 10);
        assert!(model.components() <= 10);
    }

    #[test]
    fn mismatched_rows_rejected() {
        let x = Matrix::zeros(10, 2);
        let y = Matrix::zeros(9, 2);
        assert!(Kcca::fit(x.view(), y.view(), KccaOptions::default()).is_err());
    }

    #[test]
    fn tiny_input_rejected() {
        let x = Matrix::zeros(2, 2);
        let y = Matrix::zeros(2, 2);
        assert!(Kcca::fit(x.view(), y.view(), KccaOptions::default()).is_err());
    }
}
