//! K-means clustering (paper §V-B).
//!
//! Considered and rejected by the paper: clustering works on a *single*
//! dataset, so query-feature clusters need not align with
//! performance-feature clusters. Retained here because the two-step
//! predictor and several diagnostics use single-dataset clustering, and
//! the ablation benches compare it against KCCA's "correlated pairs of
//! clusters".

// Triangular solves and centroid updates read most clearly with index
// loops; the iterator forms clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

use qpp_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids as rows (`k x p`).
    pub centroids: Matrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Fits k-means with k-means++-style seeding, deterministic under
    /// `seed`. `data` must have at least `k` rows.
    pub fn fit(data: &Matrix, k: usize, seed: u64, max_iters: usize) -> KMeans {
        let n = data.rows();
        let p = data.cols();
        assert!(k >= 1 && k <= n, "need 1 <= k <= n (k={k}, n={n})");
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids = Matrix::zeros(k, p);
        let first = rng.random_range(0..n);
        centroids.row_mut(0).copy_from_slice(data.row(first));
        let mut min_d2: Vec<f64> = (0..n)
            .map(|i| vector::sq_dist(data.row(i), centroids.row(0)))
            .collect();
        for c in 1..k {
            let total = vector::sum(&min_d2);
            let pick = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut roll = rng.random_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &d) in min_d2.iter().enumerate() {
                    roll -= d;
                    if roll <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.row_mut(c).copy_from_slice(data.row(pick));
            for i in 0..n {
                let d = vector::sq_dist(data.row(i), centroids.row(c));
                if d < min_d2[i] {
                    min_d2[i] = d;
                }
            }
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; n];
        let mut iterations = 0;
        for it in 0..max_iters {
            iterations = it + 1;
            let mut changed = false;
            for i in 0..n {
                let mut best = (0usize, f64::INFINITY);
                for c in 0..k {
                    let d = vector::sq_dist(data.row(i), centroids.row(c));
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                if assignment[i] != best.0 {
                    assignment[i] = best.0;
                    changed = true;
                }
            }
            if !changed && it > 0 {
                break;
            }
            let mut sums = Matrix::zeros(k, p);
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let c = assignment[i];
                counts[c] += 1;
                vector::axpy(1.0, data.row(i), sums.row_mut(c));
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for v in sums.row_mut(c) {
                        *v *= inv;
                    }
                    centroids.row_mut(c).copy_from_slice(sums.row(c));
                }
                // Empty clusters keep their previous centroid.
            }
        }

        let inertia = vector::sum_iter(
            (0..n).map(|i| vector::sq_dist(data.row(i), centroids.row(assignment[i]))),
        );
        KMeans {
            centroids,
            inertia,
            iterations,
        }
    }

    /// Cluster index of a point.
    pub fn assign(&self, point: &[f64]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for c in 0..self.centroids.rows() {
            let d = vector::sq_dist(point, self.centroids.row(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 + j]);
            rows.push(vec![10.0 + j, 10.0 + j]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMeans::fit(&blobs(), 2, 7, 50);
        let a = km.assign(&[0.0, 0.0]);
        let b = km.assign(&[10.0, 10.0]);
        assert_ne!(a, b);
        assert!(km.inertia < 1.0, "inertia {}", km.inertia);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = KMeans::fit(&blobs(), 2, 3, 50);
        let b = KMeans::fit(&blobs(), 2, 3, 50);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]).unwrap();
        let km = KMeans::fit(&data, 3, 1, 50);
        assert!(km.inertia < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= n")]
    fn rejects_k_larger_than_n() {
        let data = Matrix::from_rows(&[vec![0.0]]).unwrap();
        KMeans::fit(&data, 2, 1, 10);
    }
}
