//! K-means clustering (paper §V-B).
//!
//! Considered and rejected by the paper: clustering works on a *single*
//! dataset, so query-feature clusters need not align with
//! performance-feature clusters. Retained here because the two-step
//! predictor and several diagnostics use single-dataset clustering, the
//! ablation benches compare it against KCCA's "correlated pairs of
//! clusters" — and, since the IVF index landed, it is the coarse
//! quantizer that partitions the kNN reference set
//! ([`crate::ann::IvfIndex`]).
//!
//! Because the ANN build and the qpp-adapt retrain loop call
//! [`KMeans::fit`] with runtime-sized windows, it degrades into a typed
//! [`KMeansError`] instead of panicking, and non-finite rows are
//! skipped exactly like `knn.rs::query` skips non-finite distances: a
//! corrupt row can neither become a centroid nor poison the k-means++
//! roulette.

// Triangular solves and centroid updates read most clearly with index
// loops; the iterator forms clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

use qpp_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from [`KMeans::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansError {
    /// `k` must satisfy `1 <= k <= n` for `n` data rows.
    DegenerateK {
        /// Requested cluster count.
        k: usize,
        /// Rows in the data matrix.
        n: usize,
    },
    /// Every input row carries a non-finite component, so no centroid
    /// can be seeded.
    NoFiniteRows,
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::DegenerateK { k, n } => {
                write!(f, "k-means needs 1 <= k <= n, got k={k} with n={n} rows")
            }
            KMeansError::NoFiniteRows => {
                write!(f, "k-means input has no fully finite row to seed from")
            }
        }
    }
}

impl std::error::Error for KMeansError {}

/// A fitted k-means model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids as rows (`k x p`).
    pub centroids: Matrix,
    /// Final within-cluster sum of squared distances (finite rows only).
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Fits k-means with k-means++-style seeding, deterministic under
    /// `seed`.
    ///
    /// A degenerate request (`k` outside `1..=n`) or an input with no
    /// fully finite row returns a typed [`KMeansError`] — this runs
    /// inside serve workers (ANN build, adaptive retrains), where a
    /// panic would tear the worker down. Rows containing non-finite
    /// components are skipped throughout: they are never chosen as
    /// seeds (a NaN distance used to turn the seeding roulette's `total`
    /// into NaN, failing the `total <= 0.0` guard and silently electing
    /// row `n-1` every round) and they do not contribute to centroid
    /// updates or inertia.
    pub fn fit(
        data: &Matrix,
        k: usize,
        seed: u64,
        max_iters: usize,
    ) -> Result<KMeans, KMeansError> {
        let n = data.rows();
        let p = data.cols();
        if k < 1 || k > n {
            return Err(KMeansError::DegenerateK { k, n });
        }
        let finite: Vec<bool> = (0..n)
            .map(|i| data.row(i).iter().all(|v| v.is_finite()))
            .collect();
        let finite_count = finite.iter().filter(|&&f| f).count();
        if finite_count == 0 {
            return Err(KMeansError::NoFiniteRows);
        }
        // `chosen` falls back to the last usable row when the roulette
        // roll survives every decrement (floating-point slack), mirroring
        // the historical `n - 1` fallback restricted to finite rows.
        let last_finite = finite.iter().rposition(|&f| f).unwrap_or(0); // finite_count > 0 guarantees a hit
        let mut rng = StdRng::seed_from_u64(seed);
        let nth_finite = |target: usize| -> usize {
            let mut seen = 0;
            for i in 0..n {
                if finite[i] {
                    if seen == target {
                        return i;
                    }
                    seen += 1;
                }
            }
            last_finite
        };

        // k-means++ seeding over the finite rows.
        let mut centroids = Matrix::zeros(k, p);
        let first = nth_finite(rng.random_range(0..finite_count));
        centroids.row_mut(0).copy_from_slice(data.row(first));
        // Non-finite rows keep a NaN distance and are filtered wherever
        // `min_d2` is consumed — the same skip `knn.rs::query` applies
        // to non-finite neighbor distances.
        let mut min_d2: Vec<f64> = (0..n)
            .map(|i| {
                if finite[i] {
                    vector::sq_dist(data.row(i), centroids.row(0))
                } else {
                    f64::NAN
                }
            })
            .collect();
        for c in 1..k {
            let total = vector::sum_iter(min_d2.iter().copied().filter(|d| d.is_finite()));
            // The non-finite check is defensive: the summed terms are
            // all finite, but a pathological sum could still overflow.
            let pick = if !total.is_finite() || total <= 0.0 {
                nth_finite(rng.random_range(0..finite_count))
            } else {
                let mut roll = rng.random_range(0.0..total);
                let mut chosen = last_finite;
                for (i, &d) in min_d2.iter().enumerate() {
                    if !d.is_finite() {
                        continue;
                    }
                    roll -= d;
                    if roll <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.row_mut(c).copy_from_slice(data.row(pick));
            for i in 0..n {
                if !finite[i] {
                    continue;
                }
                let d = vector::sq_dist(data.row(i), centroids.row(c));
                if d < min_d2[i] {
                    min_d2[i] = d;
                }
            }
        }

        // Lloyd iterations over the finite rows.
        let mut assignment = vec![0usize; n];
        let mut iterations = 0;
        for it in 0..max_iters {
            iterations = it + 1;
            let mut changed = false;
            for i in 0..n {
                if !finite[i] {
                    continue;
                }
                let mut best = (0usize, f64::INFINITY);
                for c in 0..k {
                    let d = vector::sq_dist(data.row(i), centroids.row(c));
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                if assignment[i] != best.0 {
                    assignment[i] = best.0;
                    changed = true;
                }
            }
            if !changed && it > 0 {
                break;
            }
            let mut sums = Matrix::zeros(k, p);
            let mut counts = vec![0usize; k];
            for i in 0..n {
                if !finite[i] {
                    continue;
                }
                let c = assignment[i];
                counts[c] += 1;
                vector::axpy(1.0, data.row(i), sums.row_mut(c));
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for v in sums.row_mut(c) {
                        *v *= inv;
                    }
                    centroids.row_mut(c).copy_from_slice(sums.row(c));
                }
                // Empty clusters keep their previous centroid.
            }
        }

        let inertia = vector::sum_iter(
            (0..n)
                .filter(|&i| finite[i])
                .map(|i| vector::sq_dist(data.row(i), centroids.row(assignment[i]))),
        );
        Ok(KMeans {
            centroids,
            inertia,
            iterations,
        })
    }

    /// Cluster index of a point.
    pub fn assign(&self, point: &[f64]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for c in 0..self.centroids.rows() {
            let d = vector::sq_dist(point, self.centroids.row(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 + j]);
            rows.push(vec![10.0 + j, 10.0 + j]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMeans::fit(&blobs(), 2, 7, 50).unwrap();
        let a = km.assign(&[0.0, 0.0]);
        let b = km.assign(&[10.0, 10.0]);
        assert_ne!(a, b);
        assert!(km.inertia < 1.0, "inertia {}", km.inertia);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = KMeans::fit(&blobs(), 2, 3, 50).unwrap();
        let b = KMeans::fit(&blobs(), 2, 3, 50).unwrap();
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]).unwrap();
        let km = KMeans::fit(&data, 3, 1, 50).unwrap();
        assert!(km.inertia < 1e-12);
    }

    #[test]
    fn rejects_k_larger_than_n_with_typed_error() {
        // Used to be an `assert!` that tore down the calling worker; the
        // ANN build and adaptive retrains reach this with runtime-sized
        // windows, so it must degrade into a typed error.
        let data = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert_eq!(
            KMeans::fit(&data, 2, 1, 10).err(),
            Some(KMeansError::DegenerateK { k: 2, n: 1 })
        );
        assert_eq!(
            KMeans::fit(&data, 0, 1, 10).err(),
            Some(KMeansError::DegenerateK { k: 0, n: 1 })
        );
    }

    #[test]
    fn non_finite_rows_are_skipped() {
        // Mirror of knn.rs `non_finite_reference_rows_are_skipped`: one
        // corrupt row must neither seed a centroid nor poison the
        // roulette. Before the fix, its NaN `min_d2` entry made `total`
        // NaN, the `total <= 0.0` guard failed, and the roulette fell
        // through to `chosen = n - 1` every round.
        let mut rows = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 + j]);
            rows.push(vec![10.0 + j, 10.0 + j]);
        }
        rows.push(vec![f64::NAN, 0.0]);
        rows.push(vec![f64::INFINITY, f64::INFINITY]);
        let data = Matrix::from_rows(&rows).unwrap();
        for seed in 0..32 {
            let km = KMeans::fit(&data, 2, seed, 50).unwrap();
            assert!(
                km.centroids.is_finite(),
                "seed {seed} produced a non-finite centroid: {:?}",
                km.centroids
            );
            assert!(km.inertia.is_finite(), "seed {seed} inertia {}", km.inertia);
            assert_ne!(km.assign(&[0.0, 0.0]), km.assign(&[10.0, 10.0]));
        }
    }

    #[test]
    fn nan_poisoned_roulette_no_longer_elects_the_last_row() {
        // Regression for the exact fall-through: with a NaN row anywhere,
        // every k-means++ round used to pick row n-1. Put a far outlier
        // at n-1; under the bug both centroids collapse onto it for all
        // seeds. Fixed, the outlier may legitimately win the roulette for
        // some seeds, but not *every* centroid for *every* seed.
        let mut rows = vec![vec![f64::NAN, 0.0]];
        for i in 0..20 {
            rows.push(vec![i as f64 * 0.01, 0.0]);
        }
        rows.push(vec![1e6, 1e6]);
        let data = Matrix::from_rows(&rows).unwrap();
        let n = data.rows();
        let mut centroids_on_outlier = 0;
        let mut centroids_total = 0;
        for seed in 0..16 {
            let km = KMeans::fit(&data, 3, seed, 0).unwrap();
            for c in 0..3 {
                centroids_total += 1;
                if km.centroids.row(c) == data.row(n - 1) {
                    centroids_on_outlier += 1;
                }
            }
        }
        assert!(
            centroids_on_outlier < centroids_total / 2,
            "{centroids_on_outlier}/{centroids_total} seeded centroids landed on the \
             NaN-roulette fall-through row"
        );
    }

    #[test]
    fn all_corrupt_input_is_a_typed_error() {
        let data = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![2.0, f64::NEG_INFINITY]]).unwrap();
        assert_eq!(
            KMeans::fit(&data, 1, 0, 10).err(),
            Some(KMeansError::NoFiniteRows)
        );
    }
}
