//! A small CART-style classification tree.
//!
//! Backs the PQR baseline from the paper's related work (§III): "The
//! PQR approach uses machine learning to predict ranges of query
//! execution time, but it does not estimate any other performance
//! metrics." PQR trains a tree of classifiers over plan features whose
//! leaves are runtime buckets; a plain Gini-split CART over the same
//! features captures its essential behaviour as a comparison point.

use qpp_linalg::{vector, Matrix};
use serde::{Deserialize, Serialize};

/// Tree construction options.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeOptions {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            max_depth: 8,
            min_samples_split: 8,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted classification tree over dense feature rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    classes: usize,
}

impl DecisionTree {
    /// Fits a tree on `x` (one row per sample) and integer labels `y`.
    ///
    /// Panics when inputs are empty or misaligned.
    pub fn fit(x: &Matrix, y: &[usize], opts: TreeOptions) -> DecisionTree {
        assert_eq!(x.rows(), y.len(), "feature/label length mismatch");
        assert!(!y.is_empty(), "empty training set");
        let classes = y.iter().copied().max().unwrap_or(0) + 1;
        let indices: Vec<usize> = (0..y.len()).collect();
        let root = build(x, y, &indices, classes, opts, 0);
        DecisionTree { root, classes }
    }

    /// Number of distinct classes seen at fit time.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Predicts the class of one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Tree depth (longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn majority(y: &[usize], indices: &[usize], classes: usize) -> usize {
    let mut counts = vec![0usize; classes];
    for &i in indices {
        counts[y[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(k, _)| k)
        .unwrap_or(0)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - vector::sum_iter(counts.iter().map(|&c| {
        let p = c as f64 / t;
        p * p
    }))
}

fn build(
    x: &Matrix,
    y: &[usize],
    indices: &[usize],
    classes: usize,
    opts: TreeOptions,
    depth: usize,
) -> Node {
    let leaf = Node::Leaf {
        class: majority(y, indices, classes),
    };
    if depth >= opts.max_depth || indices.len() < opts.min_samples_split {
        return leaf;
    }
    // Pure node?
    let first = y[indices[0]];
    if indices.iter().all(|&i| y[i] == first) {
        return Node::Leaf { class: first };
    }

    // Best Gini split over all features; candidate thresholds are the
    // midpoints of sorted unique values (subsampled for wide nodes).
    // Ties on score are broken toward the more balanced split, so a
    // gainless XOR-style first cut still divides the data usefully.
    let mut best: Option<(usize, f64, f64, f64)> = None; // (feature, threshold, score, balance)
    let parent_counts = {
        let mut c = vec![0usize; classes];
        for &i in indices {
            c[y[i]] += 1;
        }
        c
    };
    let parent_gini = gini(&parent_counts, indices.len());
    for f in 0..x.cols() {
        let mut values: Vec<f64> = indices.iter().map(|&i| x[(i, f)]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        // Consider every candidate threshold on small nodes; subsample
        // only when the value set is wide (the subsampling must not be
        // allowed to skip a large between-cluster gap on small data).
        let step = if values.len() <= 64 {
            1
        } else {
            values.len() / 64
        };
        for w in values.windows(2).step_by(step) {
            let threshold = 0.5 * (w[0] + w[1]);
            let mut lc = vec![0usize; classes];
            let mut rc = vec![0usize; classes];
            let mut ln = 0usize;
            for &i in indices {
                if x[(i, f)] <= threshold {
                    lc[y[i]] += 1;
                    ln += 1;
                } else {
                    rc[y[i]] += 1;
                }
            }
            let rn = indices.len() - ln;
            if ln == 0 || rn == 0 {
                continue;
            }
            let score =
                (ln as f64 * gini(&lc, ln) + rn as f64 * gini(&rc, rn)) / indices.len() as f64;
            let balance = (ln.min(rn)) as f64 / indices.len() as f64;
            let better = match best {
                None => true,
                Some((_, _, s, bal)) => {
                    score < s - 1e-12 || ((score - s).abs() <= 1e-12 && balance > bal)
                }
            };
            if better {
                best = Some((f, threshold, score, balance));
            }
        }
    }
    let Some((feature, threshold, score, _)) = best else {
        return leaf;
    };
    // Weighted child Gini never exceeds the parent's, so zero-gain ties
    // are allowed: XOR-like concepts need a gainless first split before
    // the second level separates the classes. Recursion stays bounded
    // by max_depth and the non-empty partition invariant.
    if score > parent_gini + 1e-12 {
        return leaf;
    }
    let (li, ri): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| x[(i, feature)] <= threshold);
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(x, y, &li, classes, opts, depth + 1)),
        right: Box::new(build(x, y, &ri, classes, opts, depth + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_and() -> (Matrix, Vec<usize>) {
        // Two features; class = (a > 0.5) AND (b > 0.5): needs depth 2
        // and is greedily learnable (the first split yields a pure
        // child), unlike exact XOR which defeats greedy Gini splitting.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = if i % 2 == 0 { 0.2 } else { 0.8 } + (i as f64) * 1e-3;
            let b = if (i / 2) % 2 == 0 { 0.2 } else { 0.8 } + (i as f64) * 1e-3;
            rows.push(vec![a, b]);
            labels.push(usize::from(a > 0.5 && b > 0.5));
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_nested_concept_with_depth_two() {
        let (x, y) = nested_and();
        let tree = DecisionTree::fit(&x, &y, TreeOptions::default());
        let mut correct = 0;
        for (i, &label) in y.iter().enumerate() {
            if tree.predict(x.row(i)) == label {
                correct += 1;
            }
        }
        assert_eq!(correct, x.rows(), "tree should fit the AND concept exactly");
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_labels_make_a_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let tree = DecisionTree::fit(&x, &[1, 1, 1], TreeOptions::default());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = nested_and();
        let tree = DecisionTree::fit(
            &x,
            &y,
            TreeOptions {
                max_depth: 1,
                min_samples_split: 2,
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_misaligned_inputs() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        DecisionTree::fit(&x, &[0, 1], TreeOptions::default());
    }
}
