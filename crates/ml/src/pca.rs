//! Principal Component Analysis (paper §V-C).
//!
//! Included for completeness of the technique ladder: PCA finds
//! dimensions of maximal variance within *one* dataset, so — as the
//! paper argues — it cannot uncover correlations *between* the query
//! and performance datasets. The workspace uses it for diagnostics and
//! as a comparison point in the ablation benches.

use qpp_linalg::{stats, LinalgError, Matrix, SymmetricEigen};
use serde::{Deserialize, Serialize};

/// A fitted PCA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Component loadings as columns (`p x k`).
    components: Matrix,
    /// Explained variance per component, descending.
    pub explained_variance: Vec<f64>,
    means: Vec<f64>,
}

impl Pca {
    /// Fits PCA keeping `k` components (capped at the feature count).
    pub fn fit(data: &Matrix, k: usize) -> Result<Pca, LinalgError> {
        if data.rows() < 2 {
            return Err(LinalgError::Empty("pca needs >= 2 rows"));
        }
        let means = stats::column_means(data);
        let centered = Matrix::from_fn(data.rows(), data.cols(), |i, j| data[(i, j)] - means[j]);
        let cov = centered.gram().scale(1.0 / data.rows() as f64);
        let eig = SymmetricEigen::new(&cov)?;
        let k = k.min(data.cols());
        let (values, vectors) = eig.top_k(k);
        Ok(Pca {
            components: vectors,
            explained_variance: values,
            means,
        })
    }

    /// Number of kept components.
    pub fn components(&self) -> usize {
        self.explained_variance.len()
    }

    /// Projects one row into component space.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.components()];
        for (i, (&v, &mu)) in row.iter().zip(self.means.iter()).enumerate() {
            let c = v - mu;
            for (k, o) in out.iter_mut().enumerate() {
                *o += c * self.components[(i, k)];
            }
        }
        out
    }

    /// Projects every row of `data`.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), self.components());
        for i in 0..data.rows() {
            out.row_mut(i)
                .copy_from_slice(&self.transform_row(data.row(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_dominant_direction() {
        // Data stretched along (1, 1): first PC aligns with it.
        let mut rng = StdRng::seed_from_u64(1);
        let data = Matrix::from_fn(100, 2, |i, j| {
            let t: f64 = (i as f64 / 10.0).sin() * 5.0;
            let noise: f64 = rng.random_range(-0.1..0.1);
            if j == 0 {
                t + noise
            } else {
                t - noise
            }
        });
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.explained_variance[0] > 10.0 * pca.explained_variance[1]);
        let c0 = (pca.components[(0, 0)], pca.components[(1, 0)]);
        assert!((c0.0.abs() - c0.1.abs()).abs() < 0.05, "PC1 = {c0:?}");
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 14.0]]).unwrap();
        let pca = Pca::fit(&data, 1).unwrap();
        let t = pca.transform(&data);
        // Two symmetric points project to ±s.
        assert!((t[(0, 0)] + t[(1, 0)]).abs() < 1e-9);
    }

    #[test]
    fn k_capped_by_feature_count() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.0, 0.5]]).unwrap();
        let pca = Pca::fit(&data, 99).unwrap();
        assert_eq!(pca.components(), 2);
    }

    #[test]
    fn variances_descend() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = Matrix::from_fn(50, 4, |_, j| rng.random_range(-1.0..1.0) * (j + 1) as f64);
        let pca = Pca::fit(&data, 4).unwrap();
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
